"""Benchmark E6 — Figure 8: user-perceived latency across WSS.

Regenerates panels (a) strict, (b) relaxed, (c) pure read/write
breakdown, and asserts claim C6: three latency levels, relaxed <
strict only below the plateau, flat write latency at any WSS, reads
dominating beyond the caches, and sequential reads beating random
thanks to prefetch into the read buffer.
"""

import pytest

from conftest import render_all
from repro.common.units import kib, mib
from repro.experiments import fig08


@pytest.mark.parametrize("generation", [1])
def bench_fig08(run_experiment, profile, generation):
    strict, relaxed, breakdown = run_experiment(fig08.run, generation, profile)
    render_all([strict, relaxed, breakdown])

    small, plateau, large = kib(4), kib(256), mib(64)

    # Three latency levels (strict clwb, random chain).
    curve = strict.get("rand_clwb")
    xs = strict.x_values
    assert curve[xs.index(small)] < curve[xs.index(plateau)] < curve[xs.index(large)]
    # The large-WSS level is several times the small-WSS level.
    assert curve[xs.index(large)] > 3 * curve[xs.index(small)]

    # Relaxed beats strict at small WSS; they converge at the plateau.
    assert relaxed.value("rand_clwb", small) < strict.value("rand_clwb", small)
    assert relaxed.value("rand_clwb", plateau) == pytest.approx(
        strict.value("rand_clwb", plateau), rel=0.3
    )

    # Pure writes are flat regardless of WSS or order (C6 writes).
    for series in ("seq_wr", "rand_wr"):
        values = breakdown.get(series)
        assert max(values) < 1.5 * min(values)

    # Pure reads: cache-cheap until the knee, then dominant.
    assert breakdown.value("rand_rd", small) < 60
    assert breakdown.value("rand_rd", large) > breakdown.value("rand_wr", large)
    # Sequential reads beat random at large WSS (on-DIMM prefetch).
    assert breakdown.value("seq_rd", large) < 0.8 * breakdown.value("rand_rd", large)
