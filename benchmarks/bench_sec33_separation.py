"""Benchmark — Section 3.3: read/write buffer separation + transition.

No figure in the paper; asserts the section's stated findings: the
interleaved probe behaves exactly like the isolated baselines (RA = 1,
zero media writes — separate buffers) and write-then-read XPLine
traffic is served mostly from the buffers, with writes adopting
read-buffered XPLines (RMW avoided).
"""

import pytest

from conftest import render_all
from repro.experiments import sec33


@pytest.mark.parametrize("generation", [1, 2])
def bench_sec33(run_experiment, profile, generation):
    result = run_experiment(sec33.run, generation, profile)
    render_all(sec33.as_report(result))

    sep = result.separation
    assert sep.buffers_are_separate
    assert sep.interleaved_read_amplification == pytest.approx(1.0, rel=0.05)
    assert sep.interleaved_media_write_bytes == 0

    # Transition probe: media traffic ≪ iMC traffic (buffers hit), and
    # the read-first ordering exercises the read→write adoption.
    assert result.transition_write_first.media_traffic_fraction < 0.5
    assert result.transition_read_first.media_traffic_fraction < 0.5
    assert result.transition_read_first.rmw_avoided > 0
