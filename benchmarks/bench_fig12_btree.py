"""Benchmark E8 — Figure 12: B+-tree in-place vs out-of-place updates.

Regenerates both generations' panels and asserts claim C8: on G1 the
redo-logging variant wins large (paper: up to ~38.8% latency / ~60.8%
throughput) with the benefit declining as threads contend for
bandwidth; on G2 it brings no improvement.
"""

import pytest

from conftest import render_all
from repro.experiments import fig12


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig12(run_experiment, profile, generation):
    report = run_experiment(fig12.run, generation, profile)
    render_all(report)

    inplace_lat = report.get("latency in-place")
    redo_lat = report.get("latency out-of-place")
    inplace_tput = report.get("tput in-place")
    redo_tput = report.get("tput out-of-place")

    if generation == 1:
        # Redo wins at one thread: sizable latency and throughput gains.
        latency_gain = 1 - redo_lat[0] / inplace_lat[0]
        tput_gain = redo_tput[0] / inplace_tput[0] - 1
        assert latency_gain > 0.25
        assert tput_gain > 0.35
        # The relative benefit declines as the thread count grows.
        first_ratio = inplace_lat[0] / redo_lat[0]
        last_ratio = inplace_lat[-1] / redo_lat[-1]
        assert last_ratio < first_ratio + 0.05
        # Redo wins at every measured thread count on G1.
        assert all(r < i for r, i in zip(redo_lat, inplace_lat))
    else:
        # G2: no benefit from redo logging (at most slight degradation).
        assert redo_lat[0] > inplace_lat[0] * 0.9
        assert redo_tput[0] < inplace_tput[0] * 1.1
