"""Benchmark E4 — Figure 4: write-buffer hit ratio vs WSS.

Asserts claim C4: graceful (random-eviction) decay past the capacity;
the G2 knee sits beyond G1's 12 KB.
"""

from conftest import render_all
from repro.experiments import fig04


def bench_fig04(run_experiment, profile):
    report = run_experiment(fig04.run, profile)
    render_all(report)

    g1 = report.get("G1 Optane")
    g2 = report.get("G2 Optane")
    xs = report.x_values

    # Both fully absorb small working sets.
    assert report.value("G1 Optane", 8 * 1024) > 0.95
    assert report.value("G2 Optane", 8 * 1024) > 0.95
    # G1 starts decaying at its smaller (12 KB) buffer: at 16 KB G2
    # still hits ~100% while G1 already dropped.
    assert report.value("G2 Optane", 16 * 1024) > report.value("G1 Optane", 16 * 1024)
    # Graceful decay, not a cliff: the drop between adjacent grid
    # points never exceeds 0.5, and both remain above 0.2 at 32 KB.
    for series in (g1, g2):
        drops = [a - b for a, b in zip(series, series[1:])]
        assert max(drops) < 0.5
        assert series[-1] > 0.2
    # Monotone non-increasing (within noise).
    for series in (g1, g2):
        for a, b in zip(series, series[1:]):
            assert b <= a + 0.05
