"""Benchmarks — supplemental characterizations (not numbered figures).

* §2.2 device bandwidth: read/write asymmetry and the write-scaling
  ceiling every Optane study leans on.
* §2.4: 1 vs 6 interleaved DIMMs — same latency, multiplied bandwidth.
* §3.5 implications: persistent-lock handover latency across
  generations and NUMA placements.
"""

import pytest

from conftest import render_all
from repro.experiments import bandwidth, interleaving, lock_handover


def bench_bandwidth(run_experiment, profile):
    report = run_experiment(bandwidth.run, 1, profile)
    render_all(report)

    seq_read = report.get("seq-read")
    rand_read = report.get("rand-read")
    nt_write = report.get("nt-write")

    # Writes do not scale beyond a small thread count (§2.2): the curve
    # is flat (media-drain-bound) from the start.
    assert max(nt_write) < min(nt_write) * 1.3
    # Sequential reads keep scaling with threads.
    assert seq_read[-1] > seq_read[0] * 3
    # Random 64 B reads are far below sequential (whole-XPLine fetches
    # per cacheline — read amplification eats the bandwidth).
    assert rand_read[-1] < seq_read[-1] / 2
    # Peak read bandwidth exceeds the random-write drain.
    assert seq_read[-1] > rand_read[0]


def bench_interleaving(run_experiment, profile):
    report = run_experiment(interleaving.run, 1, profile)
    render_all(report)

    latency = report.get("random read latency (cycles)")
    bw = report.get("nt-store bandwidth (GB/s, 8 threads)")
    # Interleaving leaves single-access latency unchanged...
    assert latency[1] == pytest.approx(latency[0], rel=0.1)
    # ...while multiplying aggregate write bandwidth.
    assert bw[1] > 3 * bw[0]


def bench_lock_handover(run_experiment, profile):
    report = run_experiment(lock_handover.run, profile)
    render_all(report)

    g1_pm = report.value("G1", "pm")
    g1_remote = report.value("G1", "pm_remote")
    g1_dram = report.value("G1", "dram")
    g2_pm = report.value("G2", "pm")

    # G1: handing over a persistent lock pays the full RAP stall.
    assert g1_pm > 3 * g2_pm
    # Remote placement makes it worse (paper: "cross socket access may
    # make it even worse").
    assert g1_remote > g1_pm
    # DRAM locks are much cheaper than G1 PM locks.
    assert g1_dram < g1_pm / 2
