"""Shared helpers for the per-figure benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper:
it runs the corresponding experiment (fast profile by default — set
``REPRO_PROFILE=full`` for the EXPERIMENTS.md numbers), prints the
same rows/series the paper plots, and asserts the shape claims.

``pytest benchmarks/ --benchmark-only`` runs everything; wall-clock of
each experiment is captured by pytest-benchmark via one pedantic round
(these are simulations — the interesting output is the printed report,
not the wall time).
"""

import os

import pytest


@pytest.fixture
def profile() -> str:
    """Experiment profile: "fast" (default) or "full" via REPRO_PROFILE."""
    return os.environ.get("REPRO_PROFILE", "fast")


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment function once under pytest-benchmark and
    return its result; the experiment's report printing survives -s."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        return result

    return runner


def render_all(reports) -> None:
    """Print one or many ExperimentReports."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    for report in reports:
        print()
        print(report.render())
