"""Shared helpers for the per-figure benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper:
it runs the corresponding experiment (fast profile by default — set
``REPRO_PROFILE=full`` for the EXPERIMENTS.md numbers), prints the
same rows/series the paper plots, and asserts the shape claims.

``pytest benchmarks/ --benchmark-only -m ""`` runs everything (the
``-m ""`` clears the project-wide ``-m "not slow"`` filter — every
bench is marked ``slow``, the multi-minute ones ``campaign`` too);
wall-clock of each experiment is captured by pytest-benchmark via one
pedantic round (these are simulations — the interesting output is the
printed report, not the wall time).

The harness is wired through :mod:`repro.runner`'s on-disk result
cache: set ``REPRO_BENCH_CACHE=1`` and report-producing experiments
are served from ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) when
the same call on the same source tree was benchmarked before — handy
when iterating on one bench module's assertions.  The default is off
so recorded wall times stay honest.

Set ``REPRO_BENCH_TRACE=1`` to run every benchmark inside an ambient
:mod:`repro.trace` session and write a Chrome trace per benchmark to
``$REPRO_BENCH_TRACE_DIR`` (default ``.benchmarks/traces``) — one
Perfetto-loadable file per bench, named after its test id.  Sampling
interval comes from ``REPRO_BENCH_TRACE_INTERVAL`` (cycles, default
1000).  Tracing adds recording overhead, so wall times recorded with
it on are not comparable to untraced runs; simulation *results* are
unchanged (tracing is observational by construction).
"""

import os
import re

import pytest

#: Bench modules whose fast-profile run still takes minutes; they get
#: the ``campaign`` marker on top of the ``slow`` every bench carries.
_CAMPAIGN_MODULES = (
    "bench_fig08_latency",
    "bench_fig10_cceh_helper",
    "bench_fig12_btree",
    "bench_fig14_redirection_scale",
    "bench_table1_cceh_breakdown",
)


def pytest_collection_modifyitems(items):
    """Every benchmark is at least ``slow`` (each runs a whole
    experiment); the multi-minute ones are ``campaign`` too.  Select
    them explicitly with ``-m slow`` / ``-m campaign`` or clear the
    project-wide filter with ``-m ""``.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)
        if any(name in item.nodeid for name in _CAMPAIGN_MODULES):
            item.add_marker(pytest.mark.campaign)


@pytest.fixture
def profile() -> str:
    """Experiment profile: "fast" (default) or "full" via REPRO_PROFILE."""
    return os.environ.get("REPRO_PROFILE", "fast")


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment function once under pytest-benchmark and
    return its result; the experiment's report printing survives -s.

    With ``REPRO_BENCH_CACHE=1`` the call is memoized through
    :func:`repro.runner.cached_call` — cache hits skip the simulation
    entirely (and record near-zero wall time), misses populate the
    cache for the next run.
    """

    use_cache = os.environ.get("REPRO_BENCH_CACHE", "") not in ("", "0")

    def runner(fn, *args, **kwargs):
        if use_cache:
            from repro.runner import cached_call

            target, target_args = cached_call, (fn, *args)
        else:
            target, target_args = fn, args
        result = benchmark.pedantic(
            target, args=target_args, kwargs=kwargs, rounds=1, iterations=1
        )
        return result

    return runner


@pytest.fixture(autouse=True)
def bench_trace(request):
    """Opt-in per-benchmark tracing (``REPRO_BENCH_TRACE=1``).

    Wraps the whole test in an ambient trace session and writes the
    captured events as ``<trace dir>/<test id>.trace.json``.  A no-op
    (yields immediately, no trace imports) unless the variable is set.
    """
    if os.environ.get("REPRO_BENCH_TRACE", "") in ("", "0"):
        yield
        return
    from repro.trace import session, write_chrome_trace

    interval = float(os.environ.get("REPRO_BENCH_TRACE_INTERVAL", "1000"))
    trace_dir = os.environ.get("REPRO_BENCH_TRACE_DIR",
                               os.path.join(".benchmarks", "traces"))
    with session(interval=interval) as sess:
        yield
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", request.node.nodeid)
    path = write_chrome_trace(os.path.join(trace_dir, f"{slug}.trace.json"),
                              sess.tracer)
    print(f"\n[bench trace: {path} — {sess.summary()}]")


def render_all(reports) -> None:
    """Print one or many ExperimentReports."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    for report in reports:
        print()
        print(report.render())
