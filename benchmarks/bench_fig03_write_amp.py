"""Benchmark E3 — Figure 3: write amplification by write fraction.

Regenerates Figure 3 and asserts claim C3: partial writes absorbed
below the write-buffer capacity; G1 periodically writes back fully
dirty XPLines (WA ≈ 1 for 100% writes at any WSS); G2 does not.
"""

import pytest

from conftest import render_all
from repro.experiments import fig03


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig03(run_experiment, profile, generation):
    report = run_experiment(fig03.run, generation, profile)
    render_all(report)

    small = 8 * 1024
    large = 32 * 1024

    if generation == 1:
        # Partial writes: fully absorbed below 12 KB.
        for series in ("25% write", "50% write", "75% write"):
            assert report.value(series, small) == 0.0
        # 100% writes: periodic write-back keeps WA near 1 even small.
        assert report.value("100% write", small) > 0.8
    else:
        # G2: no periodic write-back; everything absorbed below 16 KB.
        for series in ("25% write", "50% write", "75% write", "100% write"):
            assert report.value(series, small) < 0.1

    # Beyond capacity, WA approaches the theoretical 4/k for partials.
    assert report.value("25% write", large) > 2.5
    assert report.value("50% write", large) > 1.3
    assert report.value("25% write", large) <= 4.0 + 1e-9
