"""Benchmark E9b — Figure 14: the redirection tradeoff under threads.

Regenerates the latency/throughput-vs-threads panel and asserts claim
C9 (second half): the extra PM→DRAM copy loses at one thread but wins
both latency and throughput at high thread counts, where reclaimed
media bandwidth dominates.
"""

from conftest import render_all
from repro.experiments import fig14


def bench_fig14(run_experiment, profile):
    report = run_experiment(fig14.run, 1, profile)
    render_all(report)

    base_lat = report.get("latency baseline")
    opt_lat = report.get("latency optimized")
    base_tput = report.get("tput baseline")
    opt_tput = report.get("tput optimized")

    # Single thread: the copy overhead makes redirection slower.
    assert opt_lat[0] > base_lat[0]
    # Many threads: redirection wins both metrics.
    assert opt_lat[-1] < base_lat[-1]
    assert opt_tput[-1] > base_tput[-1]
    # Baseline throughput saturates (wasted media reads cap it) while
    # the optimized curve keeps scaling further.
    assert opt_tput[-1] > 1.5 * base_tput[1]
