"""Benchmark E9a — Figure 13: redirection removes misprefetched reads.

Regenerates the read-ratio panel and asserts claim C9 (first half):
with prefetching the DIMM reads up to ~2x the demanded data at large
WSS; the Algorithm-2 redirection brings the PM ratio back to ~1.
"""

import pytest

from conftest import render_all
from repro.common.units import kib, mib
from repro.experiments import fig13


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig13(run_experiment, profile, generation):
    report = run_experiment(fig13.run, generation, profile)
    render_all(report)

    big = mib(64)
    # Baseline wastes significant media bandwidth at large WSS...
    assert report.value("PM with prefetching", big) > 1.4
    # ...while the optimized path stays at ~1 everywhere.
    optimized = report.get("Optimized PM")
    assert max(optimized) < 1.2
    assert report.value("Optimized PM", big) == pytest.approx(1.0, abs=0.15)
    # At tiny WSS prefetching is harmless for both.
    assert report.value("PM with prefetching", kib(4)) < 1.3
