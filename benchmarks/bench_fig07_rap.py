"""Benchmark E5 — Figure 7: read-after-persist latency curves.

Regenerates all four panels per generation and asserts claim C5:
~10x RAP penalty on G1 (worse remotely), the sfence window at
distance <= 1, the G2 clwb fix, nt-store suffering on both
generations, and the much smaller DRAM gap.
"""

import pytest

from conftest import render_all
from repro.experiments import fig07


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig07(run_experiment, profile, generation):
    reports = run_experiment(fig07.run, generation, profile)
    render_all(reports)
    by_region = {report.experiment_id.split("-")[-1]: report for report in reports}

    pm = by_region["pm"]
    dram = by_region["dram"]
    pm_remote = by_region["pm_remote"]

    near, far = 0, 32

    if generation == 1:
        # C5a: clwb+mfence at distance 0 costs several times the settled level.
        assert pm.value("clwb+mfence", near) > 4 * pm.value("clwb+mfence", far)
        # C5b: sfence keeps distances 0-1 cheap, then jumps.
        assert pm.value("clwb+sfence", 0) < 400
        assert pm.value("clwb+sfence", 1) < 400
        assert pm.value("clwb+sfence", 2) > 500
        # C5c: remote NUMA is worse than local.
        assert pm_remote.value("clwb+mfence", near) > pm.value("clwb+mfence", near)
    else:
        # C5d: G2 clwb retains the line — flat, low curves.
        assert pm.value("clwb+mfence", near) < 500
        assert pm.value("clwb+mfence", near) < 1.5 * pm.value("clwb+mfence", far)

    # nt-store suffers on both generations.
    assert pm.value("nt-store+mfence", near) > 3 * pm.value("nt-store+mfence", far)

    # DRAM's near/far gap is a couple of x, not ~10x.
    dram_gap = dram.value("clwb+mfence", near) / dram.value("clwb+mfence", far)
    if generation == 1:
        pm_gap = pm.value("clwb+mfence", near) / pm.value("clwb+mfence", far)
        assert dram_gap < pm_gap
    assert dram_gap < 5
