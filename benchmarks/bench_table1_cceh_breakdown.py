"""Benchmark E7a — Table 1: time breakdown of CCEH key insertion.

Regenerates the paper's Table 1 and asserts its headline: the segment
read (a random media read) dominates insertion time across thread and
DIMM configurations, ahead of persists and misc.
"""

from conftest import render_all
from repro.experiments import table1


def bench_table1(run_experiment, profile):
    rows = run_experiment(table1.run, 1, profile)
    render_all(table1.as_report(rows, 1))

    for row in rows:
        label = f"{row.threads}T/{row.dimms}D"
        # Segment metadata dominates (paper: 43-52%).
        assert row.segment_metadata > 0.35, label
        assert row.segment_metadata > row.persists, label
        assert row.segment_metadata > row.misc, label
        # Persists are a significant but secondary cost (paper: 21-26%).
        assert 0.08 < row.persists < 0.45, label
        # Fractions are a partition of the total.
        assert abs(row.segment_metadata + row.persists + row.misc - 1.0) < 1e-6, label
