"""Benchmark E2 — Figure 6: CPU prefetching into the on-DIMM buffers.

Regenerates the four panels (per generation) and asserts claim C2:
no on-DIMM prefetching of its own (ratios ≈ 1 with prefetchers off);
with CPU prefetchers on, the PM read ratio rises past the read buffer
and diverges above the iMC ratio past the LLC, approaching ~2 for the
DCU streamer.
"""

import pytest

from conftest import render_all
from repro.common.units import kib, mib
from repro.experiments import fig06


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig06(run_experiment, profile, generation):
    reports = run_experiment(fig06.run, generation, profile)
    render_all(reports)
    by_panel = {report.title.split(" (")[0]: report for report in reports}

    none = by_panel["no prefetch"]
    pm = f"PM (G{generation})"
    imc = f"iMC (G{generation})"
    big = mib(64)

    # (a/e) No prefetch: both ratios flat at ~1 everywhere.
    for series in (none.get(pm), none.get(imc)):
        assert max(series) < 1.15
        assert min(series) > 0.9

    # (d/h) DCU streamer: PM ratio ~2 past the LLC, well above iMC.
    dcu = by_panel["DCU streamer prefetch"]
    assert dcu.value(pm, big) > 1.5
    assert dcu.value(pm, big) > dcu.value(imc, big) + 0.2
    # Small working sets stay near 1 (prefetches land in the buffer).
    assert dcu.value(pm, kib(4)) < 1.3

    # (b/f) Hardware streamer is the mildest of the three.
    streamer = by_panel["hardware prefetch"]
    assert streamer.value(pm, big) < dcu.value(pm, big)

    # (c/g) Adjacent-line sits in between / at least above 1.
    adjacent = by_panel["adjacent cacheline prefetch"]
    assert adjacent.value(pm, big) > 1.3
