"""Benchmark E1 — Figure 2: read amplification vs WSS (read buffer).

Regenerates the paper's Figure 2 for both Optane generations and
asserts claim C1: a FIFO, CPU-cache-exclusive on-DIMM read buffer.
"""

import pytest

from conftest import render_all
from repro.experiments import fig02


@pytest.mark.parametrize("generation", [1, 2])
def bench_fig02(run_experiment, profile, generation):
    report = run_experiment(fig02.run, generation, profile)
    render_all(report)

    buffer_kib = 16 if generation == 1 else 22
    below = (buffer_kib - 4) * 1024
    below = max(below // 2048 * 2048, 2048)  # snap to grid
    above = 32 * 1024

    # C1a: RA = 4 / CpX while the WSS fits the read buffer.
    for cpx, series in ((1, "read 1 cacheline"), (2, "read 2 cachelines"),
                        (4, "read 4 cachelines")):
        assert report.value(series, below) == pytest.approx(4.0 / cpx, rel=0.1)
    # C1b: RA jumps to 4 for every CpX once the buffer overflows (FIFO).
    for series in ("read 1 cacheline", "read 2 cachelines",
                   "read 3 cachelines", "read 4 cachelines"):
        assert report.value(series, above) == pytest.approx(4.0, rel=0.05)
    # C1c: exclusivity — RA never drops below 1 anywhere.
    for series in report.series:
        assert min(series.values) >= 0.99
