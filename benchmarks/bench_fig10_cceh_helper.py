"""Benchmark E7b — Figure 10: helper-thread prefetching in CCEH.

Regenerates the PM and DRAM panels and asserts claim C7: consistent
latency/throughput improvement on PM across worker counts, and no
improvement (degradation) on DRAM.
"""

from conftest import render_all
from repro.experiments import fig10


def bench_fig10(run_experiment, profile):
    pm, dram = run_experiment(fig10.run, 1, profile)
    render_all([pm, dram])

    # PM: the helper improves latency while the single DIMM has
    # bandwidth headroom, with a meaningful peak improvement (paper:
    # up to ~36%).  The paper's artifact notes the improvement "may
    # fade away faster with fewer DIMMs upon multi-threaded insert" —
    # at 8-10 workers on one DIMM the media is saturated and the
    # prefetches no longer pay, so only the low-to-mid counts must win.
    workers = pm.x_values
    improvements = [
        1 - helped / base
        for base, helped in zip(pm.get("latency CCEH"), pm.get("latency CCEH+prefetch"))
    ]
    low_count = [imp for count, imp in zip(workers, improvements) if count <= 6]
    assert all(improvement > 0 for improvement in low_count)
    assert max(improvements) > 0.15

    # PM throughput also improves at low-to-mid worker counts.
    tput_gain = [
        helped / base - 1
        for base, helped in zip(pm.get("tput CCEH"), pm.get("tput CCEH+prefetch"))
    ]
    assert max(tput_gain) > 0.1

    # DRAM: the helper does NOT help (degradation, as in the paper).
    dram_improvements = [
        1 - helped / base
        for base, helped in zip(dram.get("latency CCEH"), dram.get("latency CCEH+prefetch"))
    ]
    assert max(dram_improvements) < 0.05

    # Baseline throughput grows with workers before saturating.
    base_tput = pm.get("tput CCEH")
    assert base_tput[-1] > base_tput[0]
