"""Benchmark — ablations of the inferred on-DIMM design choices.

Not a paper figure: each ablation flips one design choice the paper
inferred (read/write buffer eviction, periodic write-back, the buffer
transition, the sfence reorder window) and asserts that the black-box
signature the paper used to infer it changes accordingly.
"""

from conftest import render_all
from repro.experiments import ablations


def bench_ablation_write_buffer_eviction(run_experiment, profile):
    report = run_experiment(ablations.ablate_write_buffer_eviction)
    render_all(report)
    random_hits = report.get("random eviction")
    fifo_hits = report.get("fifo eviction")
    # Below capacity both absorb; beyond, FIFO collapses to zero on the
    # cyclic pattern while random eviction decays gracefully.
    assert fifo_hits[-1] == 0.0
    assert random_hits[-1] > 0.05
    assert random_hits[2] > fifo_hits[2] + 0.3


def bench_ablation_periodic_writeback(run_experiment, profile):
    report = run_experiment(ablations.ablate_periodic_writeback)
    render_all(report)
    with_wb = report.get("periodic write-back")
    without = report.get("no write-back")
    assert with_wb[0] > 0.8  # WA ~ 1 at 4 KB: the G1 signature
    assert without[0] < 0.05  # absorbed: the G2 signature


def bench_ablation_transition(run_experiment, profile):
    report = run_experiment(ablations.ablate_transition)
    render_all(report)
    with_transition = report.get("with transition")
    without = report.get("without transition")
    assert with_transition[0] > 0  # rmw_avoided
    assert without[0] == 0
    assert with_transition[1] < without[1]  # less media traffic


def bench_ablation_sfence_window(run_experiment, profile):
    report = run_experiment(ablations.ablate_sfence_window)
    render_all(report)
    windowed = report.get("window=2")
    unwindowed = report.get("no window (mfence-like)")
    assert windowed[0] < 400  # distance 0 cheap with the window
    assert unwindowed[0] > 1500  # and expensive without it
