"""Tests for ipmwatch-equivalent telemetry counters."""

import pytest

from repro.stats.counters import TelemetryCounters, TelemetryRegistry


class TestCounters:
    def test_start_at_zero(self):
        counters = TelemetryCounters()
        assert counters.imc_read_bytes == 0
        assert counters.media_write_bytes == 0

    def test_snapshot_is_independent_copy(self):
        counters = TelemetryCounters()
        snap = counters.snapshot()
        counters.imc_read_bytes += 64
        assert snap.imc_read_bytes == 0

    def test_reset(self):
        counters = TelemetryCounters(imc_read_bytes=10, media_read_bytes=20)
        counters.reset()
        assert counters.imc_read_bytes == 0
        assert counters.media_read_bytes == 0


class TestDelta:
    def _delta(self, **after):
        counters = TelemetryCounters()
        snap = counters.snapshot()
        for name, value in after.items():
            setattr(counters, name, value)
        return counters.delta(snap)

    def test_read_amplification(self):
        delta = self._delta(imc_read_bytes=64, media_read_bytes=256)
        assert delta.read_amplification == 4.0

    def test_write_amplification(self):
        delta = self._delta(imc_write_bytes=128, media_write_bytes=256)
        assert delta.write_amplification == 2.0

    def test_zero_denominator_is_zero(self):
        delta = self._delta(media_read_bytes=256)
        assert delta.read_amplification == 0.0
        assert delta.pm_read_ratio == 0.0

    def test_pm_and_imc_read_ratios(self):
        delta = self._delta(demand_read_bytes=256, imc_read_bytes=320, media_read_bytes=512)
        assert delta.imc_read_ratio == 1.25
        assert delta.pm_read_ratio == 2.0

    def test_write_buffer_hit_ratio(self):
        delta = self._delta(write_buffer_hits=3, write_buffer_misses=1)
        assert delta.write_buffer_hit_ratio == 0.75

    def test_read_buffer_hit_ratio_empty(self):
        assert self._delta().read_buffer_hit_ratio == 0.0

    def test_delta_measures_region_between_snapshots(self):
        counters = TelemetryCounters()
        counters.imc_read_bytes = 100
        snap = counters.snapshot()
        counters.imc_read_bytes = 164
        assert counters.delta(snap).imc_read_bytes == 64


class TestRegistry:
    def test_register_returns_same_object(self):
        registry = TelemetryRegistry()
        first = registry.register("pm0")
        second = registry.register("pm0")
        assert first is second

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            TelemetryRegistry().get("nope")

    def test_names_sorted(self):
        registry = TelemetryRegistry()
        registry.register("pm1")
        registry.register("dram0")
        registry.register("pm0")
        assert registry.names() == ["dram0", "pm0", "pm1"]

    def test_aggregate_by_prefix(self):
        registry = TelemetryRegistry()
        registry.register("pm0").imc_read_bytes = 10
        registry.register("pm1").imc_read_bytes = 20
        registry.register("dram0").imc_read_bytes = 40
        assert registry.aggregate("pm").imc_read_bytes == 30
        assert registry.aggregate("").imc_read_bytes == 70

    def test_reset_all(self):
        registry = TelemetryRegistry()
        registry.register("pm0").imc_read_bytes = 10
        registry.reset()
        assert registry.get("pm0").imc_read_bytes == 0


class TestMeasure:
    def test_counters_measure_captures_region(self):
        counters = TelemetryCounters(imc_read_bytes=100)
        with counters.measure() as delta:
            counters.imc_read_bytes += 64
            counters.media_read_bytes += 256
        assert delta.imc_read_bytes == 64
        assert delta.media_read_bytes == 256
        assert delta.read_amplification == 4.0

    def test_delta_filled_only_at_exit(self):
        counters = TelemetryCounters()
        with counters.measure() as delta:
            counters.imc_write_bytes += 64
            assert delta.imc_write_bytes == 0  # not yet finalized
        assert delta.imc_write_bytes == 64

    def test_measure_filled_even_on_exception(self):
        counters = TelemetryCounters()
        with pytest.raises(RuntimeError):
            with counters.measure() as delta:
                counters.imc_write_bytes += 64
                raise RuntimeError("boom")
        assert delta.imc_write_bytes == 64

    def test_registry_measure_spans_devices(self):
        registry = TelemetryRegistry()
        pm0 = registry.register("pm0")
        pm1 = registry.register("pm1")
        registry.register("dram0").imc_read_bytes = 999
        with registry.measure("pm") as delta:
            pm0.imc_read_bytes += 10
            pm1.imc_read_bytes += 20
        assert delta.imc_read_bytes == 30

    def test_registry_measure_sees_devices_mutated_in_place(self):
        # aggregate() returns a detached sum, so measuring *it* would
        # observe nothing; registry.measure re-aggregates at exit.
        registry = TelemetryRegistry()
        device = registry.register("pm0")
        with registry.measure() as delta:
            device.imc_read_bytes += 64
        assert delta.imc_read_bytes == 64

    def test_machine_measure_delegates_to_registry(self):
        from repro.persist import PmHeap
        from repro.system import g1_machine

        machine = g1_machine()
        heap = PmHeap(machine)
        core = machine.new_core()
        addr = heap.pm.alloc_xpline()
        with machine.measure("pm") as delta:
            core.nt_store(addr, 64)
            core.sfence()
        assert delta.imc_write_bytes == 64
