"""Tests for ipmwatch-equivalent telemetry counters."""

import pytest

from repro.stats.counters import TelemetryCounters, TelemetryRegistry


class TestCounters:
    def test_start_at_zero(self):
        counters = TelemetryCounters()
        assert counters.imc_read_bytes == 0
        assert counters.media_write_bytes == 0

    def test_snapshot_is_independent_copy(self):
        counters = TelemetryCounters()
        snap = counters.snapshot()
        counters.imc_read_bytes += 64
        assert snap.imc_read_bytes == 0

    def test_reset(self):
        counters = TelemetryCounters(imc_read_bytes=10, media_read_bytes=20)
        counters.reset()
        assert counters.imc_read_bytes == 0
        assert counters.media_read_bytes == 0


class TestDelta:
    def _delta(self, **after):
        counters = TelemetryCounters()
        snap = counters.snapshot()
        for name, value in after.items():
            setattr(counters, name, value)
        return counters.delta(snap)

    def test_read_amplification(self):
        delta = self._delta(imc_read_bytes=64, media_read_bytes=256)
        assert delta.read_amplification == 4.0

    def test_write_amplification(self):
        delta = self._delta(imc_write_bytes=128, media_write_bytes=256)
        assert delta.write_amplification == 2.0

    def test_zero_denominator_is_zero(self):
        delta = self._delta(media_read_bytes=256)
        assert delta.read_amplification == 0.0
        assert delta.pm_read_ratio == 0.0

    def test_pm_and_imc_read_ratios(self):
        delta = self._delta(demand_read_bytes=256, imc_read_bytes=320, media_read_bytes=512)
        assert delta.imc_read_ratio == 1.25
        assert delta.pm_read_ratio == 2.0

    def test_write_buffer_hit_ratio(self):
        delta = self._delta(write_buffer_hits=3, write_buffer_misses=1)
        assert delta.write_buffer_hit_ratio == 0.75

    def test_read_buffer_hit_ratio_empty(self):
        assert self._delta().read_buffer_hit_ratio == 0.0

    def test_delta_measures_region_between_snapshots(self):
        counters = TelemetryCounters()
        counters.imc_read_bytes = 100
        snap = counters.snapshot()
        counters.imc_read_bytes = 164
        assert counters.delta(snap).imc_read_bytes == 64


class TestRegistry:
    def test_register_returns_same_object(self):
        registry = TelemetryRegistry()
        first = registry.register("pm0")
        second = registry.register("pm0")
        assert first is second

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            TelemetryRegistry().get("nope")

    def test_names_sorted(self):
        registry = TelemetryRegistry()
        registry.register("pm1")
        registry.register("dram0")
        registry.register("pm0")
        assert registry.names() == ["dram0", "pm0", "pm1"]

    def test_aggregate_by_prefix(self):
        registry = TelemetryRegistry()
        registry.register("pm0").imc_read_bytes = 10
        registry.register("pm1").imc_read_bytes = 20
        registry.register("dram0").imc_read_bytes = 40
        assert registry.aggregate("pm").imc_read_bytes == 30
        assert registry.aggregate("").imc_read_bytes == 70

    def test_reset_all(self):
        registry = TelemetryRegistry()
        registry.register("pm0").imc_read_bytes = 10
        registry.reset()
        assert registry.get("pm0").imc_read_bytes == 0
