"""Tests for the write-combining buffer (random eviction, write-back rules)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.write_buffer import WriteBuffer
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng


def make(capacity_xplines=4, periodic=True, period=5000.0, seed=1):
    return WriteBuffer(
        capacity_xplines * 256,
        rng=DeterministicRng(seed),
        periodic_writeback=periodic,
        writeback_period=period,
    )


class TestBasicWrites:
    def test_first_write_is_miss(self):
        buffer = make()
        outcome = buffer.write(0.0, 10, 0)
        assert not outcome.hit
        assert buffer.contains(10)

    def test_second_write_same_xpline_is_hit(self):
        buffer = make()
        buffer.write(0.0, 10, 0)
        outcome = buffer.write(1.0, 10, 1)
        assert outcome.hit

    def test_dirty_and_present_masks(self):
        buffer = make()
        buffer.write(0.0, 10, 2)
        entry = buffer.entry(10)
        assert entry.dirty_mask == 0b0100
        assert entry.present_mask == 0b0100

    def test_servable_only_for_present_slots(self):
        buffer = make()
        buffer.write(0.0, 10, 1)
        assert buffer.servable(10, 1)
        assert not buffer.servable(10, 0)

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ConfigError):
            WriteBuffer(64, rng=DeterministicRng(1))

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            WriteBuffer(1024, rng=DeterministicRng(1), writeback_period=0)


class TestEviction:
    def test_overflow_evicts_exactly_one(self):
        buffer = make(capacity_xplines=2)
        buffer.write(0.0, 1, 0)
        buffer.write(0.0, 2, 0)
        outcome = buffer.write(0.0, 3, 0)
        evictions = [w for w in outcome.writebacks if w.reason == "evict"]
        assert len(evictions) == 1
        assert len(buffer) == 2

    def test_eviction_never_victimizes_incoming(self):
        for seed in range(20):
            buffer = make(capacity_xplines=2, seed=seed)
            buffer.write(0.0, 1, 0)
            buffer.write(0.0, 2, 0)
            outcome = buffer.write(0.0, 3, 0)
            assert outcome.writebacks[-1].xpline in (1, 2)
            assert buffer.contains(3)

    def test_partial_eviction_needs_underfill(self):
        buffer = make(capacity_xplines=1, periodic=False)
        buffer.write(0.0, 1, 0)
        outcome = buffer.write(0.0, 2, 0)
        assert outcome.writebacks[0].needs_underfill_read

    def test_fully_written_eviction_skips_underfill(self):
        buffer = make(capacity_xplines=1, periodic=False)
        for slot in range(4):
            buffer.write(0.0, 1, slot)
        outcome = buffer.write(0.0, 2, 0)
        assert not outcome.writebacks[0].needs_underfill_read

    def test_random_eviction_varies_with_seed(self):
        victims = set()
        for seed in range(30):
            buffer = make(capacity_xplines=4, seed=seed)
            for xpline in range(4):
                buffer.write(0.0, xpline, 0)
            outcome = buffer.write(0.0, 99, 0)
            victims.add(outcome.writebacks[-1].xpline)
        assert len(victims) > 1  # not a fixed (FIFO/LRU) victim


class TestPeriodicWriteback:
    def test_fully_dirty_line_written_back_after_period(self):
        buffer = make(period=1000.0)
        for slot in range(4):
            buffer.write(0.0, 1, slot)
        assert buffer.poll(500.0) == ()
        due = buffer.poll(1500.0)
        assert len(due) == 1
        assert due[0].reason == "periodic"
        assert not due[0].needs_underfill_read
        assert not buffer.contains(1)

    def test_partial_line_never_periodically_written(self):
        buffer = make(period=1000.0)
        buffer.write(0.0, 1, 0)
        assert buffer.poll(10_000.0) == ()
        assert buffer.contains(1)

    def test_disabled_periodic_writeback(self):
        buffer = make(periodic=False, period=1000.0)
        for slot in range(4):
            buffer.write(0.0, 1, slot)
        assert buffer.poll(10_000.0) == ()
        assert buffer.contains(1)

    def test_rewrite_of_fully_dirty_line_flushes_old_version(self):
        # G1 semantics: writing a fully dirty XPLine again drains the
        # completed version first — WA converges to 1 for 100% writes.
        buffer = make(period=100_000.0)
        for slot in range(4):
            buffer.write(0.0, 1, slot)
        outcome = buffer.write(1.0, 1, 0)
        assert outcome.hit
        rewrites = [w for w in outcome.writebacks if w.reason == "rewrite"]
        assert len(rewrites) == 1
        assert buffer.contains(1)  # fresh version resident
        assert buffer.entry(1).dirty_mask == 0b0001

    def test_rewrite_without_periodic_mode_coalesces(self):
        buffer = make(periodic=False)
        for slot in range(4):
            buffer.write(0.0, 1, slot)
        outcome = buffer.write(1.0, 1, 0)
        assert outcome.hit
        assert outcome.writebacks == ()


class TestTransition:
    def test_adopted_line_fully_present(self):
        buffer = make()
        outcome = buffer.adopt_from_read_buffer(0.0, 7, 2)
        assert outcome.transitioned
        entry = buffer.entry(7)
        assert entry.present_mask == 0b1111
        assert entry.dirty_mask == 0b0100

    def test_adopted_line_eviction_skips_underfill(self):
        buffer = make(capacity_xplines=1, periodic=False)
        buffer.adopt_from_read_buffer(0.0, 7, 0)
        outcome = buffer.write(0.0, 8, 0)
        assert not outcome.writebacks[0].needs_underfill_read

    def test_adoption_can_trigger_eviction(self):
        buffer = make(capacity_xplines=1, periodic=False)
        buffer.write(0.0, 1, 0)
        outcome = buffer.adopt_from_read_buffer(0.0, 2, 0)
        assert len(outcome.writebacks) == 1


class TestDrainAll:
    def test_drain_all_empties_buffer(self):
        buffer = make()
        buffer.write(0.0, 1, 0)
        buffer.write(0.0, 2, 1)
        writebacks = buffer.drain_all()
        assert len(writebacks) == 2
        assert len(buffer) == 0


@settings(max_examples=40)
@given(
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 3)), max_size=300),
    st.integers(0, 10),
)
def test_capacity_invariant(writes, seed):
    buffer = make(capacity_xplines=3, seed=seed)
    clock = 0.0
    for xpline, slot in writes:
        clock += 10.0
        buffer.write(clock, xpline, slot)
        assert len(buffer) <= buffer.capacity_lines


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 3)), max_size=200))
def test_dirty_implies_present(writes):
    buffer = make(capacity_xplines=4, periodic=False)
    for xpline, slot in writes:
        buffer.write(0.0, xpline, slot)
        entry = buffer.entry(xpline)
        if entry is not None:
            assert entry.dirty_mask & ~entry.present_mask == 0
