"""Tests for size formatting/parsing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import GIB, KIB, MIB, fmt_size, gib, kib, mib, parse_size


class TestConstructors:
    def test_kib(self):
        assert kib(16) == 16384

    def test_mib(self):
        assert mib(1) == 1024 * 1024

    def test_gib(self):
        assert gib(2) == 2 * 1024**3

    def test_fractional_sizes(self):
        assert mib(27.5) == int(27.5 * MIB)

    def test_constants_consistent(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB


class TestFormat:
    def test_bytes(self):
        assert fmt_size(100) == "100B"

    def test_kilobytes(self):
        assert fmt_size(kib(16)) == "16KB"

    def test_megabytes(self):
        assert fmt_size(mib(16)) == "16MB"

    def test_gigabytes(self):
        assert fmt_size(gib(1)) == "1GB"

    def test_fractional(self):
        assert fmt_size(mib(27.5)) == "27.5MB"


class TestParse:
    def test_plain_bytes(self):
        assert parse_size("512") == 512
        assert parse_size("512B") == 512

    def test_kb(self):
        assert parse_size("16KB") == kib(16)
        assert parse_size("16kb") == kib(16)
        assert parse_size("16k") == kib(16)
        assert parse_size("16KiB") == kib(16)

    def test_mb_and_gb(self):
        assert parse_size("4MB") == mib(4)
        assert parse_size("1GB") == gib(1)

    def test_fractional(self):
        assert parse_size("27.5MB") == int(27.5 * MIB)

    def test_rejects_empty_numeric_part(self):
        with pytest.raises(ValueError):
            parse_size("KB")


@given(st.integers(min_value=1, max_value=1023))
def test_roundtrip_kib(n):
    # Formatting is lossless below the next unit boundary.
    assert parse_size(fmt_size(kib(n))) == kib(n)


@given(st.integers(min_value=1, max_value=1023))
def test_roundtrip_mib(n):
    assert parse_size(fmt_size(mib(n))) == mib(n)


@given(st.integers(min_value=1, max_value=1023))
def test_roundtrip_bytes(n):
    assert parse_size(fmt_size(n)) == n
