"""Tests for the persistent lock and the epoch persistency model."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import DataStoreError
from repro.datastores.pmlock import PersistentLock, measure_handover
from repro.persist import PersistConfig, Persister, PmHeap
from repro.persist.allocator import RegionAllocator
from repro.persist.persistency import PersistencyModel
from repro.system.presets import g1_machine, g2_machine


def setup(generation=1, **kwargs):
    maker = g1_machine if generation == 1 else g2_machine
    machine = maker(prefetchers=PrefetcherConfig.none(), **kwargs)
    return machine, RegionAllocator(machine, "pm")


class TestPersistentLock:
    def test_acquire_release_cycle(self):
        machine, allocator = setup()
        lock = PersistentLock(allocator)
        core = machine.new_core("a")
        lock.acquire(core)
        assert lock.owner == "a"
        lock.release(core)
        assert lock.owner is None

    def test_double_acquire_rejected(self):
        machine, allocator = setup()
        lock = PersistentLock(allocator)
        core = machine.new_core("a")
        lock.acquire(core)
        with pytest.raises(DataStoreError):
            lock.acquire(core)

    def test_release_by_non_owner_rejected(self):
        machine, allocator = setup()
        lock = PersistentLock(allocator)
        a, b = machine.new_core("a"), machine.new_core("b")
        lock.acquire(a)
        with pytest.raises(DataStoreError):
            lock.release(b)

    def test_handover_counted(self):
        machine, allocator = setup()
        lock = PersistentLock(allocator)
        cores = [machine.new_core(f"t{i}") for i in range(2)]
        measure_handover(lock, cores, rounds=10)
        assert lock.acquisitions == 10
        assert lock.handovers == 0  # release happens between acquires

    def test_g1_handover_suffers_rap(self):
        machine, allocator = setup(1)
        lock = PersistentLock(allocator)
        cores = [machine.new_core(f"t{i}") for i in range(2)]
        g1_latency = measure_handover(lock, cores, rounds=50)

        machine2, allocator2 = setup(2)
        lock2 = PersistentLock(allocator2)
        cores2 = [machine2.new_core(f"t{i}") for i in range(2)]
        g2_latency = measure_handover(lock2, cores2, rounds=50)
        assert g1_latency > 3 * g2_latency

    def test_remote_handover_worse(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none(), remote_pm=True)
        local_lock = PersistentLock(RegionAllocator(machine, "pm"))
        remote_lock = PersistentLock(RegionAllocator(machine, "pm_remote"))
        local = measure_handover(
            local_lock, [machine.new_core("a"), machine.new_core("b")], rounds=50
        )
        remote = measure_handover(
            remote_lock, [machine.new_core("c"), machine.new_core("d")], rounds=50
        )
        assert remote > local


class TestEpochPersistency:
    def test_epoch_fences_every_n_writes(self):
        machine, allocator = setup()
        core = machine.new_core()
        persister = Persister(
            core, PersistConfig(model=PersistencyModel.EPOCH, epoch_size=4)
        )
        for _ in range(12):
            persister.write(allocator.alloc(64), 8)
        assert core.fences == 3

    def test_epoch_between_strict_and_relaxed(self):
        results = {}
        for model, epoch in (
            (PersistencyModel.STRICT, 1),
            (PersistencyModel.EPOCH, 8),
            (PersistencyModel.RELAXED, 0),
        ):
            machine, allocator = setup()
            core = machine.new_core()
            persister = Persister(core, PersistConfig(model=model, epoch_size=epoch))
            addrs = [allocator.alloc(64) for _ in range(64)]
            start = core.now
            for addr in addrs:
                persister.write(addr, 8)
            persister.epoch_end()
            results[model] = core.now - start
        assert (
            results[PersistencyModel.RELAXED]
            < results[PersistencyModel.EPOCH]
            < results[PersistencyModel.STRICT]
        )

    def test_epoch_label(self):
        config = PersistConfig(model=PersistencyModel.EPOCH, epoch_size=16)
        assert "epoch16" in config.label
