"""Generation-difference and flush-variant tests not covered elsewhere."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import cacheline_index
from repro.common.units import kib
from repro.core.microbench.pointer_chase import PointerChaseBench
from repro.persist import PmHeap
from repro.persist.persistency import PersistencyModel
from repro.system.presets import g1_machine, g2_machine, machine_for


def quiet(generation, **kwargs):
    kwargs.setdefault("prefetchers", PrefetcherConfig.none())
    return machine_for(generation, **kwargs)


class TestClflushVariants:
    def test_clflushopt_always_invalidates_on_g2(self):
        machine = quiet(2)
        core = machine.new_core()
        addr = machine.region_spec("pm").base
        core.store(addr, 8)
        core.clflushopt(addr)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_clflush_waits_for_acceptance(self):
        machine = quiet(1)
        core = machine.new_core()
        addr = machine.region_spec("pm").base
        core.store(addr, 8)
        cost = core.clflush(addr)
        # Legacy clflush is ordered: its cost already includes the
        # acceptance wait, so a following fence adds almost nothing.
        assert cost >= machine.config.wpq_accept_latency
        assert core.sfence() <= machine.config.timing.sfence_cost + 1

    def test_clflushopt_cheaper_than_clflush(self):
        machine = quiet(1)
        core = machine.new_core()
        base = machine.region_spec("pm").base
        core.store(base, 8)
        opt_cost = core.clflushopt(base)
        core.store(base + 4096, 8)
        legacy_cost = core.clflush(base + 4096)
        assert opt_cost < legacy_cost


class TestGenerationContrasts:
    def test_g2_buffer_hit_latency_higher(self):
        # §3.5: "significant increase in the latency of hitting the
        # on-DIMM buffers" on G2.
        def buffer_hit_latency(machine):
            core = machine.new_core()
            addr = machine.region_spec("pm").base
            core.load(addr, 8)  # install XPLine in read buffer
            core.clflushopt(addr)
            core.sfence()
            core.mfence()
            return core.load(addr + 64, 8)  # sibling slot: buffer hit

        g1_latency = buffer_hit_latency(quiet(1))
        g2_latency = buffer_hit_latency(quiet(2))
        assert g2_latency > g1_latency

    def test_g2_dram_slower_in_cycles(self):
        # The G2 server clocks higher; DRAM costs more cycles.
        def dram_load(machine):
            core = machine.new_core()
            return core.load(machine.region_spec("dram").base, 8)

        assert dram_load(quiet(2)) > dram_load(quiet(1))

    def test_clwb_nt_convergence_below_llc_g2(self):
        # §3.6: on G2 "the performance of clwb and nt-store converges
        # when the WSS is smaller than the L3 cache size".
        machine = quiet(2)
        clwb = PointerChaseBench(machine, kib(256), False).run(
            "clwb", PersistencyModel.STRICT, max_ops=3000
        )
        machine = quiet(2)
        nt = PointerChaseBench(machine, kib(256), False).run(
            "nt-store", PersistencyModel.STRICT, max_ops=3000
        )
        assert clwb.cycles_per_element == pytest.approx(nt.cycles_per_element, rel=0.35)

    def test_eadr_flag_defaults_off(self):
        assert not g1_machine().config.eadr
        assert not g2_machine().config.eadr

    def test_g1_has_no_eadr_parameter_effect(self):
        # eADR is a G2-platform feature; the G1 preset does not take it.
        machine = g1_machine()
        assert machine.config.eadr is False


class TestWindowEdgeCases:
    def test_window_survives_sfence_but_not_mfence(self):
        machine = quiet(1)
        core = machine.new_core()
        addr = machine.region_spec("pm").base
        core.store(addr, 8)
        core.clwb(addr)
        core.sfence()
        assert core.window_contains(cacheline_index(addr))
        core.mfence()
        assert not core.window_contains(cacheline_index(addr))

    def test_window_is_bounded(self):
        machine = quiet(1)
        core = machine.new_core()
        base = machine.region_spec("pm").base
        lines = []
        for index in range(4):
            addr = base + index * 4096
            core.store(addr, 8)
            core.clwb(addr)
            lines.append(cacheline_index(addr))
        core.sfence()
        # Only the last `window` (=2) flushes remain overtakable.
        assert not core.window_contains(lines[0])
        assert not core.window_contains(lines[1])
        assert core.window_contains(lines[2])
        assert core.window_contains(lines[3])
