"""Tests for the black-box inference battery.

These validate the paper's methodology end-to-end: configure a device
with known (sometimes ablated) internals, run only the black-box
probes, and check they recover the configuration.
"""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.units import kib
from repro.core.inference import (
    characterize,
    infer_periodic_writeback,
    infer_read_buffer_capacity,
    infer_write_buffer_capacity,
    infer_write_buffer_eviction,
    profile_rap,
    quiet_factory,
)
from repro.dimm.config import OptaneDimmConfig
from repro.system.presets import g1_machine


def factory_with(**optane_overrides):
    config = OptaneDimmConfig.g1(**optane_overrides)

    def build():
        return g1_machine(prefetchers=PrefetcherConfig.none(), optane=config)

    return build


class TestReadBufferInference:
    def test_g1_capacity(self):
        capacity = infer_read_buffer_capacity(quiet_factory(1))
        assert capacity == kib(16)

    def test_g2_capacity(self):
        capacity = infer_read_buffer_capacity(quiet_factory(2))
        assert kib(21) <= capacity <= kib(22)

    def test_custom_capacity_recovered(self):
        capacity = infer_read_buffer_capacity(factory_with(read_buffer_bytes=kib(32)))
        assert capacity == kib(32)


class TestWriteBufferInference:
    def test_g1_capacity(self):
        capacity = infer_write_buffer_capacity(quiet_factory(1))
        assert kib(11) <= capacity <= kib(12)

    def test_g2_capacity(self):
        capacity = infer_write_buffer_capacity(quiet_factory(2))
        assert kib(15) <= capacity <= kib(16)

    def test_eviction_policy_random_detected(self):
        assert infer_write_buffer_eviction(quiet_factory(1)) == "random"

    def test_eviction_policy_fifo_detected(self):
        assert (
            infer_write_buffer_eviction(factory_with(write_buffer_eviction="fifo")) == "fifo"
        )


class TestWritebackInference:
    def test_g1_periodic(self):
        assert infer_periodic_writeback(quiet_factory(1)) is True

    def test_g2_not_periodic(self):
        assert infer_periodic_writeback(quiet_factory(2)) is False


class TestRapProfile:
    def test_g1_suffers(self):
        profile = profile_rap(quiet_factory(1))
        assert profile.suffers_rap
        assert profile.peak_cycles > 1500

    def test_g2_clwb_does_not(self):
        profile = profile_rap(quiet_factory(2))
        assert not profile.suffers_rap

    def test_g2_nt_store_still_suffers(self):
        profile = profile_rap(quiet_factory(2), flush="nt-store")
        assert profile.suffers_rap


class TestCharacterize:
    def test_full_battery_on_g1(self):
        profile = characterize(quiet_factory(1))
        assert profile.read_buffer_bytes == kib(16)
        assert kib(11) <= profile.write_buffer_bytes <= kib(12)
        assert profile.write_buffer_eviction == "random"
        assert profile.periodic_writeback
        assert profile.rap.suffers_rap
        text = profile.describe()
        assert "16 KB" in text
        assert "random eviction" in text
