"""Tests for the CCEH hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import DataStoreError, KeyNotFoundError
from repro.core.analysis import InstrumentedCore
from repro.datastores.cceh import (
    BUCKET_SLOTS,
    SEGMENT_BUCKETS,
    SEGMENT_BYTES,
    CcehHashTable,
    Segment,
)
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine


def make_table(initial_depth=2):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    heap = PmHeap(machine)
    return machine, CcehHashTable(heap.pm, initial_depth=initial_depth)


class TestSegment:
    def test_geometry(self):
        assert SEGMENT_BYTES == 64 + SEGMENT_BUCKETS * 64

    def test_bucket_addresses_cacheline_aligned(self):
        segment = Segment(base_addr=0, local_depth=1)
        for index in (0, 1, 255):
            assert segment.bucket_addr(index) % 64 == 0

    def test_probe_window_wraps(self):
        segment = Segment(base_addr=0, local_depth=1)
        assert segment.probe_buckets(254) == [254, 255, 0, 1]

    def test_load_factor(self):
        segment = Segment(base_addr=0, local_depth=1)
        segment.buckets[0].append((1, 2))
        assert segment.pair_count() == 1
        assert 0 < segment.load_factor < 0.01


class TestBasicOperations:
    def test_insert_then_get(self):
        _, table = make_table()
        table.insert(42, 99)
        assert table.get(42) == 99

    def test_missing_key_raises(self):
        _, table = make_table()
        with pytest.raises(KeyNotFoundError):
            table.get(42)

    def test_update_existing_key(self):
        _, table = make_table()
        table.insert(42, 1)
        table.insert(42, 2)
        assert table.get(42) == 2
        assert table.stats.updates == 1
        assert table.stats.inserts == 1

    def test_contains(self):
        _, table = make_table()
        table.insert(1, 1)
        assert table.contains(1)
        assert not table.contains(2)

    def test_remove(self):
        _, table = make_table()
        table.insert(1, 1)
        table.remove(1)
        assert not table.contains(1)

    def test_remove_missing_raises(self):
        _, table = make_table()
        with pytest.raises(KeyNotFoundError):
            table.remove(5)

    def test_len_tracks_live_keys(self):
        _, table = make_table()
        table.insert(1, 1)
        table.insert(2, 2)
        table.remove(1)
        assert len(table) == 1

    def test_bad_initial_depth(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        with pytest.raises(DataStoreError):
            CcehHashTable(PmHeap(machine).pm, initial_depth=0)


class TestResizing:
    def test_many_inserts_trigger_splits(self):
        _, table = make_table()
        for key in range(30_000):
            table.insert(key, key)
        assert table.stats.segment_splits > 0
        assert table.segment_count > 4

    def test_directory_doubles(self):
        _, table = make_table(initial_depth=1)
        for key in range(30_000):
            table.insert(key, key)
        assert table.stats.directory_doublings > 0
        assert table.directory_size == 2**table.global_depth

    def test_all_keys_survive_splits(self):
        _, table = make_table()
        count = 20_000
        for key in range(count):
            table.insert(key, key * 2)
        for key in range(0, count, 97):
            assert table.get(key) == key * 2

    def test_invariants_after_growth(self):
        _, table = make_table()
        for key in range(25_000):
            table.insert(key, key)
        table.check_invariants()

    def test_footprint_grows(self):
        _, table = make_table()
        initial = table.footprint_bytes
        for key in range(20_000):
            table.insert(key, key)
        assert table.footprint_bytes > initial


class TestMemoryTraffic:
    def test_insert_issues_pm_traffic(self):
        machine, table = make_table()
        core = machine.new_core()
        table.insert(7, 7, core)
        counters = machine.pm_counters()
        assert counters.imc_write_bytes >= 64  # the persisted bucket
        assert core.loads >= 2  # directory + bucket

    def test_insert_uses_the_configured_fence(self):
        machine, table = make_table()
        core = machine.new_core()
        table.insert(7, 7, core)
        assert core.last_fence == "mfence"  # CCEH uses a full memory fence

    def test_get_issues_no_writes(self):
        machine, table = make_table()
        table.insert(7, 7)
        core = machine.new_core()
        table.get(7, core)
        assert machine.pm_counters().imc_write_bytes == 0

    def test_phases_reported(self):
        machine, table = make_table()
        core = InstrumentedCore(machine.new_core())
        table.insert(7, 7, core)
        fractions = core.breakdown.fractions()
        assert "segment" in fractions
        assert "persist" in fractions

    def test_prefetch_trace_is_load_only(self):
        machine, table = make_table()
        table.insert(7, 7)
        core = machine.new_core()
        table.prefetch_trace(core, 7)
        assert core.stores == 0
        assert core.flushes == 0
        assert core.loads == 2

    def test_prefetch_trace_warms_cache_for_insert(self):
        machine, table = make_table()
        helper = machine.new_core("helper")
        worker = machine.new_core("worker")
        table.prefetch_trace(helper, 1234)
        start = worker.now
        table.insert(1234, 1, worker)
        warm_cost = worker.now - start

        machine2, table2 = make_table()
        worker2 = machine2.new_core("worker")
        start = worker2.now
        table2.insert(1234, 1, worker2)
        cold_cost = worker2.now - start
        assert warm_cost < cold_cost


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**60), min_size=1, max_size=400, unique=True))
def test_model_equivalence(keys):
    """CCEH behaves like a dict under inserts/updates."""
    _, table = make_table()
    reference = {}
    for key in keys:
        value = key % 1000
        table.insert(key, value)
        reference[key] = value
    for key, value in reference.items():
        assert table.get(key) == value
    table.check_invariants()
