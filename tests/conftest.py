"""Test-suite-wide marker wiring (see ``[tool.pytest.ini_options]``).

Three speed tiers partition the suite:

* ``fast`` — tier-1; auto-applied to every test that carries neither
  ``slow`` nor ``campaign``, so ``-m fast`` selects exactly the
  default tier without hand-marking hundreds of tests.
* ``slow`` — tier-2; deselected by the project-wide ``-m "not slow"``
  addopts, re-selected in CI with ``-m slow``.
* ``campaign`` — full-sweep scale; implies ``slow`` (added here) so
  the tier-1 filter never picks a campaign up by accident.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if item.get_closest_marker("campaign") is not None:
            item.add_marker(pytest.mark.slow)
        if (
            item.get_closest_marker("slow") is None
            and item.get_closest_marker("campaign") is None
        ):
            item.add_marker(pytest.mark.fast)
