"""Tests for the persistent linked list (§3.6 working set)."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE
from repro.common.errors import DataStoreError
from repro.datastores.linkedlist import PersistentLinkedList
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine


def make_list(count=16, sequential=True, seed=7):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    heap = PmHeap(machine)
    return machine, PersistentLinkedList(heap.pm, count, sequential=sequential, seed=seed)


class TestConstruction:
    def test_elements_xpline_aligned(self):
        _, lst = make_list()
        for element in lst.elements:
            assert element.addr % XPLINE_SIZE == 0

    def test_sequential_chain(self):
        _, lst = make_list(4, sequential=True)
        assert [e.next_index for e in lst.elements] == [1, 2, 3, 0]

    def test_random_chain_is_cycle(self):
        _, lst = make_list(50, sequential=False)
        lst.verify_cycle()

    def test_pointer_and_pad_in_different_cachelines(self):
        _, lst = make_list()
        element = lst.elements[0]
        assert element.pad_addr(1) - element.pointer_addr == 64
        with pytest.raises(DataStoreError):
            element.pad_addr(0)

    def test_empty_rejected(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        with pytest.raises(DataStoreError):
            PersistentLinkedList(PmHeap(machine).pm, 0)


class TestTraversal:
    def test_full_cycle_returns_to_start(self):
        machine, lst = make_list(16)
        core = machine.new_core()
        assert lst.traverse(core) == 0
        assert core.loads == 16

    def test_partial_traverse(self):
        machine, lst = make_list(16)
        assert lst.traverse(steps=3) == 3

    def test_update_pass_persists_each_element(self):
        machine, lst = make_list(8)
        core = machine.new_core()
        lst.update_pass(core)
        assert core.flushes == 8
        assert core.fences == 8

    def test_relaxed_pass_single_fence(self):
        machine, lst = make_list(8)
        core = machine.new_core()
        lst.update_pass(core, persist=False)
        assert core.fences == 1

    def test_updates_do_not_invalidate_pointers(self):
        machine, lst = make_list(8)
        core = machine.new_core()
        lst.traverse(core)  # pointers now cached
        lst.update_pass(core)
        from repro.common.constants import cacheline_index

        assert machine.caches.contains(cacheline_index(lst.elements[0].pointer_addr))
