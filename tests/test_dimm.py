"""Tests for the Optane and DRAM DIMM front-ends."""

import pytest

from repro.common.rng import DeterministicRng
from repro.common.units import kib
from repro.dimm.config import DramDimmConfig, OptaneDimmConfig
from repro.dimm.dram import DramDimm
from repro.dimm.optane import OptaneDimm
from repro.media.ait import AitConfig
from repro.media.xpoint import XPointConfig
from repro.stats.counters import TelemetryCounters


def make_optane(generation=1, **overrides):
    base = OptaneDimmConfig.g1() if generation == 1 else OptaneDimmConfig.g2()
    if overrides:
        import dataclasses

        base = dataclasses.replace(base, **overrides)
    counters = TelemetryCounters()
    return OptaneDimm(base, counters, DeterministicRng(3)), counters


class TestOptaneConfig:
    def test_g1_preset(self):
        config = OptaneDimmConfig.g1()
        assert config.generation == 1
        assert config.read_buffer_bytes == kib(16)
        assert config.write_buffer_bytes == kib(12)
        assert config.periodic_writeback

    def test_g2_preset(self):
        config = OptaneDimmConfig.g2()
        assert config.generation == 2
        assert config.read_buffer_bytes == kib(22)
        assert config.write_buffer_bytes == kib(16)
        assert not config.periodic_writeback

    def test_g2_buffer_latency_higher(self):
        assert OptaneDimmConfig.g2().buffer_read_latency > OptaneDimmConfig.g1().buffer_read_latency

    def test_overrides(self):
        config = OptaneDimmConfig.g1(read_buffer_bytes=kib(32))
        assert config.read_buffer_bytes == kib(32)

    def test_validation(self):
        import dataclasses
        from repro.common.errors import ConfigError

        bad = dataclasses.replace(OptaneDimmConfig.g1(), generation=3)
        with pytest.raises(ConfigError):
            bad.validate()


class TestOptaneReadPath:
    def test_cold_read_goes_to_media(self):
        dimm, counters = make_optane()
        response = dimm.read_line(0.0, 0)
        assert response.source == "media"
        assert counters.media_read_bytes == 256
        assert counters.imc_read_bytes == 64

    def test_sibling_cacheline_hits_read_buffer(self):
        dimm, counters = make_optane()
        dimm.read_line(0.0, 0)
        response = dimm.read_line(1000.0, 64)
        assert response.source == "read-buffer"
        assert counters.media_read_bytes == 256  # no second media read

    def test_exclusivity_same_line_rereads_media(self):
        dimm, counters = make_optane()
        dimm.read_line(0.0, 0)
        response = dimm.read_line(1000.0, 0)
        assert response.source == "media"
        assert counters.media_read_bytes == 512

    def test_buffer_hit_faster_than_media(self):
        dimm, _ = make_optane()
        cold = dimm.read_line(0.0, 0)
        warm = dimm.read_line(cold.finish, 64)
        assert warm.finish - cold.finish < cold.finish

    def test_read_served_from_write_buffer(self):
        dimm, counters = make_optane()
        dimm.ingest_write(0.0, 0)
        response = dimm.read_line(1000.0, 0)
        assert response.source == "write-buffer"

    def test_unwritten_slot_triggers_rmw_fill(self):
        dimm, counters = make_optane()
        dimm.ingest_write(0.0, 0)  # slot 0 dirty
        response = dimm.read_line(1000.0, 64)  # slot 1: not held yet
        assert response.source == "write-buffer-fill"
        assert counters.media_read_bytes == 256
        # After the fill, every slot of the XPLine is servable cheaply.
        assert dimm.read_line(2000.0, 128).source == "write-buffer"
        assert counters.media_read_bytes == 256  # no second media read

    def test_demand_flag_controls_demand_counter(self):
        dimm, counters = make_optane()
        dimm.read_line(0.0, 0, demand=False)
        assert counters.demand_read_bytes == 0
        dimm.read_line(0.0, 64, demand=True)
        assert counters.demand_read_bytes == 64


class TestOptaneWritePath:
    def test_write_counts_imc_bytes(self):
        dimm, counters = make_optane()
        dimm.ingest_write(0.0, 0)
        assert counters.imc_write_bytes == 64

    def test_small_writes_absorbed_no_media_write(self):
        dimm, counters = make_optane()
        for xpline in range(8):
            dimm.ingest_write(0.0, xpline * 256)
        assert counters.media_write_bytes == 0

    def test_capacity_eviction_writes_media(self):
        dimm, counters = make_optane()
        lines = dimm.write_buffer.capacity_lines
        for xpline in range(lines + 4):
            dimm.ingest_write(float(xpline), xpline * 256)
        assert counters.media_write_bytes > 0
        assert counters.write_buffer_evictions > 0

    def test_persist_completion_after_ingest(self):
        dimm, _ = make_optane()
        response = dimm.ingest_write(0.0, 0)
        assert response.persist_completion > response.ingest_finish

    def test_write_hit_on_same_xpline(self):
        dimm, counters = make_optane()
        dimm.ingest_write(0.0, 0)
        dimm.ingest_write(1.0, 64)
        assert counters.write_buffer_hits == 1

    def test_transition_from_read_buffer(self):
        dimm, counters = make_optane()
        dimm.read_line(0.0, 0)
        dimm.ingest_write(1000.0, 64)
        assert counters.rmw_avoided == 1
        assert not dimm.read_buffer.contains(0)
        assert dimm.write_buffer.contains(0)
        # The adopted line can now serve reads for any slot.
        assert dimm.read_line(2000.0, 128).source == "write-buffer"

    def test_g1_periodic_writeback_of_full_lines(self):
        dimm, counters = make_optane(1)
        for slot in range(4):
            dimm.ingest_write(0.0, slot * 64)
        dimm.idle_tick(100_000.0)
        assert counters.periodic_writebacks == 1
        assert counters.media_write_bytes == 256

    def test_g2_no_periodic_writeback(self):
        dimm, counters = make_optane(2)
        for slot in range(4):
            dimm.ingest_write(0.0, slot * 64)
        dimm.idle_tick(100_000.0)
        assert counters.media_write_bytes == 0

    def test_power_failure_drain(self):
        dimm, counters = make_optane()
        dimm.ingest_write(0.0, 0)
        dimm.ingest_write(0.0, 256)
        drained = dimm.drain_for_power_failure(1.0)
        assert drained == 2
        assert counters.media_write_bytes == 512
        assert len(dimm.write_buffer) == 0


class TestDramDimm:
    def make(self):
        counters = TelemetryCounters()
        return DramDimm(DramDimmConfig(), counters), counters

    def test_read(self):
        dimm, counters = self.make()
        response = dimm.read_line(0.0, 0)
        assert counters.imc_read_bytes == 64
        assert counters.media_read_bytes == 64
        assert response.finish > 0

    def test_write_persist_completion_fast_relative_to_optane(self):
        dram, _ = self.make()
        optane, _ = make_optane()
        dram_resp = dram.ingest_write(0.0, 0)
        optane_resp = optane.ingest_write(0.0, 0)
        assert dram_resp.persist_completion < optane_resp.persist_completion

    def test_no_amplification(self):
        dimm, counters = self.make()
        dimm.read_line(0.0, 0)
        assert counters.media_read_bytes == counters.imc_read_bytes
