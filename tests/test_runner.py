"""Tests for repro.runner: cache, engine, registry, determinism."""

import json

import pytest

from repro.experiments.common import ExperimentReport
from repro.runner import (
    REGISTRY,
    ExperimentSpec,
    ResultCache,
    RunRequest,
    cached_call,
    code_version,
    request_key,
    resolve_names,
    run_sweep,
)
from repro.runner import engine as engine_module


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own cache root and a pinned code version."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-code-version")


def make_report(experiment_id="syn", value=1.0):
    report = ExperimentReport(experiment_id, "synthetic", "x", [1, 2])
    report.add_series("s", [value, value * 2])
    report.notes.append("a note")
    return report


CALLS = {"count": 0}


def _synthetic_run(generation, profile):
    CALLS["count"] += 1
    return [make_report(f"syn-g{generation}-{profile}")]


@pytest.fixture
def synthetic(monkeypatch):
    """Register a cheap experiment and reset its invocation counter."""
    spec = ExperimentSpec("syn", "synthetic experiment", _synthetic_run)
    monkeypatch.setitem(REGISTRY, "syn", spec)
    CALLS["count"] = 0
    return spec


class TestRequestKey:
    def test_stable(self):
        assert request_key("fig2", 1, "fast") == request_key("fig2", 1, "fast")

    def test_varies_with_every_component(self):
        base = request_key("fig2", 1, "fast")
        assert request_key("fig3", 1, "fast") != base
        assert request_key("fig2", 2, "fast") != base
        assert request_key("fig2", 1, "full") != base
        assert request_key("fig2", 1, "fast", {"k": 1}) != base
        assert request_key("fig2", 1, "fast", version="other") != base

    def test_override_order_irrelevant(self):
        assert request_key("e", 1, "fast", {"a": 1, "b": 2}) == request_key(
            "e", 1, "fast", {"b": 2, "a": 1}
        )

    def test_code_version_pinned_by_env(self):
        assert code_version() == "test-code-version"


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.load("0" * 64) is None
        cache.store("0" * 64, [make_report()])
        loaded = cache.load("0" * 64)
        assert loaded == [make_report()]
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidate(self):
        cache = ResultCache()
        cache.store("1" * 64, [make_report()])
        assert cache.invalidate("1" * 64)
        assert not cache.invalidate("1" * 64)
        assert cache.load("1" * 64) is None

    def test_corrupt_entry_is_a_miss(self):
        cache = ResultCache()
        path = cache.store("2" * 64, [make_report()])
        path.write_text("{not json")
        assert cache.load("2" * 64) is None

    def test_clear_and_len(self):
        cache = ResultCache()
        cache.store("3" * 64, [make_report()])
        cache.store("4" * 64, [make_report()])
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_unwritable_root_degrades_to_uncached(self):
        cache = ResultCache("/proc/nonexistent-cache-root")
        assert cache.store("6" * 64, [make_report()]) is None
        assert cache.write_errors == 1
        assert cache.load("6" * 64) is None  # a miss, not an exception

    def test_entry_records_request_metadata(self):
        cache = ResultCache()
        path = cache.store("5" * 64, [make_report()], {"experiment": "syn"}, 1.5)
        payload = json.loads(path.read_text())
        assert payload["request"] == {"experiment": "syn"}
        assert payload["wall_time"] == 1.5
        assert payload["code_version"] == "test-code-version"


class TestReportRoundTrip:
    def test_json_round_trip_equality(self):
        report = make_report()
        report.x_is_size = True
        assert ExperimentReport.from_json(report.to_json()) == report

    def test_round_trip_preserves_notes_and_formatting(self):
        report = ExperimentReport("t", "t", "bytes", [4096, 16384], x_is_size=True)
        report.add_series("lat", [1.25, 2.5])
        report.notes.append("calibrated")
        clone = ExperimentReport.from_json(report.to_json())
        assert clone.notes == ["calibrated"]
        assert clone.render() == report.render()
        assert clone.to_csv() == report.to_csv()
        assert "4KB" in clone.to_csv()


class TestFormatX:
    def test_explicit_size_flag_formats_any_label(self):
        report = ExperimentReport("t", "t", "bytes", [16384], x_is_size=True)
        report.add_series("s", [1.0])
        assert "16KB" in report.render()

    def test_explicit_false_disables_heuristic(self):
        report = ExperimentReport("t", "t", "WSS", [16384], x_is_size=False)
        report.add_series("s", [1.0])
        assert "16384" in report.render()
        assert "16KB" not in report.render()

    def test_legacy_heuristic_still_applies_when_unset(self):
        report = ExperimentReport("t", "t", "WSS", [16384])
        report.add_series("s", [1.0])
        assert "16KB" in report.render()

    def test_csv_and_table_agree(self):
        report = ExperimentReport("t", "t", "size", [65536], x_is_size=True)
        report.add_series("s", [1.0])
        assert "64KB" in report.to_csv()
        assert "64KB" in report.render()


class TestRunSweep:
    def test_cache_miss_then_hit(self, synthetic):
        cache = ResultCache()
        requests = [RunRequest.make("syn")]
        first, metrics1 = run_sweep(requests, cache=cache)
        assert metrics1.cache_misses == 1 and metrics1.cache_hits == 0
        assert not first[0].cached
        second, metrics2 = run_sweep(requests, cache=cache)
        assert metrics2.cache_hits == 1 and metrics2.cache_misses == 0
        assert second[0].cached
        assert second[0].reports == first[0].reports
        assert CALLS["count"] == 1

    def test_force_recomputes(self, synthetic):
        cache = ResultCache()
        requests = [RunRequest.make("syn")]
        run_sweep(requests, cache=cache)
        results, metrics = run_sweep(requests, cache=cache, force=True)
        assert metrics.cache_misses == 1 and metrics.cache_hits == 0
        assert not results[0].cached
        assert CALLS["count"] == 2
        # --force also refreshed the entry, so a third run hits again.
        _, metrics3 = run_sweep(requests, cache=cache)
        assert metrics3.cache_hits == 1

    def test_no_cache_always_computes(self, synthetic):
        requests = [RunRequest.make("syn")]
        run_sweep(requests, cache=None)
        run_sweep(requests, cache=None)
        assert CALLS["count"] == 2

    def test_results_in_request_order(self, synthetic):
        requests = [RunRequest.make("syn", generation=2), RunRequest.make("syn")]
        results, _ = run_sweep(requests)
        assert [r.request.generation for r in results] == [2, 1]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_sweep([RunRequest.make("nope")])

    def test_progress_callback_sees_everything(self, synthetic):
        cache = ResultCache()
        seen = []
        run_sweep([RunRequest.make("syn")], cache=cache, progress=seen.append)
        run_sweep([RunRequest.make("syn")], cache=cache, progress=seen.append)
        assert [result.cached for result in seen] == [False, True]

    def test_pool_failure_falls_back_to_serial(self, synthetic, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        results, metrics = run_sweep([RunRequest.make("syn")], jobs=4)
        assert metrics.pool_fallback
        assert results[0].reports == [make_report("syn-g1-fast")]

    def test_metrics_summary_mentions_cache_counters(self, synthetic):
        cache = ResultCache()
        _, metrics = run_sweep([RunRequest.make("syn")], cache=cache)
        assert "0 hits / 1 miss" in metrics.summary()


class TestDeterminismAcrossJobs:
    def test_jobs1_equals_jobs4_including_shards(self):
        # sec33 is unsharded and cheap; fig2 exercises the per-curve
        # shard/merge path.  Real pool where available, serial
        # fallback otherwise — results must be identical either way.
        requests = [RunRequest.make("sec33"), RunRequest.make("fig2")]
        serial, _ = run_sweep(requests, jobs=1)
        parallel, _ = run_sweep(requests, jobs=4)
        for a, b in zip(serial, parallel):
            assert [r.to_dict() for r in a.reports] == [r.to_dict() for r in b.reports]


class TestRegistry:
    def test_resolve_all(self):
        assert resolve_names(["all"]) == list(REGISTRY)

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve_names(["fig2", "fig99"])

    def test_sharded_specs_expose_merge(self):
        for spec in REGISTRY.values():
            assert (spec.subtasks is None) == (spec.merge is None)

    def test_fig2_shards_match_direct_run(self):
        spec = REGISTRY["fig2"]
        tasks = spec.subtasks(1, "fast")
        merged = spec.merge(1, "fast", [task(1, "fast") for task in tasks])
        direct = spec.run(1, "fast")
        assert [r.to_dict() for r in merged] == [r.to_dict() for r in direct]


class TestCachedCall:
    def test_single_report_shape_preserved(self, synthetic):
        def produce():
            CALLS["count"] += 1
            return make_report("direct")

        first = cached_call(produce)
        second = cached_call(produce)
        assert isinstance(second, ExperimentReport)
        assert first == second
        assert CALLS["count"] == 1

    def test_list_shape_preserved(self):
        def produce():
            return [make_report("a"), make_report("b")]

        assert cached_call(produce) == cached_call(produce)
        assert isinstance(cached_call(produce), list)

    def test_non_report_results_bypass_cache(self):
        calls = []

        def produce():
            calls.append(1)
            return {"not": "a report"}

        assert cached_call(produce) == {"not": "a report"}
        cached_call(produce)
        assert len(calls) == 2


import multiprocessing
import os
import time
import warnings
from pathlib import Path


def _pool_usable():
    """True when this sandbox can fork a real worker pool."""
    if multiprocessing.get_start_method() != "fork":
        return False  # spawned workers would not see monkeypatched specs
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(1) as pool:
            return pool.submit(int, 1).result(timeout=10) == 1
    except Exception:
        return False


def _require_pool():
    if not _pool_usable():
        pytest.skip("no usable fork-based process pool in this environment")


def _failing_run(generation, profile):
    raise ValueError("synthetic experiment failure")


def _flaky_serial_run(generation, profile):
    CALLS["count"] += 1
    if CALLS["count"] == 1:
        raise ValueError("transient failure")
    return [make_report("flaky")]


def _hanging_run(generation, profile):
    time.sleep(20)  # far beyond any shard_timeout used in tests
    return [make_report("hang")]


def _dying_then_ok_run(generation, profile, flag_path=""):
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("died once")
        os._exit(1)  # hard worker death -> BrokenProcessPool
    return [make_report("revived")]


@pytest.fixture
def hardened_registry(monkeypatch):
    """Register the failure-mode experiments alongside 'syn'."""
    for name, fn in (
        ("syn", _synthetic_run),
        ("bad", _failing_run),
        ("flaky", _flaky_serial_run),
        ("hang", _hanging_run),
        ("dying", _dying_then_ok_run),
    ):
        monkeypatch.setitem(REGISTRY, name, ExperimentSpec(name, f"{name} experiment", fn))
    CALLS["count"] = 0


class TestHardenedSerialPath:
    def test_failing_experiment_degrades_not_raises(self, hardened_registry):
        results, metrics = run_sweep(
            [RunRequest.make("bad"), RunRequest.make("syn")],
            max_retries=1, backoff=0.01,
        )
        assert results[0].error is not None
        assert "ValueError" in results[0].error
        assert results[0].reports == []
        assert results[1].error is None
        assert results[1].reports == [make_report("syn-g1-fast")]
        assert len(metrics.failed_shards) == 1
        record = metrics.failed_shards[0]
        assert record["experiment"] == "bad"
        assert record["shard"] is None
        assert record["attempts"] == 2  # initial try + 1 retry

    def test_flaky_experiment_succeeds_on_retry(self, hardened_registry):
        results, metrics = run_sweep(
            [RunRequest.make("flaky")], max_retries=2, backoff=0.01,
        )
        assert results[0].error is None
        assert results[0].reports == [make_report("flaky")]
        assert metrics.retries == 1
        assert metrics.failed_shards == []

    def test_zero_retries_quarantines_immediately(self, hardened_registry):
        results, metrics = run_sweep(
            [RunRequest.make("flaky")], max_retries=0, backoff=0.01,
        )
        assert results[0].error is not None
        assert metrics.retries == 0
        assert CALLS["count"] == 1

    def test_failed_results_are_never_cached(self, hardened_registry):
        cache = ResultCache()
        run_sweep([RunRequest.make("bad")], cache=cache, max_retries=0, backoff=0.01)
        assert len(cache) == 0
        _, metrics = run_sweep(
            [RunRequest.make("bad")], cache=cache, max_retries=0, backoff=0.01,
        )
        assert metrics.cache_misses == 1 and metrics.cache_hits == 0

    def test_degraded_summary_mentions_quarantine(self, hardened_registry):
        _, metrics = run_sweep(
            [RunRequest.make("bad")], max_retries=1, backoff=0.01,
        )
        assert "DEGRADED" in metrics.summary()
        assert "retr" in metrics.summary()


class TestHardenedPooledPath:
    def test_hanging_worker_is_quarantined_not_fatal(self, hardened_registry):
        _require_pool()
        started = time.perf_counter()
        results, metrics = run_sweep(
            [RunRequest.make("hang"), RunRequest.make("syn")],
            jobs=2, shard_timeout=0.5, max_retries=1, backoff=0.01,
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 15, "sweep waited on the hung worker"
        assert results[0].error is not None
        assert "shard_timeout" in results[0].error
        assert results[1].error is None
        assert results[1].reports == [make_report("syn-g1-fast")]
        assert len(metrics.failed_shards) == 1

    def test_dead_worker_is_retried_in_fresh_pool(self, hardened_registry, tmp_path):
        _require_pool()
        flag = tmp_path / "died-once.flag"
        request = RunRequest.make("dying", overrides={"flag_path": str(flag)})
        results, metrics = run_sweep(
            [request], jobs=2, max_retries=2, backoff=0.01,
        )
        assert results[0].error is None
        assert results[0].reports == [make_report("revived")]
        assert metrics.retries >= 1
        assert flag.exists()

    def test_pooled_failure_degrades_like_serial(self, hardened_registry):
        _require_pool()
        results, metrics = run_sweep(
            [RunRequest.make("bad"), RunRequest.make("syn")],
            jobs=2, max_retries=1, backoff=0.01,
        )
        assert results[0].error is not None
        assert "ValueError" in results[0].error
        assert results[1].reports == [make_report("syn-g1-fast")]
        assert len(metrics.failed_shards) == 1


class TestCacheWriteWarning:
    def test_first_write_failure_warns_once(self):
        cache = ResultCache("/proc/nonexistent-cache-root")
        with pytest.warns(RuntimeWarning, match="unwritable"):
            cache.store("7" * 64, [make_report()])
        # Subsequent failures stay silent: escalate the filter to
        # errors and prove no second warning is raised.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.store("8" * 64, [make_report()]) is None
        assert cache.write_errors == 2
