"""Tests for Algorithm 2 (XPLine access redirection)."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE, cacheline_index
from repro.common.errors import ConfigError
from repro.core.redirection import RedirectionBuffer, redirect_block, writeback_block
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine


def setup(prefetchers=None):
    machine = g1_machine(prefetchers=prefetchers or PrefetcherConfig.none())
    heap = PmHeap(machine)
    block = heap.pm.alloc_xpline()
    staging = RedirectionBuffer(heap.dram.alloc(XPLINE_SIZE, align=XPLINE_SIZE))
    return machine, machine.new_core(), block, staging


class TestRedirectBlock:
    def test_requires_alignment(self):
        machine, core, block, staging = setup()
        with pytest.raises(ConfigError):
            redirect_block(core, block + 64, staging)

    def test_copies_whole_xpline(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        assert machine.pm_counters().demand_read_bytes == XPLINE_SIZE

    def test_pm_lines_not_cached_afterwards(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        assert not machine.caches.contains(cacheline_index(block))

    def test_staging_lines_cached(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        assert machine.caches.contains(cacheline_index(staging.dram_addr))

    def test_no_prefetch_training(self):
        machine, core, block, staging = setup(PrefetcherConfig.only("dcu"))
        redirect_block(core, block, staging)
        # DCU sees the DRAM staging stores/loads but no PM loads; PM
        # prefetches would target the pm region.
        pm_base = machine.region_spec("pm").base
        pm = machine.pm_counters()
        assert pm.imc_read_bytes == XPLINE_SIZE  # exactly the 4 stream loads

    def test_single_media_read_for_block(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        assert machine.pm_counters().media_read_bytes == XPLINE_SIZE

    def test_subsequent_reads_hit_dram_buffer(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        cost = core.load(staging.line_addr(2), 8)
        assert cost < 50


class TestWritebackBlock:
    def test_writeback_persists_all_lines(self):
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        writeback_block(core, block, staging)
        assert machine.pm_counters().imc_write_bytes == XPLINE_SIZE

    def test_writeback_forms_full_xpline_write(self):
        # All four lines merge in the write-combining buffer: at most
        # one media write (after periodic write-back fires).
        machine, core, block, staging = setup()
        redirect_block(core, block, staging)
        writeback_block(core, block, staging)
        counters = machine.pm_counters()
        assert counters.write_buffer_hits >= 3  # lines 2..4 merged
