"""Tests for persistency models and redo logging."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import DataStoreError
from repro.persist.allocator import PmHeap
from repro.persist.log import RedoLog
from repro.persist.persistency import (
    FenceKind,
    FlushKind,
    PersistConfig,
    PersistencyModel,
    Persister,
)
from repro.system.presets import g1_machine


def setup():
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, machine.new_core(), PmHeap(machine)


class TestPersister:
    def test_strict_clwb_write_flushes_and_fences(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        persister = Persister(core, PersistConfig())
        persister.write(addr, 8)
        assert core.flushes == 1
        assert core.fences == 1
        assert machine.pm_counters().imc_write_bytes == 64

    def test_relaxed_defers_fence(self):
        machine, core, heap = setup()
        persister = Persister(core, PersistConfig(model=PersistencyModel.RELAXED))
        for index in range(4):
            persister.write(heap.pm.alloc(64), 8)
        assert core.fences == 0
        persister.epoch_end()
        assert core.fences == 1

    def test_nt_store_variant_bypasses_cache(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        persister = Persister(core, PersistConfig(flush=FlushKind.NT_STORE))
        persister.write(addr, 64)
        assert core.flushes == 0
        assert machine.pm_counters().imc_write_bytes == 64

    def test_clflushopt_variant(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        persister = Persister(core, PersistConfig(flush=FlushKind.CLFLUSHOPT))
        persister.write(addr, 8)
        assert core.flushes == 1

    def test_mfence_variant(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        persister = Persister(core, PersistConfig(fence=FenceKind.MFENCE))
        persister.write(addr, 8)
        assert core.last_fence == "mfence"

    def test_relaxed_cheaper_than_strict(self):
        machine, core, heap = setup()
        addrs = [heap.pm.alloc(64) for _ in range(32)]
        strict = Persister(core, PersistConfig())
        start = core.now
        for addr in addrs:
            strict.write(addr, 8)
        strict_cost = core.now - start

        machine2, core2, heap2 = setup()
        addrs2 = [heap2.pm.alloc(64) for _ in range(32)]
        relaxed = Persister(core2, PersistConfig(model=PersistencyModel.RELAXED))
        start = core2.now
        for addr in addrs2:
            relaxed.write(addr, 8)
        relaxed.epoch_end()
        relaxed_cost = core2.now - start
        assert relaxed_cost < strict_cost

    def test_label(self):
        config = PersistConfig(PersistencyModel.RELAXED, FlushKind.NT_STORE, FenceKind.MFENCE)
        assert config.label == "nt-store+mfence/relaxed"

    def test_write_counter(self):
        machine, core, heap = setup()
        persister = Persister(core, PersistConfig())
        persister.write(heap.pm.alloc(64), 8)
        assert persister.persisted_writes == 1


class TestRedoLog:
    def test_append_persists_entry(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        log.append(heap.pm.alloc(64))
        assert log.pending_count == 1
        assert machine.pm_counters().imc_write_bytes >= 64

    def test_overflow_rejected(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=2)
        log.append(heap.pm.alloc(64))
        log.append(heap.pm.alloc(64))
        with pytest.raises(DataStoreError):
            log.append(heap.pm.alloc(64))

    def test_commit_counts(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        log.append(heap.pm.alloc(64))
        log.commit()
        assert log.committed_batches == 1

    def test_apply_and_reclaim_clears_pending(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        target = heap.pm.alloc(64)
        log.append(target)
        log.commit()
        applied = log.apply_and_reclaim()
        assert [record.target_addr for record in applied] == [target]
        assert log.pending_count == 0

    def test_append_writes_fresh_cachelines(self):
        # The core of the optimization: log entries never reuse a line
        # within a batch, so no append ever RAP-stalls on a prior one.
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        costs = []
        for _ in range(8):
            start = core.now
            log.append(heap.pm.alloc(64))
            costs.append(core.now - start)
        # All appends cost about the same — no RAP blowup.
        assert max(costs) < min(costs) * 2 + 100

    def test_recover_replays_pending(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        targets = [heap.pm.alloc(64) for _ in range(3)]
        for target in targets:
            log.append(target)
        log.commit()
        replayed = log.recover()
        assert [record.target_addr for record in replayed] == targets
        assert log.pending_count == 0

    def test_invalid_capacity(self):
        machine, core, heap = setup()
        with pytest.raises(DataStoreError):
            RedoLog(core, heap, capacity_entries=0)

    def test_cursor_wraps_circularly(self):
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=4)
        for _ in range(3):
            for _ in range(4):
                log.append(heap.pm.alloc(64))
            log.commit()
            log.apply_and_reclaim()
        assert log.logged_updates == 12
