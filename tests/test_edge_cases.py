"""Edge-case tests: boundary sizes, range operations, misc paths."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.core.analysis import InstrumentedCore, read_write_summary
from repro.persist import CrashSimulator, PmHeap
from repro.stats.latency import TimeBreakdown
from repro.system.presets import g1_machine, g2_machine


def quiet(generation=1, **kwargs):
    maker = g1_machine if generation == 1 else g2_machine
    kwargs.setdefault("prefetchers", PrefetcherConfig.none())
    return maker(**kwargs)


class TestRangeOperations:
    def test_load_spanning_two_lines(self):
        machine = quiet()
        core = machine.new_core()
        base = machine.region_spec("pm").base
        core.load(base + CACHELINE_SIZE - 4, 8)  # straddles a boundary
        assert core.loads == 2

    def test_load_spanning_xpline_boundary(self):
        machine = quiet()
        core = machine.new_core()
        base = machine.region_spec("pm").base
        core.load(base + XPLINE_SIZE - 8, 16)
        assert core.loads == 2
        # Two different XPLines were fetched from the media.
        assert machine.pm_counters().media_read_bytes == 2 * XPLINE_SIZE

    def test_zero_size_load_touches_one_line(self):
        machine = quiet()
        core = machine.new_core()
        core.load(machine.region_spec("pm").base, 0)
        assert core.loads == 1

    def test_clwb_range_flushes_each_line(self):
        machine = quiet()
        core = machine.new_core()
        base = machine.region_spec("pm").base
        core.store(base, XPLINE_SIZE)
        core.clwb(base, XPLINE_SIZE)
        assert core.flushes == 4
        assert machine.pm_counters().imc_write_bytes == XPLINE_SIZE

    def test_nt_store_multi_xpline(self):
        machine = quiet()
        core = machine.new_core()
        base = machine.region_spec("pm").base
        core.nt_store(base, 2 * XPLINE_SIZE)
        assert machine.pm_counters().imc_write_bytes == 2 * XPLINE_SIZE


class TestReadWriteSummary:
    def test_other_bucket_collects_custom_phases(self):
        breakdown = TimeBreakdown()
        breakdown.charge("load", 50)
        breakdown.charge("custom-phase", 50)
        summary = read_write_summary(breakdown)
        assert summary["other"] == pytest.approx(0.5)

    def test_empty_breakdown(self):
        summary = read_write_summary(TimeBreakdown())
        assert sum(summary.values()) == 0.0


class TestCrashEdges:
    def test_crash_counter(self):
        machine = quiet()
        simulator = CrashSimulator(machine)
        simulator.power_failure()
        simulator.power_failure()
        assert simulator.crashes == 2

    def test_crash_on_pristine_machine(self):
        report = CrashSimulator(quiet()).power_failure()
        assert not report.lost_pm_lines
        assert report.drained_xplines == 0

    def test_clean_cached_pm_lines_are_not_lost(self):
        machine = quiet()
        core = machine.new_core()
        addr = machine.region_spec("pm").base
        core.load(addr, 8)  # clean resident copy
        report = CrashSimulator(machine).power_failure(core.now)
        assert not report.lost_pm_lines


class TestInstrumentedCoreParity:
    def test_proxy_now_tracks_core(self):
        machine = quiet()
        raw = machine.new_core()
        instrumented = InstrumentedCore(raw)
        instrumented.tick(100)
        assert instrumented.now == raw.now == 100

    def test_all_operations_proxied(self):
        machine = quiet()
        heap = PmHeap(machine)
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(XPLINE_SIZE, align=XPLINE_SIZE)
        core.load(addr, 8)
        core.store(addr, 8)
        core.clwb(addr)
        core.clflush(addr)
        core.clflushopt(addr)
        core.nt_store(addr, 64)
        core.stream_load(addr, 64)
        core.sfence()
        core.mfence()
        core.fence("sfence")
        core.persist(addr)
        assert core.breakdown.total == pytest.approx(core.now)


class TestRegionBoundaries:
    def test_first_and_last_line_of_region(self):
        machine = quiet()
        spec = machine.region_spec("pm")
        core = machine.new_core()
        core.load(spec.base, 8)
        core.load(spec.end - CACHELINE_SIZE, 8)
        assert core.loads == 2

    def test_interleave_boundary_addresses(self):
        machine = quiet(pm_dimms=6)
        spec = machine.region_spec("pm")
        # Consecutive 4 KB pages hit consecutive DIMMs; within a page,
        # all lines hit the same DIMM.
        first = machine.region_of(spec.base).channel_for(spec.base)
        same_page = machine.region_of(spec.base).channel_for(spec.base + 4095)
        next_page = machine.region_of(spec.base).channel_for(spec.base + 4096)
        assert first is same_page
        assert first is not next_page
