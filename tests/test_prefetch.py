"""Tests for the CPU prefetcher models."""

import pytest

from repro.cache.prefetch import (
    LINES_PER_PAGE,
    AdjacentLinePrefetcher,
    DcuPrefetcher,
    PrefetchEngine,
    PrefetcherConfig,
    StreamPrefetcher,
)
from repro.common.rng import DeterministicRng


class TestPrefetcherConfig:
    def test_none_disables_all(self):
        config = PrefetcherConfig.none()
        assert not (config.dcu or config.adjacent or config.streamer)

    def test_only_selects_one(self):
        config = PrefetcherConfig.only("dcu")
        assert config.dcu and not config.adjacent and not config.streamer

    def test_only_rejects_unknown(self):
        with pytest.raises(ValueError):
            PrefetcherConfig.only("magic")


class TestDcu:
    def test_fires_on_ascending_pair(self):
        dcu = DcuPrefetcher(table_entries=4)
        assert dcu.observe(10, None) == []
        assert dcu.observe(11, None) == [12]

    def test_no_fire_on_random_jump(self):
        dcu = DcuPrefetcher(table_entries=4)
        dcu.observe(10, None)
        assert dcu.observe(50, None) == []

    def test_no_fire_on_descending(self):
        dcu = DcuPrefetcher(table_entries=4)
        dcu.observe(10, None)
        assert dcu.observe(9, None) == []

    def test_page_boundary_respected(self):
        dcu = DcuPrefetcher(table_entries=4)
        last = LINES_PER_PAGE - 1
        dcu.observe(last - 1, None)
        assert dcu.observe(last, None) == []  # line+1 is in the next page

    def test_per_page_tracking(self):
        dcu = DcuPrefetcher(table_entries=4)
        dcu.observe(10, None)
        dcu.observe(LINES_PER_PAGE + 20, None)  # other page
        assert dcu.observe(11, None) == [12]  # page-0 stream unbroken


class TestAdjacent:
    def test_fires_two_lines_on_miss(self):
        adj = AdjacentLinePrefetcher()
        assert adj.observe(10, None) == [11, 12]

    def test_invisible_to_l1_hits(self):
        adj = AdjacentLinePrefetcher()
        assert adj.observe(10, 1) == []

    def test_fires_on_l2_or_l3_hits(self):
        adj = AdjacentLinePrefetcher()
        assert adj.observe(10, 2) == [11, 12]

    def test_page_boundary_truncates(self):
        adj = AdjacentLinePrefetcher()
        last = LINES_PER_PAGE - 1
        assert adj.observe(last, None) == []
        assert adj.observe(last - 1, None) == [last]


class TestStreamer:
    def make(self, fire_probability=1.0, distance=4, degree=4, window=6):
        return StreamPrefetcher(
            rng=DeterministicRng(1),
            train_threshold=2,
            distance=distance,
            degree=degree,
            window=window,
            fire_probability=fire_probability,
            table_entries=4,
        )

    def test_untrained_stream_is_silent(self):
        streamer = self.make()
        assert streamer.observe(0, None) == []
        assert streamer.observe(1, None) == []  # confidence 1 < threshold

    def test_trained_stream_fires_ahead(self):
        streamer = self.make()
        streamer.observe(0, None)
        streamer.observe(1, None)
        fired = streamer.observe(2, None)
        assert fired  # trained now
        assert fired[0] == 3
        assert max(fired) <= 2 + 4

    def test_strided_stream_trains(self):
        streamer = self.make(window=6)
        streamer.observe(0, None)
        streamer.observe(4, None)
        fired = streamer.observe(8, None)
        assert fired  # stride-4 element walks must lock on

    def test_random_pattern_never_fires(self):
        streamer = self.make()
        rng = DeterministicRng(9)
        fired = []
        for _ in range(200):
            line = rng.choice_index(10_000) * 11
            fired += streamer.observe(line, None)
        assert fired == []

    def test_descending_resets(self):
        streamer = self.make()
        streamer.observe(10, None)
        streamer.observe(11, None)
        streamer.observe(12, None)
        assert streamer.observe(5, None) == []
        assert streamer.observe(6, None) == []  # retraining from scratch

    def test_frontier_advances_without_duplicates(self):
        streamer = self.make()
        issued = []
        for line in range(20):
            issued += streamer.observe(line, None)
        assert len(issued) == len(set(issued))

    def test_l1_hits_invisible(self):
        streamer = self.make()
        streamer.observe(0, None)
        streamer.observe(1, None)
        assert streamer.observe(2, 1) == []

    def test_fire_probability_gates_activation(self):
        streamer = self.make(fire_probability=0.0)
        streamer.observe(0, None)
        streamer.observe(1, None)
        assert streamer.observe(2, None) == []

    def test_page_bounded(self):
        streamer = self.make()
        base = LINES_PER_PAGE - 3
        streamer.observe(base, None)
        streamer.observe(base + 1, None)
        fired = streamer.observe(base + 2, None)
        assert all(candidate < LINES_PER_PAGE for candidate in fired)


class TestEngine:
    def test_disabled_engine(self):
        engine = PrefetchEngine(PrefetcherConfig.none(), DeterministicRng(1))
        assert not engine.enabled
        assert engine.observe(1, None) == []

    def test_deduplicates_across_units(self):
        engine = PrefetchEngine(
            PrefetcherConfig(dcu=True, adjacent=True, streamer=False), DeterministicRng(1)
        )
        engine.observe(10, None)
        candidates = engine.observe(11, None)
        assert len(candidates) == len(set(candidates))
        assert 11 not in candidates

    def test_issue_counter(self):
        engine = PrefetchEngine(PrefetcherConfig.only("adjacent"), DeterministicRng(1))
        engine.observe(10, None)
        assert engine.issued == 2

    def test_reset(self):
        engine = PrefetchEngine(PrefetcherConfig.only("dcu"), DeterministicRng(1))
        engine.observe(10, None)
        engine.reset()
        assert engine.issued == 0
        assert engine.observe(11, None) == []  # history forgotten
