"""Stateful model-based tests: data stores vs a dict/sorted-dict model.

Hypothesis drives random interleavings of insert/update/remove/lookup
(plus invariant checks) against CCEH and the B+-tree, comparing every
result with a plain dict — the strongest functional check in the
suite.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import KeyNotFoundError
from repro.datastores.btree import FastFairTree
from repro.datastores.cceh import CcehHashTable
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine

KEYS = st.integers(min_value=0, max_value=2**32)
VALUES = st.integers(min_value=0, max_value=2**32)


class CcehMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        self.table = CcehHashTable(PmHeap(machine).pm)
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        self.table.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def lookup(self, key):
        if key in self.model:
            assert self.table.get(key) == self.model[key]
        else:
            with pytest.raises(KeyNotFoundError):
                self.table.get(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        self.table.remove(key)
        del self.model[key]
        assert not self.table.contains(key)

    @rule(key=KEYS)
    def remove_missing(self, key):
        if key not in self.model:
            with pytest.raises(KeyNotFoundError):
                self.table.remove(key)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.table.check_invariants()


class BtreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        self.tree = FastFairTree(PmHeap(machine), mode="inplace")
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def lookup(self, key):
        if key in self.model:
            assert self.tree.get(key) == self.model[key]
        else:
            with pytest.raises(KeyNotFoundError):
                self.tree.get(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.remove(key)
        del self.model[key]

    @rule(start=KEYS, count=st.integers(1, 20))
    def scan(self, start, count):
        result = self.tree.range_scan(start, count)
        expected = sorted(k for k in self.model if k >= start)[:count]
        assert [k for k, _ in result] == expected
        for key, value in result:
            assert self.model[key] == value

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


TestCcehStateful = CcehMachine.TestCase
TestCcehStateful.settings = settings(max_examples=15, stateful_step_count=40, deadline=None)

TestBtreeStateful = BtreeMachine.TestCase
TestBtreeStateful.settings = settings(max_examples=15, stateful_step_count=40, deadline=None)
