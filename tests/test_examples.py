"""Smoke tests: the example scripts import and their fast paths run."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "cceh_helper_prefetch",
    "btree_redo_logging",
    "xpline_redirection",
    "rap_explorer",
    "ycsb_on_pm",
    "characterize_device",
    "analyze_workload",
    "parallel_sweep",
    "trace_rap",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = load_example(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "write amplification" in out
    assert "read amplification" in out


def test_analyze_workload_runs(capsys):
    load_example("analyze_workload").main()
    out = capsys.readouterr().out
    assert "PM" in out and "DRAM" in out
