"""Tests for the helper-thread framework and the instrumented core."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.core.analysis import InstrumentedCore, read_write_summary
from repro.core.helper import HelperConfig, HelperThread
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine


def setup():
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, PmHeap(machine)


class TestInstrumentedCore:
    def test_buckets_by_operation_kind(self):
        machine, heap = setup()
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(64)
        core.load(addr, 8)
        core.store(addr, 8)
        core.clwb(addr)
        core.sfence()
        core.tick(100)
        fractions = core.breakdown.fractions()
        assert set(fractions) >= {"load", "store", "flush", "fence", "compute"}

    def test_phase_overrides_bucket(self):
        machine, heap = setup()
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(64)
        with core.phase("indexing"):
            core.load(addr, 8)
        assert core.breakdown.cycles("indexing") > 0
        assert core.breakdown.cycles("load") == 0

    def test_nested_phases_restore(self):
        machine, heap = setup()
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(128)
        with core.phase("outer"):
            with core.phase("inner"):
                core.load(addr, 8)
            core.load(addr + 64, 8)
        assert core.breakdown.cycles("inner") > 0
        assert core.breakdown.cycles("outer") > 0

    def test_charges_match_core_time(self):
        machine, heap = setup()
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(256)
        core.load(addr, 8)
        core.store(addr, 8)
        core.persist(addr)
        core.nt_store(addr + 64, 64)
        core.mfence()
        assert core.breakdown.total == pytest.approx(core.now)

    def test_read_write_summary(self):
        machine, heap = setup()
        core = InstrumentedCore(machine.new_core())
        addr = heap.pm.alloc(64)
        core.load(addr, 8)
        core.store(addr, 8)
        core.clwb(addr)
        core.sfence()
        summary = read_write_summary(core.breakdown)
        assert summary["read"] > 0
        assert summary["order"] > 0
        assert sum(summary.values()) == pytest.approx(1.0)


class _Trace:
    """Load-only trace touching one address per item."""

    def __init__(self, addrs):
        self.addrs = addrs

    def __call__(self, core, item):
        core.load(self.addrs[item], 8)


class TestHelperThread:
    def test_runs_ahead_by_depth(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(20)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=4, smt_overhead=0))
        worker = machine.new_core("worker")
        helper.sync_before(worker, list(range(20)), 0)
        assert helper.items_prefetched == 4

    def test_prefetch_warms_cache(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(10)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=2, smt_overhead=0))
        worker = machine.new_core("worker")
        helper.sync_before(worker, list(range(10)), 0)
        cost = worker.load(addrs[0], 8)
        assert cost < 100  # served from cache, not media

    def test_smt_overhead_charged_to_worker(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(10)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=5, smt_overhead=100))
        worker = machine.new_core("worker")
        helper.sync_before(worker, list(range(10)), 0)
        assert worker.now == pytest.approx(500)

    def test_disabled_helper_is_noop(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(10)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(enabled=False))
        worker = machine.new_core("worker")
        helper.sync_before(worker, list(range(10)), 0)
        assert helper.items_prefetched == 0
        assert worker.now == 0

    def test_depth_bounded_no_overrun(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(6)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=3, smt_overhead=0))
        worker = machine.new_core("worker")
        items = list(range(6))
        helper.sync_before(worker, items, 0)
        assert helper.items_prefetched == 3
        helper.sync_before(worker, items, 5)
        assert helper.items_prefetched == 6  # capped at len(items)

    def test_helper_clock_tracks_worker(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(10)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=1, smt_overhead=0))
        worker = machine.new_core("worker")
        worker.tick(10_000)
        helper.sync_before(worker, list(range(10)), 0)
        assert helper.core.now >= 10_000

    def test_reset(self):
        machine, heap = setup()
        addrs = [heap.pm.alloc(256, align=256) for _ in range(4)]
        helper = HelperThread(machine, _Trace(addrs), HelperConfig(depth=4, smt_overhead=0))
        worker = machine.new_core("worker")
        helper.sync_before(worker, list(range(4)), 0)
        helper.reset()
        assert helper.items_prefetched == 0
