"""Tests for the 3D-XPoint and DRAM media models and the AIT cache."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import kib, mib
from repro.media.ait import AitCache, AitConfig
from repro.media.dram import DramConfig, DramMedia
from repro.media.xpoint import XPointConfig, XPointMedia
from repro.stats.counters import TelemetryCounters


class TestAitCache:
    def make(self, coverage=kib(16), granule=kib(4), penalty=200.0):
        counters = TelemetryCounters()
        return AitCache(AitConfig(coverage, granule, penalty), counters), counters

    def test_first_access_misses(self):
        ait, counters = self.make()
        assert ait.lookup_penalty(0) == 200.0
        assert counters.ait_misses == 1

    def test_second_access_hits(self):
        ait, counters = self.make()
        ait.lookup_penalty(0)
        assert ait.lookup_penalty(100) == 0.0  # same 4 KB granule
        assert counters.ait_hits == 1

    def test_lru_eviction_at_coverage(self):
        ait, _ = self.make(coverage=kib(8), granule=kib(4))  # 2 entries
        ait.lookup_penalty(0 * kib(4))
        ait.lookup_penalty(1 * kib(4))
        ait.lookup_penalty(2 * kib(4))  # evicts granule 0
        assert ait.lookup_penalty(0 * kib(4)) > 0

    def test_lru_refresh_on_hit(self):
        ait, _ = self.make(coverage=kib(8), granule=kib(4))
        ait.lookup_penalty(0)
        ait.lookup_penalty(kib(4))
        ait.lookup_penalty(0)  # refresh granule 0
        ait.lookup_penalty(kib(8))  # evicts granule 1, not 0
        assert ait.lookup_penalty(0) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            AitConfig(coverage_bytes=0).validate()
        with pytest.raises(ConfigError):
            AitConfig(coverage_bytes=kib(6), granule_bytes=kib(4)).validate()
        with pytest.raises(ConfigError):
            AitConfig(miss_penalty=-1).validate()

    def test_default_coverage_is_16mb(self):
        assert AitConfig().coverage_bytes == mib(16)

    def test_reset(self):
        ait, _ = self.make()
        ait.lookup_penalty(0)
        ait.reset()
        assert ait.resident_granules == 0


class TestXPointMedia:
    def make(self, **overrides):
        counters = TelemetryCounters()
        config = XPointConfig(**overrides) if overrides else XPointConfig()
        return XPointMedia(config, counters), counters

    def test_read_counts_full_xpline(self):
        media, counters = self.make()
        media.read_xpline(0.0, 100)
        assert counters.media_read_bytes == 256

    def test_write_counts_full_xpline(self):
        media, counters = self.make()
        media.write_xpline(0.0, 100)
        assert counters.media_write_bytes == 256

    def test_rmw_write_longer_and_counts_read(self):
        media, counters = self.make(ait=AitConfig(miss_penalty=0.0))
        plain = media.write_xpline(0.0, 0)
        rmw = media.write_xpline(10_000.0, 4096)
        media2, counters2 = self.make(ait=AitConfig(miss_penalty=0.0))
        rmw = media2.write_xpline(0.0, 0, rmw=True)
        assert rmw.finish - rmw.start > plain.finish - plain.start
        assert counters2.media_read_bytes == 256

    def test_limited_write_concurrency(self):
        media, _ = self.make(write_ports=1, write_latency=100.0, ait=AitConfig(miss_penalty=0.0))
        first = media.write_xpline(0.0, 0)
        second = media.write_xpline(0.0, 4096)
        assert second.start >= first.finish

    def test_read_parallelism(self):
        media, _ = self.make(read_ports=4, read_latency=100.0, ait=AitConfig(miss_penalty=0.0))
        grants = [media.read_xpline(0.0, i * 4096) for i in range(4)]
        assert all(g.start == 0.0 for g in grants)

    def test_ait_miss_inflates_read(self):
        media, _ = self.make(ait=AitConfig(miss_penalty=500.0))
        cold = media.read_xpline(0.0, 0)
        warm = media.read_xpline(cold.finish, 64)
        assert (cold.finish - cold.start) - (warm.finish - warm.start) == 500.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            XPointConfig(read_latency=0).validate()
        with pytest.raises(ConfigError):
            XPointConfig(write_ports=0).validate()


class TestDramMedia:
    def make(self, **overrides):
        counters = TelemetryCounters()
        config = DramConfig(**overrides) if overrides else DramConfig()
        return DramMedia(config, counters), counters

    def test_read_counts_cacheline(self):
        media, counters = self.make()
        media.read_line(0.0, 0)
        assert counters.media_read_bytes == 64

    def test_write_counts_cacheline(self):
        media, counters = self.make()
        media.write_line(0.0, 0)
        assert counters.media_write_bytes == 64

    def test_symmetric_latency_by_default(self):
        config = DramConfig()
        assert config.read_latency == config.write_latency

    def test_faster_than_xpoint(self):
        assert DramConfig().read_latency < XPointConfig().read_latency

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            DramConfig(read_latency=-1).validate()
