"""Property-based tests: on-DIMM buffer invariants under random streams.

Hypothesis drives the buffers (and the full DIMM front-end) with
arbitrary access streams and checks the invariants the paper's
figures rest on:

* Read buffer — FIFO eviction order (hits never refresh position),
  occupancy bounded by capacity, and RA >= 1 on the DIMM (CPU-cache
  exclusivity means every delivered byte was fetched from the media
  as part of a 256 B XPLine read, so media bytes >= iMC bytes).
* Write buffer — occupancy never exceeds capacity, and the amount of
  media work is independent of the order XPLines are visited in
  (generalizing ``test_wa_independent_of_access_order`` from the
  kernel level down to the buffer contract).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.read_buffer import ReadBuffer
from repro.buffers.write_buffer import WriteBuffer
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.dimm.config import OptaneDimmConfig
from repro.dimm.optane import OptaneDimm
from repro.stats.counters import TelemetryCounters

#: A read-buffer access: install or deliver one (xpline, slot) pair
#: drawn from a small id space so streams collide with the capacity.
_RBUF_OPS = st.lists(
    st.tuples(
        st.sampled_from(["install", "deliver"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=120,
)


class TestReadBufferProperties:
    @settings(max_examples=60, deadline=None)
    @given(_RBUF_OPS, st.integers(min_value=1, max_value=6))
    def test_fifo_eviction_order_and_capacity(self, ops, capacity_lines):
        """Evictions always pick the oldest-installed resident line.

        A shadow FIFO model tracks install order; hits must never
        refresh a line's position (that would be LRU, and would erase
        the sharp capacity step of Figure 2).
        """
        buffer = ReadBuffer(capacity_lines * XPLINE_SIZE)
        model: list[int] = []  # resident xplines, oldest first
        for kind, xpline, slot in ops:
            if kind == "install":
                evicted = buffer.install(xpline, consumed_slots=(slot,))
                if xpline not in model:
                    model.append(xpline)
                if evicted is not None:
                    assert evicted == model.pop(0)
            else:
                buffer.deliver(xpline, slot)
                # A fully consumed entry is dropped, not evicted.
                if not buffer.contains(xpline) and xpline in model:
                    model.remove(xpline)
            assert len(buffer) <= capacity_lines
            assert buffer.resident_xplines() == model

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=150))
    def test_read_amplification_at_least_one(self, line_offsets):
        """RA >= 1 on the DIMM for *any* read stream (exclusivity).

        Every iMC read is served either by a fresh 256 B media fetch or
        by a buffered slot that a previous fetch paid for and that is
        consumed on delivery — so media read bytes can never fall below
        iMC read bytes, whatever the access pattern.
        """
        counters = TelemetryCounters()
        dimm = OptaneDimm(OptaneDimmConfig.g1(), counters, DeterministicRng(7))
        now = 0.0
        for offset in line_offsets:
            response = dimm.read_line(now, offset * CACHELINE_SIZE)
            now = response.finish
        assert counters.imc_read_bytes == len(line_offsets) * CACHELINE_SIZE
        assert counters.media_read_bytes >= counters.imc_read_bytes


class TestWriteBufferProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=120,
        ),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_occupancy_never_exceeds_capacity(self, writes, capacity_lines, seed):
        buffer = WriteBuffer(
            capacity_lines * XPLINE_SIZE, rng=DeterministicRng(seed)
        )
        now = 0.0
        for xpline, slot in writes:
            buffer.write(now, xpline, slot)
            now += 1.0
            assert len(buffer) <= capacity_lines
            assert len(buffer.resident_xplines()) == len(buffer)

    @settings(max_examples=40, deadline=None)
    @given(
        st.permutations(list(range(12))),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_media_work_independent_of_visit_order(self, order, capacity_lines, seed):
        """Total write-backs depend only on the footprint, not the order.

        Writing one slot in each of N distinct XPLines overflows the
        buffer max(0, N - capacity) times during the run, and draining
        flushes the rest — N write-backs in total, every one a partial
        line needing an underfill read, for *every* visit order and
        eviction seed.  This is the buffer-level contract behind
        Figure 3's order-insensitive write amplification.
        """
        buffer = WriteBuffer(
            capacity_lines * XPLINE_SIZE,
            rng=DeterministicRng(seed),
            periodic_writeback=False,
        )
        evictions = []
        for position, xpline in enumerate(order):
            outcome = buffer.write(float(position), xpline, slot=0)
            assert not outcome.hit  # each XPLine visited exactly once
            evictions.extend(outcome.writebacks)
        drained = buffer.drain_all()
        assert len(evictions) == max(0, len(order) - capacity_lines)
        assert len(evictions) + len(drained) == len(order)
        assert all(wb.needs_underfill_read for wb in list(evictions) + list(drained))

    @settings(max_examples=30, deadline=None)
    @given(
        st.permutations(list(range(10))),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_full_line_writes_never_need_underfill(self, order, seed):
        """Fully written XPLines evict as pure 256 B media writes."""
        buffer = WriteBuffer(
            4 * XPLINE_SIZE, rng=DeterministicRng(seed), periodic_writeback=False
        )
        writebacks = []
        now = 0.0
        for xpline in order:
            for slot in range(4):
                writebacks.extend(buffer.write(now, xpline, slot).writebacks)
                now += 1.0
        writebacks.extend(buffer.drain_all())
        assert len(writebacks) == len(order)
        assert not any(wb.needs_underfill_read for wb in writebacks)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=100,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_same_seed_same_stream_is_deterministic(self, writes, seed):
        """Random eviction is reproducible: the seed fixes the victims."""
        def run():
            buffer = WriteBuffer(3 * XPLINE_SIZE, rng=DeterministicRng(seed))
            out = []
            for position, (xpline, slot) in enumerate(writes):
                out.extend(buffer.write(float(position), xpline, slot).writebacks)
            out.extend(buffer.drain_all())
            return out

        assert run() == run()
