"""Tests for the Machine/Core execution model — the DDR-T semantics.

These tests pin the paper-critical behaviours: asynchronous stores,
fence-waits-for-acceptance, read-after-persist stalls, the sfence
reorder window, clwb generation semantics, NUMA adders and routing.
"""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, cacheline_index
from repro.common.errors import AddressError, ConfigError
from repro.common.units import kib
from repro.system.machine import MachineConfig, RegionSpec
from repro.system.presets import g1_machine, g2_machine, machine_for


def quiet_machine(generation=1, **kwargs):
    kwargs.setdefault("prefetchers", PrefetcherConfig.none())
    return machine_for(generation, **kwargs)


def pm_addr(machine, offset=0):
    return machine.region_spec("pm").base + offset


def dram_addr(machine, offset=0):
    return machine.region_spec("dram").base + offset


class TestRouting:
    def test_pm_and_dram_regions_exist(self):
        machine = quiet_machine()
        assert machine.region_spec("pm").kind == "pm"
        assert machine.region_spec("dram").kind == "dram"

    def test_unmapped_address_raises(self):
        machine = quiet_machine()
        with pytest.raises(AddressError):
            machine.region_of(12345)

    def test_unknown_region_name_raises(self):
        with pytest.raises(AddressError):
            quiet_machine().region_spec("nope")

    def test_remote_regions_optional(self):
        machine = quiet_machine()
        with pytest.raises(AddressError):
            machine.region_spec("pm_remote")
        machine = quiet_machine(remote_pm=True)
        assert machine.region_spec("pm_remote").remote

    def test_interleaving_spreads_across_dimms(self):
        machine = quiet_machine(pm_dimms=6)
        core = machine.new_core()
        base = pm_addr(machine)
        for page in range(6):
            core.load(base + page * 4096, 8)
        names = [name for name in machine.registry.names() if name.startswith("pm")]
        touched = [name for name in names if machine.registry.get(name).imc_read_bytes > 0]
        assert len(touched) == 6

    def test_overlapping_regions_rejected(self):
        config = MachineConfig(
            regions=(
                RegionSpec("a", "pm", 0, kib(64)),
                RegionSpec("b", "dram", kib(32), kib(64)),
            )
        )
        with pytest.raises(ConfigError):
            config.validate()


class TestLoadStore:
    def test_load_miss_slower_than_hit(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        miss = core.load(addr, 8)
        hit = core.load(addr, 8)
        assert miss > hit

    def test_pm_load_slower_than_dram_load(self):
        machine = quiet_machine()
        core = machine.new_core()
        pm = core.load(pm_addr(machine), 8)
        dram = core.load(dram_addr(machine), 8)
        assert pm > dram

    def test_store_miss_does_not_stall(self):
        # Stores retire from the store buffer: a PM store miss must not
        # cost media latency (Figure 8's flat write latency).
        machine = quiet_machine()
        core = machine.new_core()
        cost = core.store(pm_addr(machine), 8)
        assert cost < 100

    def test_store_miss_issues_rfo_traffic(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.store(pm_addr(machine), 8)
        assert machine.pm_counters().imc_read_bytes == 64

    def test_multi_line_load(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.load(pm_addr(machine), 256)
        assert core.loads == 4

    def test_load_returns_elapsed_cycles(self):
        machine = quiet_machine()
        core = machine.new_core()
        before = core.now
        cost = core.load(pm_addr(machine), 8)
        assert core.now - before == cost


class TestFlushFence:
    def test_clwb_of_clean_line_is_cheap(self):
        machine = quiet_machine()
        core = machine.new_core()
        cost = core.clwb(pm_addr(machine))
        assert cost < 50
        assert machine.pm_counters().imc_write_bytes == 0

    def test_clwb_of_dirty_line_reaches_wpq(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        assert machine.pm_counters().imc_write_bytes == 64

    def test_g1_clwb_invalidates(self):
        machine = quiet_machine(1)
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_g2_clwb_retains(self):
        machine = quiet_machine(2)
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        line = cacheline_index(addr)
        assert machine.caches.contains(line)
        assert not machine.caches.is_dirty(line)

    def test_g2_clwb_costs_coherence(self):
        g1 = quiet_machine(1)
        g2 = quiet_machine(2)
        core1, core2 = g1.new_core(), g2.new_core()
        addr1, addr2 = pm_addr(g1), pm_addr(g2)
        core1.store(addr1, 8)
        core2.store(addr2, 8)
        assert core2.clwb(addr2) > core1.clwb(addr1)

    def test_fence_waits_for_acceptance(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        fence_cost = core.sfence()
        assert fence_cost >= machine.config.wpq_accept_latency * 0.5

    def test_fence_without_pending_flushes_is_cheap(self):
        machine = quiet_machine()
        core = machine.new_core()
        assert core.sfence() <= machine.config.timing.sfence_cost

    def test_fence_does_not_wait_for_persist_completion(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        core.sfence()
        drain = machine.config.optane.persist_drain_latency
        assert core.now < drain  # returned long before the flush completed

    def test_persist_helper(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.persist(addr)
        assert machine.pm_counters().imc_write_bytes == 64


class TestNtStore:
    def test_nt_store_bypasses_cache(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.nt_store(addr, 64)
        assert not machine.caches.contains(cacheline_index(addr))
        assert machine.pm_counters().imc_write_bytes == 64

    def test_nt_store_invalidates_stale_copy(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.load(addr, 8)
        core.nt_store(addr, 64)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_nt_store_no_rfo(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.nt_store(pm_addr(machine), 64)
        assert machine.pm_counters().imc_read_bytes == 0


class TestRap:
    """Read-after-persist stalls (Section 3.5)."""

    def _persist_then_read(self, machine, fence):
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        core.fence(fence)
        # Push the line out of the reorder window with unrelated flushes.
        for offset in (4096, 8192, 12288):
            other = pm_addr(machine, offset)
            core.store(other, 8)
            core.clwb(other)
            core.fence(fence)
        return core.load(addr, 8)

    def test_g1_read_after_persist_stalls(self):
        machine = quiet_machine(1)
        latency = self._persist_then_read(machine, "mfence")
        assert latency > 800  # must wait for the in-flight persist

    def test_g2_clwb_read_hits_cache(self):
        machine = quiet_machine(2)
        latency = self._persist_then_read(machine, "mfence")
        assert latency < 100  # line retained in cache

    def test_sfence_window_allows_immediate_readback(self):
        machine = quiet_machine(1)
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        core.sfence()
        assert core.load(addr, 8) < 100  # distance 0: load overtakes flush

    def test_mfence_closes_the_window(self):
        machine = quiet_machine(1)
        core = machine.new_core()
        addr = pm_addr(machine)
        core.store(addr, 8)
        core.clwb(addr)
        core.mfence()
        assert core.load(addr, 8) > 800

    def test_reflush_of_inflight_line_closes_window(self):
        # The B+-tree shifting pattern: flush, read, flush again — the
        # second flush must not leave the line readable via reordering.
        machine = quiet_machine(1)
        core = machine.new_core()
        addr = pm_addr(machine)
        for _ in range(2):
            core.store(addr, 8)
            core.clwb(addr)
            core.sfence()
        assert core.load(addr, 8) > 500

    def test_nt_store_rap_on_both_generations(self):
        for generation in (1, 2):
            machine = quiet_machine(generation)
            core = machine.new_core()
            addr = pm_addr(machine)
            core.nt_store(addr, 64)
            core.mfence()
            assert core.load(addr, 8) > 500, f"G{generation}"


class TestNuma:
    def test_remote_pm_read_slower(self):
        machine = quiet_machine(remote_pm=True)
        core = machine.new_core()
        local = core.load(pm_addr(machine), 8)
        remote = core.load(machine.region_spec("pm_remote").base, 8)
        assert remote > local

    def test_remote_persist_completion_later(self):
        machine = quiet_machine(remote_pm=True)
        core = machine.new_core()
        local, remote = pm_addr(machine), machine.region_spec("pm_remote").base
        core.store(local, 8)
        core.clwb(local)
        core.mfence()
        local_rap = core.load(local, 8)
        core2 = machine.new_core()
        core2.store(remote, 8)
        core2.clwb(remote)
        core2.mfence()
        remote_rap = core2.load(remote, 8)
        assert remote_rap > local_rap


class TestStreamLoad:
    def test_stream_load_does_not_fill_cache(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.stream_load(addr, 64)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_stream_load_counts_demand(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.stream_load(pm_addr(machine), 64)
        assert machine.pm_counters().demand_read_bytes == 64

    def test_stream_load_invisible_to_prefetchers(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        core = machine.new_core()
        base = pm_addr(machine)
        for line in range(8):  # perfectly sequential
            core.stream_load(base + line * CACHELINE_SIZE, CACHELINE_SIZE)
        assert machine.prefetch_issued == 0


class TestPrefetchIntegration:
    def test_sequential_loads_trigger_prefetch(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        core = machine.new_core()
        base = pm_addr(machine)
        for line in range(8):
            core.load(base + line * CACHELINE_SIZE, 8)
        assert machine.prefetch_issued > 0

    def test_prefetched_line_is_cached(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        core = machine.new_core()
        base = pm_addr(machine)
        core.load(base, 8)
        core.load(base + CACHELINE_SIZE, 8)  # fires prefetch of line 2
        assert machine.caches.contains(cacheline_index(base) + 2)

    def test_prefetch_counts_imc_but_not_demand(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        core = machine.new_core()
        base = pm_addr(machine)
        core.load(base, 8)
        core.load(base + CACHELINE_SIZE, 8)
        counters = machine.pm_counters()
        assert counters.imc_read_bytes > counters.demand_read_bytes


class TestFences:
    def test_fence_dispatch(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.fence("sfence")
        core.fence("mfence")
        with pytest.raises(ValueError):
            core.fence("lfence")

    def test_tick_advances_clock(self):
        machine = quiet_machine()
        core = machine.new_core()
        core.tick(123)
        assert core.now == 123

    def test_reset_memory_system(self):
        machine = quiet_machine()
        core = machine.new_core()
        addr = pm_addr(machine)
        core.load(addr, 8)
        machine.reset_memory_system()
        assert not machine.caches.contains(cacheline_index(addr))
