"""Tests for the FAST & FAIR-style B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import DataStoreError, KeyNotFoundError
from repro.datastores.btree import NODE_CAPACITY, FastFairTree
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine, g2_machine


def make_tree(mode="inplace", generation=1):
    maker = g1_machine if generation == 1 else g2_machine
    machine = maker(prefetchers=PrefetcherConfig.none())
    return machine, FastFairTree(PmHeap(machine), mode=mode)


class TestBasics:
    def test_insert_get(self):
        _, tree = make_tree()
        tree.insert(5, 50)
        assert tree.get(5) == 50

    def test_missing_key_raises(self):
        _, tree = make_tree()
        tree.insert(5, 50)
        with pytest.raises(KeyNotFoundError):
            tree.get(6)

    def test_overwrite(self):
        _, tree = make_tree()
        tree.insert(5, 50)
        tree.insert(5, 51)
        assert tree.get(5) == 51
        assert len(tree) == 1

    def test_unknown_mode_rejected(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        with pytest.raises(DataStoreError):
            FastFairTree(PmHeap(machine), mode="undo")

    def test_sorted_bulk_insert(self):
        _, tree = make_tree()
        for key in range(500):
            tree.insert(key, key)
        for key in range(0, 500, 13):
            assert tree.get(key) == key
        tree.check_invariants()

    def test_reverse_bulk_insert(self):
        _, tree = make_tree()
        for key in reversed(range(500)):
            tree.insert(key, key)
        tree.check_invariants()
        assert tree.get(0) == 0
        assert tree.get(499) == 499


class TestSplits:
    def test_leaf_split_occurs(self):
        _, tree = make_tree()
        for key in range(NODE_CAPACITY + 1):
            tree.insert(key, key)
        assert tree.stats.leaf_splits >= 1

    def test_height_grows(self):
        _, tree = make_tree()
        for key in range(5000):
            tree.insert(key, key)
        assert tree.height >= 3
        assert tree.stats.internal_splits > 0

    def test_all_keys_survive_splits(self):
        _, tree = make_tree()
        keys = list(range(0, 6000, 3))
        for key in keys:
            tree.insert(key, key + 1)
        for key in keys[:: 29]:
            assert tree.get(key) == key + 1
        tree.check_invariants()


class TestRangeScan:
    def test_scan_in_order(self):
        _, tree = make_tree()
        for key in (5, 1, 9, 3, 7):
            tree.insert(key, key * 10)
        result = tree.range_scan(2, 3)
        assert result == [(3, 30), (5, 50), (7, 70)]

    def test_scan_crosses_leaves(self):
        _, tree = make_tree()
        for key in range(200):
            tree.insert(key, key)
        result = tree.range_scan(50, 100)
        assert [k for k, _ in result] == list(range(50, 150))

    def test_scan_past_end(self):
        _, tree = make_tree()
        tree.insert(1, 1)
        assert tree.range_scan(5, 10) == []


class TestModes:
    def test_redo_mode_functionally_identical(self):
        _, inplace = make_tree("inplace")
        _, redo = make_tree("redo")
        keys = [((key * 2654435761) % 100_000) for key in range(3000)]
        for key in keys:
            inplace.insert(key, key)
            redo.insert(key, key)
        for key in keys[::37]:
            assert inplace.get(key) == redo.get(key) == key
        inplace.check_invariants()
        redo.check_invariants()

    def test_redo_doubles_pm_writes(self):
        machine_a, inplace = make_tree("inplace")
        machine_b, redo = make_tree("redo")
        core_a, core_b = machine_a.new_core(), machine_b.new_core()
        # Pre-fill one leaf so inserts shift entries.
        for key in range(0, 20, 2):
            inplace.insert(key, key)
            redo.insert(key, key)
        snap_a = machine_a.pm_counters().snapshot()
        snap_b = machine_b.pm_counters().snapshot()
        for key in range(1, 19, 2):
            inplace.insert(key, key, core_a)
            redo.insert(key, key, core_b)
        writes_inplace = machine_a.pm_counters().delta(snap_a).imc_write_bytes
        writes_redo = machine_b.pm_counters().delta(snap_b).imc_write_bytes
        # The log duplicates every shifted update on PM (plus commit
        # flags); the home-location copies are persisted lazily, so the
        # immediately visible overhead is the log traffic itself.
        assert writes_redo > writes_inplace * 1.1

    def test_redo_faster_on_g1(self):
        machine_a, inplace = make_tree("inplace", 1)
        machine_b, redo = make_tree("redo", 1)
        for key in range(0, 2000, 2):
            inplace.insert(key, key)
            redo.insert(key, key)
        core_a, core_b = machine_a.new_core(), machine_b.new_core()
        keys = [k * 7919 % 2000 | 1 for k in range(300)]
        start = core_a.now
        for key in keys:
            inplace.insert(key, key, core_a)
        inplace_cost = core_a.now - start
        start = core_b.now
        for key in keys:
            redo.insert(key, key, core_b)
        redo_cost = core_b.now - start
        assert redo_cost < inplace_cost

    def test_modes_comparable_on_g2(self):
        machine_a, inplace = make_tree("inplace", 2)
        machine_b, redo = make_tree("redo", 2)
        for key in range(0, 2000, 2):
            inplace.insert(key, key)
            redo.insert(key, key)
        core_a, core_b = machine_a.new_core(), machine_b.new_core()
        keys = [k * 7919 % 2000 | 1 for k in range(300)]
        start = core_a.now
        for key in keys:
            inplace.insert(key, key, core_a)
        inplace_cost = core_a.now - start
        start = core_b.now
        for key in keys:
            redo.insert(key, key, core_b)
        redo_cost = core_b.now - start
        # On G2 in-place does not RAP-stall; redo must not win big.
        assert redo_cost > inplace_cost * 0.8


class TestMemoryTraffic:
    def test_insert_persists(self):
        machine, tree = make_tree()
        core = machine.new_core()
        tree.insert(1, 1, core)
        assert machine.pm_counters().imc_write_bytes >= 64

    def test_lookup_is_read_only(self):
        machine, tree = make_tree()
        tree.insert(1, 1)
        core = machine.new_core()
        tree.get(1, core)
        assert core.stores == 0

    def test_shift_count_matches_position(self):
        _, tree = make_tree()
        for key in range(0, 20, 2):  # 10 keys in one leaf
            tree.insert(key, key)
        before = tree.stats.shifts
        tree.insert(1, 1)  # must shift 9 larger keys
        assert tree.stats.shifts - before == 9


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300, unique=True),
    st.sampled_from(["inplace", "redo"]),
)
def test_model_equivalence(keys, mode):
    """The tree behaves like a sorted dict."""
    _, tree = make_tree(mode)
    reference = {}
    for key in keys:
        tree.insert(key, key % 997)
        reference[key] = key % 997
    for key, value in reference.items():
        assert tree.get(key) == value
    tree.check_invariants()
    scan = tree.range_scan(min(keys), len(keys))
    assert [k for k, _ in scan] == sorted(reference)
