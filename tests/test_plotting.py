"""Tests for the ASCII chart renderer."""

from repro.experiments.common import ExperimentReport
from repro.experiments.plotting import chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8.0])
        assert line == "".join(sorted(line))
        assert line[0] == " " and line[-1] == "█"

    def test_explicit_bounds(self):
        # With a wide external scale, a small series sits low.
        line = sparkline([1.0, 2.0], lo=0.0, hi=100.0)
        assert line[0] in " ▁" and line[1] in " ▁"


class TestChart:
    def make_report(self):
        report = ExperimentReport("t", "demo", "WSS", [1024, 2048, 4096])
        report.add_series("up", [1.0, 2.0, 4.0])
        report.add_series("down", [4.0, 2.0, 1.0])
        return report

    def test_contains_all_series(self):
        text = chart(self.make_report())
        assert "up" in text and "down" in text
        assert "demo" in text

    def test_contains_ranges(self):
        text = chart(self.make_report())
        assert "[1.00 .. 4.00]" in text

    def test_empty_report(self):
        report = ExperimentReport("t", "demo", "x", [1])
        assert "(no series)" in chart(report)

    def test_x_axis_note(self):
        text = chart(self.make_report())
        assert "3 points" in text
