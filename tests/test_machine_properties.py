"""Property-based tests: system-level invariants under random op streams.

A randomized program of loads, stores, nt-stores, flushes and fences
is executed against a small machine; afterwards the telemetry, timing
and cache-state invariants that every correct configuration must
satisfy are checked.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.units import kib
from repro.system.presets import g1_machine, g2_machine

#: Ops the generator can emit: (kind, line_offset).
_OPS = st.tuples(
    st.sampled_from(["load", "store", "nt_store", "clwb", "clflushopt", "sfence", "mfence"]),
    st.integers(min_value=0, max_value=255),
)


def _run_program(machine, program):
    core = machine.new_core()
    base = machine.region_spec("pm").base
    timestamps = []
    for kind, line in program:
        addr = base + line * CACHELINE_SIZE
        if kind == "load":
            core.load(addr, 8)
        elif kind == "store":
            core.store(addr, 8)
        elif kind == "nt_store":
            core.nt_store(addr, CACHELINE_SIZE)
        elif kind == "clwb":
            core.clwb(addr)
        elif kind == "clflushopt":
            core.clflushopt(addr)
        elif kind == "sfence":
            core.sfence()
        else:
            core.mfence()
        timestamps.append(core.now)
    return core, timestamps


@settings(max_examples=30, deadline=None)
@given(st.lists(_OPS, max_size=200), st.sampled_from([1, 2]))
def test_time_is_monotone(program, generation):
    maker = g1_machine if generation == 1 else g2_machine
    machine = maker(prefetchers=PrefetcherConfig.none())
    _, timestamps = _run_program(machine, program)
    assert timestamps == sorted(timestamps)


@settings(max_examples=30, deadline=None)
@given(st.lists(_OPS, max_size=200))
def test_telemetry_invariants(program):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    _run_program(machine, program)
    counters = machine.pm_counters()
    # Media moves whole XPLines; the iMC moves whole cachelines.
    assert counters.media_read_bytes % XPLINE_SIZE == 0
    assert counters.media_write_bytes % XPLINE_SIZE == 0
    assert counters.imc_read_bytes % CACHELINE_SIZE == 0
    assert counters.imc_write_bytes % CACHELINE_SIZE == 0
    # Demand reads are a subset of iMC reads.
    assert counters.demand_read_bytes <= counters.imc_read_bytes
    # Write amplification is bounded by the granularity ratio: every
    # media write-back carries at least one iMC write since the last
    # write-back of that XPLine.
    if counters.imc_write_bytes:
        assert counters.media_write_bytes / counters.imc_write_bytes <= 4.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(_OPS, max_size=150))
def test_with_prefetchers_demand_still_bounded(program):
    machine = g1_machine()  # default prefetchers on
    _run_program(machine, program)
    counters = machine.pm_counters()
    assert counters.demand_read_bytes <= counters.imc_read_bytes


@settings(max_examples=20, deadline=None)
@given(st.lists(_OPS, max_size=150))
def test_buffer_capacities_respected(program):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    _run_program(machine, program)
    for region in machine._regions:
        if region.spec.kind != "pm":
            continue
        for channel in region.channels:
            device = channel.device
            assert len(device.read_buffer) <= device.read_buffer.capacity_lines
            assert len(device.write_buffer) <= device.write_buffer.capacity_lines


@settings(max_examples=20, deadline=None)
@given(st.lists(_OPS, max_size=100), st.lists(_OPS, max_size=100))
def test_two_cores_share_state_consistently(program_a, program_b):
    """Interleaving two cores never violates the single-core invariants."""
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    base = machine.region_spec("pm").base
    cores = [machine.new_core("a"), machine.new_core("b")]
    programs = [list(program_a), list(program_b)]
    while any(programs):
        index = 0 if (programs[0] and (not programs[1] or cores[0].now <= cores[1].now)) else 1
        kind, line = programs[index].pop(0)
        core = cores[index]
        addr = base + line * CACHELINE_SIZE
        if kind == "load":
            core.load(addr, 8)
        elif kind == "store":
            core.store(addr, 8)
        elif kind == "nt_store":
            core.nt_store(addr, CACHELINE_SIZE)
        elif kind == "clwb":
            core.clwb(addr)
        elif kind == "clflushopt":
            core.clflushopt(addr)
        elif kind == "sfence":
            core.sfence()
        else:
            core.mfence()
    counters = machine.pm_counters()
    assert counters.demand_read_bytes <= counters.imc_read_bytes
    assert counters.media_read_bytes % XPLINE_SIZE == 0


@settings(max_examples=15, deadline=None)
@given(st.lists(_OPS, min_size=1, max_size=120), st.sampled_from([1, 2]))
def test_determinism(program, generation):
    """The same program on the same seed yields identical timing."""
    maker = g1_machine if generation == 1 else g2_machine
    machine_a = maker(prefetchers=PrefetcherConfig.none(), seed=11)
    machine_b = maker(prefetchers=PrefetcherConfig.none(), seed=11)
    _, times_a = _run_program(machine_a, program)
    _, times_b = _run_program(machine_b, program)
    assert times_a == times_b
