"""Tests for the ablation configuration knobs."""

import pytest

from repro.buffers.read_buffer import ReadBuffer
from repro.buffers.write_buffer import WriteBuffer
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.dimm.config import OptaneDimmConfig


class TestReadBufferPolicy:
    def test_lru_hit_refreshes_position(self):
        buffer = ReadBuffer(2 * 256, policy="lru")
        buffer.install(1)
        buffer.install(2)
        buffer.deliver(1, 0)  # refresh under LRU
        evicted = buffer.install(3)
        assert evicted == 2  # 1 survived because the hit refreshed it

    def test_fifo_default(self):
        assert ReadBuffer(1024).policy == "fifo"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ReadBuffer(1024, policy="clock")


class TestWriteBufferEviction:
    def test_fifo_evicts_oldest(self):
        buffer = WriteBuffer(
            2 * 256, rng=DeterministicRng(1), periodic_writeback=False, eviction="fifo"
        )
        buffer.write(0.0, 10, 0)
        buffer.write(0.0, 11, 0)
        outcome = buffer.write(0.0, 12, 0)
        assert outcome.writebacks[0].xpline == 10

    def test_unknown_eviction_rejected(self):
        with pytest.raises(ConfigError):
            WriteBuffer(1024, rng=DeterministicRng(1), eviction="lifo")


class TestDimmConfigKnobs:
    def test_defaults_match_hardware(self):
        config = OptaneDimmConfig.g1()
        assert config.read_buffer_policy == "fifo"
        assert config.write_buffer_eviction == "random"
        assert config.enable_transition

    def test_validation_rejects_bad_policies(self):
        with pytest.raises(ConfigError):
            OptaneDimmConfig.g1(read_buffer_policy="mru").validate()
        with pytest.raises(ConfigError):
            OptaneDimmConfig.g1(write_buffer_eviction="lru").validate()
