"""Crash-recovery integration: redo log + crash simulator end-to-end."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import cacheline_index
from repro.persist import CrashSimulator, DurabilityChecker, PmHeap, RedoLog
from repro.system.presets import g1_machine


def setup():
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, machine.new_core(), PmHeap(machine)


class TestRedoRecoveryFlow:
    def test_committed_log_survives_crash(self):
        """Log entries are persisted per append + commit flag: after a
        crash, none of the log's cachelines may be lost."""
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        checker = DurabilityChecker()
        targets = [heap.pm.alloc(64) for _ in range(4)]
        for target in targets:
            log.append(target)
        log.commit()
        # Every log entry cacheline and the flag are claimed durable.
        for index in range(4):
            checker.commit(log._entries_base + index * 64, 64)
        checker.commit(log._flag_addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        checker.verify_against(report)  # must not raise

    def test_recover_after_crash_replays_targets(self):
        """Crash between commit and apply: recovery replays the batch
        into the home locations and persists them."""
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        targets = [heap.pm.alloc(64) for _ in range(3)]
        for target in targets:
            log.append(target)
        log.commit()
        CrashSimulator(machine).power_failure(core.now)

        # Post-crash: a fresh core replays the committed batch.
        recovery_core = machine.new_core("recovery")
        replayed = log.recover()
        assert [record.target_addr for record in replayed] == targets
        # The replay itself is crash-consistent: targets persisted.
        report = CrashSimulator(machine).power_failure(recovery_core.now)
        for target in targets:
            assert cacheline_index(target) not in report.lost_pm_lines

    def test_uncommitted_batch_home_locations_untouched(self):
        """Before the commit flag, the home locations were never
        written — a crash loses only volatile state, and the in-place
        data remains the old (consistent) version."""
        machine, core, heap = setup()
        log = RedoLog(core, heap, capacity_entries=8)
        target = heap.pm.alloc(64)
        log.append(target)  # logged but NOT committed
        report = CrashSimulator(machine).power_failure(core.now)
        # The home location was never dirtied, so it cannot be lost.
        assert cacheline_index(target) not in report.lost_pm_lines
