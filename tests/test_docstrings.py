"""Docstring lint for the runner, CLI and experiment-harness modules.

A pydocstyle-style check (D100/D101/D102/D103 equivalents) implemented
over ``ast`` so it runs with zero extra dependencies: every module,
public class and public function/method in the modules below must
carry a docstring.  These are the modules whose public surface
``docs/api.md`` documents — their docstrings are required to state
cache-key and parallelism semantics, so an undocumented def here is a
regression, not a style nit.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules under the docstring contract (the runner subsystem, the CLI
#: that fronts it, the report machinery it schedules, the persistence
#: programming layer, and the fault-injection rig built on top of it).
LINTED_MODULES = [
    SRC / "runner" / "__init__.py",
    SRC / "runner" / "cache.py",
    SRC / "runner" / "engine.py",
    SRC / "runner" / "registry.py",
    SRC / "cli.py",
    SRC / "experiments" / "common.py",
    SRC / "persist" / "__init__.py",
    SRC / "persist" / "allocator.py",
    SRC / "persist" / "crash.py",
    SRC / "persist" / "log.py",
    SRC / "persist" / "persistency.py",
    SRC / "faults" / "__init__.py",
    SRC / "faults" / "campaign.py",
    SRC / "faults" / "experiment.py",
    SRC / "faults" / "hooks.py",
    SRC / "faults" / "schedule.py",
    SRC / "faults" / "validators.py",
    SRC / "faults" / "workloads.py",
    SRC / "trace" / "__init__.py",
    SRC / "trace" / "emit.py",
    SRC / "trace" / "events.py",
    SRC / "trace" / "sampler.py",
    SRC / "trace" / "session.py",
    SRC / "trace" / "tap.py",
    SRC / "validate" / "__init__.py",
    SRC / "validate" / "determinism.py",
    SRC / "validate" / "mutations.py",
    SRC / "validate" / "oracle.py",
    SRC / "validate" / "predicates.py",
    SRC / "validate" / "report.py",
    SRC / "validate" / "spec.py",
    SRC / "validate" / "claims" / "__init__.py",
]


def iter_public_defs(tree: ast.Module):
    """Yield (qualified name, node) for each def/class needing a docstring.

    Walks module-level and class-level definitions; names with a
    leading underscore are private and exempt (matching pydocstyle's
    default convention), as are nested helper functions.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if child.name.startswith("_") and not (
                            child.name.startswith("__") and child.name.endswith("__")
                        ):
                            continue
                        yield f"{node.name}.{child.name}", child


@pytest.mark.parametrize("path", LINTED_MODULES, ids=lambda p: p.stem)
def test_module_and_public_defs_have_docstrings(path):
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for name, node in iter_public_defs(tree):
        if ast.get_docstring(node) is None:
            missing.append(f"{name} (line {node.lineno})")
    assert not missing, (
        f"{path.relative_to(SRC.parent.parent)}: missing docstrings on: "
        + ", ".join(missing)
    )


def test_runner_docstrings_state_the_contract():
    """The cache and engine docs must actually describe key/parallel semantics."""
    cache_doc = (SRC / "runner" / "cache.py").read_text()
    engine_doc = ast.get_docstring(ast.parse((SRC / "runner" / "engine.py").read_text()))
    assert "SHA-256" in cache_doc and "code_version" in cache_doc
    assert "serial" in engine_doc and "deterministic" in engine_doc.lower()
