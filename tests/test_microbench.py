"""Integration tests: the Section 3 microbenchmark kernels reproduce
the paper's findings (shape assertions, small scales)."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.units import kib, mib
from repro.core.microbench.interleave import run_separation_probe, run_transition_probe
from repro.core.microbench.pointer_chase import PointerChaseBench
from repro.core.microbench.prefetch_probe import run_prefetch_probe
from repro.core.microbench.rap import run_rap_iterations
from repro.core.microbench.strided_read import run_strided_read
from repro.core.microbench.write_amp import run_write_amplification, run_write_hit_ratio
from repro.persist.persistency import FenceKind, FlushKind, PersistencyModel
from repro.system.presets import machine_for


def quiet(generation=1, **kwargs):
    kwargs.setdefault("prefetchers", PrefetcherConfig.none())
    return machine_for(generation, **kwargs)


class TestFig2ReadBuffer:
    """C1: RA = 4/CpX below capacity, 4 beyond, never below 1."""

    @pytest.mark.parametrize("cpx,expected", [(1, 4.0), (2, 2.0), (3, 4 / 3), (4, 1.0)])
    def test_below_capacity(self, cpx, expected):
        result = run_strided_read(quiet(), kib(8), cpx)
        assert result.read_amplification == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("cpx", [1, 2, 3, 4])
    def test_above_capacity_jumps_to_4(self, cpx):
        result = run_strided_read(quiet(), kib(24), cpx)
        assert result.read_amplification == pytest.approx(4.0, rel=0.05)

    def test_ra_never_below_one(self):
        for cpx in (1, 4):
            for wss in (kib(4), kib(16), kib(32)):
                result = run_strided_read(quiet(), wss, cpx)
                assert result.read_amplification >= 0.99

    def test_g2_larger_read_buffer(self):
        # 20 KB fits G2's 22 KB buffer but not G1's 16 KB.
        g1 = run_strided_read(quiet(1), kib(20), 4)
        g2 = run_strided_read(quiet(2), kib(20), 4)
        assert g1.read_amplification == pytest.approx(4.0, rel=0.05)
        assert g2.read_amplification == pytest.approx(1.0, rel=0.05)


class TestFig3WriteAmplification:
    """C3: partial writes absorbed below 12 KB; full writes WA ≈ 1 on G1."""

    def test_partial_writes_absorbed_below_capacity(self):
        for written in (1, 2, 3):
            result = run_write_amplification(quiet(), kib(8), written)
            assert result.write_amplification == 0.0

    def test_partial_writes_approach_theoretical_beyond(self):
        for written in (1, 2):
            result = run_write_amplification(quiet(), kib(32), written, passes=10)
            assert result.write_amplification > result.theoretical_max * 0.75
            assert result.write_amplification <= result.theoretical_max * 1.05

    def test_g1_full_writes_hit_wa_one_at_small_wss(self):
        result = run_write_amplification(quiet(1), kib(4), 4)
        assert result.write_amplification > 0.8

    def test_g2_full_writes_absorbed_at_small_wss(self):
        result = run_write_amplification(quiet(2), kib(8), 4)
        assert result.write_amplification < 0.1

    def test_wa_independent_of_access_order(self):
        seq = run_write_amplification(quiet(), kib(24), 1, passes=8)
        rnd = run_write_amplification(quiet(), kib(24), 1, passes=8, random_across_xplines=True)
        assert seq.write_amplification == pytest.approx(rnd.write_amplification, rel=0.15)


class TestFig4HitRatio:
    """C4: graceful decay; G1 knee at 12 KB, G2 knee past 16 KB."""

    def test_full_hit_below_capacity(self):
        assert run_write_hit_ratio(quiet(1), kib(8)).inferred_hit_ratio > 0.95
        assert run_write_hit_ratio(quiet(2), kib(14)).inferred_hit_ratio > 0.95

    def test_graceful_decay(self):
        ratios = [run_write_hit_ratio(quiet(1), wss).inferred_hit_ratio for wss in
                  (kib(12), kib(16), kib(24), kib(32))]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))
        assert 0.2 < ratios[-1] < 0.9  # graceful, not a cliff

    def test_g2_knee_later_than_g1(self):
        g1 = run_write_hit_ratio(quiet(1), kib(16)).inferred_hit_ratio
        g2 = run_write_hit_ratio(quiet(2), kib(16)).inferred_hit_ratio
        assert g2 > g1


class TestSec33Separation:
    """Separate buffers; XPLine transition avoids RMW."""

    def test_buffers_separate(self):
        result = run_separation_probe(1)
        assert result.buffers_are_separate
        assert result.interleaved_read_amplification == pytest.approx(1.0, rel=0.05)
        assert result.interleaved_media_write_bytes == 0

    def test_transition_traffic_far_below_imc(self):
        result = run_transition_probe(1)
        assert result.media_traffic_fraction < 0.5

    def test_read_first_transition_avoids_rmw(self):
        result = run_transition_probe(1, write_first=False)
        assert result.rmw_avoided > 0


class TestFig6Prefetch:
    """C2: no on-DIMM prefetching by itself; CPU prefetch wastes media reads."""

    def test_no_prefetch_ratios_are_one(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.none())
        result = run_prefetch_probe(machine, kib(256), visits=2000)
        assert result.pm_read_ratio == pytest.approx(1.0, abs=0.1)
        assert result.imc_read_ratio == pytest.approx(1.0, abs=0.1)

    def test_dcu_wastes_media_bandwidth_at_large_wss(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        result = run_prefetch_probe(machine, mib(64), visits=2000)
        assert result.pm_read_ratio > 1.5
        assert result.pm_read_ratio > result.imc_read_ratio

    def test_small_wss_prefetch_is_harmless(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        result = run_prefetch_probe(machine, kib(8), visits=2000)
        assert result.pm_read_ratio < 1.25

    def test_streamer_mildest(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("streamer"))
        streamer = run_prefetch_probe(machine, mib(64), visits=2000)
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        dcu = run_prefetch_probe(machine, mib(64), visits=2000)
        assert streamer.pm_read_ratio < dcu.pm_read_ratio

    def test_redirect_restores_ratio(self):
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        baseline = run_prefetch_probe(machine, mib(64), visits=2000)
        machine = machine_for(1, prefetchers=PrefetcherConfig.only("dcu"))
        optimized = run_prefetch_probe(machine, mib(64), visits=2000, redirect=True)
        assert optimized.pm_read_ratio < baseline.pm_read_ratio
        assert optimized.pm_read_ratio == pytest.approx(1.0, abs=0.15)


class TestFig7Rap:
    """C5: RAP costs ~10x on G1; sfence window; G2 clwb immune."""

    def _rap(self, generation, region, flush, fence, distance):
        machine = machine_for(
            generation,
            prefetchers=PrefetcherConfig.none(),
            remote_pm=True,
            remote_dram=True,
        )
        return run_rap_iterations(machine, region, flush, fence, distance, passes=15)

    def test_g1_clwb_mfence_distance_zero_expensive(self):
        near = self._rap(1, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0)
        far = self._rap(1, "pm", FlushKind.CLWB, FenceKind.MFENCE, 32)
        assert near > far * 4

    def test_g1_sfence_window(self):
        d0 = self._rap(1, "pm", FlushKind.CLWB, FenceKind.SFENCE, 0)
        d1 = self._rap(1, "pm", FlushKind.CLWB, FenceKind.SFENCE, 1)
        d3 = self._rap(1, "pm", FlushKind.CLWB, FenceKind.SFENCE, 3)
        assert d0 < 300 and d1 < 300
        assert d3 > 400

    def test_remote_worse_than_local(self):
        local = self._rap(1, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0)
        remote = self._rap(1, "pm_remote", FlushKind.CLWB, FenceKind.MFENCE, 0)
        assert remote > local

    def test_dram_gap_much_smaller(self):
        pm_near = self._rap(1, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0)
        dram_near = self._rap(1, "dram", FlushKind.CLWB, FenceKind.MFENCE, 0)
        assert dram_near < pm_near / 2

    def test_g2_clwb_fixed_nt_store_not(self):
        clwb = self._rap(2, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0)
        nt = self._rap(2, "pm", FlushKind.NT_STORE, FenceKind.MFENCE, 0)
        assert clwb < 500
        assert nt > 1000


@pytest.mark.slow
class TestFig8PointerChase:
    """C6: three latency levels; flat writes; reads dominate at scale.

    Each chase walks multi-MB working sets (10-20 s apiece), so the
    class is tier-2; the E6 claims in ``repro.validate`` re-assert the
    same shapes from the experiment's reports.
    """

    def _chase(self, wss, mode, sequential=True, model=PersistencyModel.STRICT):
        machine = machine_for(1)
        bench = PointerChaseBench(machine, wss, sequential)
        return bench.run(mode, model, max_ops=4000).cycles_per_element

    def test_three_latency_levels(self):
        small = self._chase(kib(4), "clwb")
        plateau = self._chase(kib(256), "clwb")
        large = self._chase(mib(64), "clwb", sequential=False)
        assert small < plateau < large

    def test_write_latency_flat(self):
        values = [self._chase(wss, "write", sequential=False) for wss in
                  (kib(64), mib(1), mib(64))]
        assert max(values) < min(values) * 1.4

    def test_read_dominates_beyond_caches(self):
        read = self._chase(mib(64), "read", sequential=False)
        write = self._chase(mib(64), "write", sequential=False)
        assert read > write

    def test_sequential_reads_cheaper_than_random(self):
        seq = self._chase(mib(64), "read", sequential=True)
        rand = self._chase(mib(64), "read", sequential=False)
        assert seq < rand * 0.8

    def test_relaxed_cheaper_at_small_wss(self):
        strict = self._chase(kib(4), "clwb", model=PersistencyModel.STRICT)
        relaxed = self._chase(kib(4), "clwb", model=PersistencyModel.RELAXED)
        assert relaxed < strict

    def test_models_converge_at_plateau(self):
        strict = self._chase(mib(1), "clwb", model=PersistencyModel.STRICT)
        relaxed = self._chase(mib(1), "clwb", model=PersistencyModel.RELAXED)
        assert relaxed == pytest.approx(strict, rel=0.25)
