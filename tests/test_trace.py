"""Tests for the repro.trace observability layer.

Covers the three guarantees ISSUE 4 promises: tracing is *observational*
(bit-identical experiment results with the tracer on or off), the
exported Chrome trace is schema-valid with monotonic per-track
timestamps, and the interval sampler resolves time-domain behaviour the
cumulative counters cannot (a non-constant WPQ occupancy during a RAP
run).
"""

import hashlib
import json

import pytest

from repro.common.errors import ConfigError
from repro.core.microbench.rap import run_rap_iterations
from repro.experiments import fig02, fig07
from repro.persist import PmHeap
from repro.persist.persistency import FenceKind, FlushKind
from repro.system.presets import machine_for
from repro.trace import (
    CATEGORIES,
    Sample,
    TelemetrySampler,
    TimeSeries,
    Tracer,
    active_session,
    session,
    to_chrome_trace,
    trace_core,
    validate_chrome_trace,
    write_chrome_trace,
    write_timeseries_csv,
    write_timeseries_json,
)


class TestTracer:
    def test_instant_span_counter(self):
        tracer = Tracer()
        tracer.instant("ait", "miss", 10.0, "pm0.ait")
        tracer.span("media", "read-xpline", 20.0, 35.0, "pm0")
        tracer.counter("imc", "wpq", 30.0, 2.0, "imc.pm0")
        assert len(tracer) == 3
        phases = [e.phase for e in tracer.events]
        assert phases == ["i", "X", "C"]
        assert tracer.events[1].dur == 15.0
        assert tracer.events[2].args == {"value": 2.0}

    def test_span_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.span("persist", "drain", 100.0, 90.0, "cpu0")
        assert tracer.events[0].dur == 0.0

    def test_category_filter(self):
        tracer = Tracer(categories=["imc"])
        assert tracer.wants("imc") and not tracer.wants("cache")
        tracer.instant("cache", "load-miss", 1.0, "cpu0")
        tracer.counter("imc", "wpq", 1.0, 1.0, "imc.pm0")
        assert [e.category for e in tracer.events] == ["imc"]

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigError):
            Tracer(categories=["imc", "nonsense"])

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigError):
            Tracer(max_events=0)

    def test_cap_counts_dropped(self):
        tracer = Tracer(max_events=3)
        for i in range(10):
            tracer.instant("persist", "store", float(i), "cpu0")
        assert len(tracer) == 3
        assert tracer.dropped == 7

    def test_by_category_and_tracks(self):
        tracer = Tracer()
        tracer.instant("rbuf", "hit", 1.0, "machine0.pm0")
        tracer.instant("rbuf", "miss", 2.0, "machine0.pm0")
        tracer.instant("wbuf", "hit", 3.0, "machine0.pm1")
        assert tracer.by_category() == {"rbuf": 2, "wbuf": 1}
        assert tracer.tracks() == ["machine0.pm0", "machine0.pm1"]

    def test_all_documented_categories_accepted(self):
        tracer = Tracer(categories=list(CATEGORIES))
        for category in CATEGORIES:
            assert tracer.wants(category)


class TestTimeSeries:
    def _series(self):
        from repro.trace.sampler import COLUMNS

        zero = {c: 0.0 for c in COLUMNS}
        series = TimeSeries()
        series.rows.append(Sample(1000.0, "pm0", dict(zero, wpq_occupancy=1.0)))
        series.rows.append(Sample(1000.0, "dram0", dict(zero)))
        series.rows.append(Sample(2000.0, "pm0", dict(zero, wpq_occupancy=2.0)))
        return series

    def test_devices_and_column(self):
        series = self._series()
        assert series.devices() == ["dram0", "pm0"]
        assert series.column("wpq_occupancy", device="pm0") == [
            (1000.0, 1.0), (2000.0, 2.0),
        ]
        assert len(series.column("wpq_occupancy")) == 3

    def test_roundtrip_obj(self):
        series = self._series()
        rebuilt = TimeSeries.from_obj(series.to_obj())
        assert len(rebuilt) == len(series)
        assert rebuilt.rows[0].device == "pm0"
        assert rebuilt.column("wpq_occupancy", device="pm0") == \
            series.column("wpq_occupancy", device="pm0")

    def test_obj_is_json_serializable(self):
        assert json.loads(json.dumps(self._series().to_obj()))["rows"]

    def test_csv_shape(self):
        text = self._series().to_csv()
        lines = text.splitlines()
        assert lines[0].startswith("ts,device,imc_read_bytes")
        assert len(lines) == 4
        assert lines[1].split(",")[1] == "pm0"

    def test_extend_merges(self):
        series = self._series()
        other = self._series()
        series.extend(other)
        assert len(series) == 6


class TestSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            TelemetrySampler(machine_for(1), interval=0)

    def test_boundary_crossing_yields_one_row_per_device(self):
        machine = machine_for(1)
        sampler = TelemetrySampler(machine, interval=1000)
        sampler.maybe_sample(500.0)
        assert len(sampler.series) == 0
        sampler.maybe_sample(1000.0)
        assert sampler.series.devices() == sorted(machine.channels())
        rows = len(sampler.series)
        # A jump across many boundaries still records one row per device.
        sampler.maybe_sample(7600.0)
        assert len(sampler.series) == 2 * rows
        assert sampler.series.rows[-1].ts == 2000.0
        # The next boundary advanced past the jump.
        sampler.maybe_sample(7900.0)
        assert len(sampler.series) == 2 * rows

    def test_deltas_are_per_interval(self):
        machine = machine_for(1)
        heap = PmHeap(machine)
        core = machine.new_core()
        sampler = TelemetrySampler(machine, interval=1_000_000)
        addr = heap.pm.alloc_xpline()
        core.nt_store(addr, 64)
        core.sfence()
        sampler.sample(1_000_000.0)
        first = [r for r in sampler.series.rows if r.device == "pm0"][-1]
        assert first.get("imc_write_bytes") == 64.0
        # No traffic since the last sample: the next delta is zero.
        sampler.sample(2_000_000.0)
        second = [r for r in sampler.series.rows if r.device == "pm0"][-1]
        assert second.get("imc_write_bytes") == 0.0

    def test_row_cap_counts_dropped(self):
        machine = machine_for(1)
        sampler = TelemetrySampler(machine, interval=100, max_rows=3)
        for ts in (100.0, 200.0, 300.0):
            sampler.sample(ts)
        assert len(sampler.series) == 3
        assert sampler.dropped > 0


class TestDisabledPath:
    def test_machine_freed_by_refcount_not_gc(self):
        """new_core must not close a Machine<->Core reference cycle.

        A strong core list would park every discarded machine on the
        cyclic collector (a measured double-digit slowdown on untraced
        sweeps); weak refs keep refcount-death working.
        """
        import gc
        import weakref

        machine = machine_for(1)
        core = machine.new_core()
        probe = weakref.ref(machine)
        gc.disable()
        try:
            del machine, core
            assert probe() is None, "machine survived refcount death"
        finally:
            gc.enable()

    def test_cores_property_lists_live_cores(self):
        machine = machine_for(1)
        first = machine.new_core("cpu0")
        second = machine.new_core("cpu1")
        assert machine.cores == [first, second]
        del second
        assert machine.cores == [first]


class TestSession:
    def test_inactive_by_default(self):
        assert active_session() is None
        machine = machine_for(1)
        assert machine.trace is None

    def test_machines_built_inside_are_attached(self):
        with session(interval=1000) as sess:
            machine = machine_for(1)
            assert active_session() is sess
            assert machine.trace is not None
            assert machine.trace.sampler is sess.samplers[0]
            for channel in machine.channels().values():
                assert channel.tracer is sess.tracer
                assert channel.device.tracer is sess.tracer
        assert active_session() is None

    def test_sessions_nest_and_restore(self):
        with session() as outer:
            with session() as inner:
                assert active_session() is inner
            assert active_session() is outer

    def test_each_machine_gets_own_process_label(self):
        with session(interval=1000) as sess:
            machine_for(1)
            machine_for(2)
        assert sess.machines == 2
        assert [s.label for s in sess.samplers] == ["machine0", "machine1"]

    def test_no_interval_means_no_samplers(self):
        with session() as sess:
            machine = machine_for(1)
            assert machine.trace.sampler is None
        assert sess.samplers == []
        assert sess.timeseries().rows == []

    def test_new_cores_inherit_track(self):
        with session():
            machine = machine_for(1)
            core = machine.new_core()
            assert core.trace_track == f"{machine.trace.label}.{core.name}"

    def test_summary_mentions_drops(self):
        with session(max_events=2) as sess:
            for i in range(5):
                sess.tracer.instant("persist", "store", float(i), "cpu0")
        assert "3 events dropped (cap)" in sess.summary()


class TestChromeExport:
    def _traced_run(self):
        with session(interval=500) as sess:
            machine = machine_for(1)
            run_rap_iterations(
                machine, "pm", FlushKind.CLWB, FenceKind.MFENCE,
                distance=0, wss=4096, passes=10,
            )
        return sess

    def test_export_is_valid_and_rich(self, tmp_path):
        sess = self._traced_run()
        path = write_chrome_trace(tmp_path / "trace.json", sess.tracer)
        stats = validate_chrome_trace(path)
        assert stats["events"] > 0
        # The acceptance bar: at least four distinct event categories.
        assert len(stats["categories"]) >= 4
        assert stats["tracks"] >= 2

    def test_timestamps_monotonic_per_track(self):
        sess = self._traced_run()
        trace = to_chrome_trace(sess.tracer)
        last: dict[tuple, float] = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]

    def test_metadata_names_every_track(self):
        sess = self._traced_run()
        trace = to_chrome_trace(sess.tracer)
        named = {
            (e["pid"], e["tid"])
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {
            (e["pid"], e["tid"])
            for e in trace["traceEvents"]
            if e["ph"] != "M"
        }
        assert used <= named

    def test_cycles_per_us_scales(self):
        tracer = Tracer()
        tracer.span("media", "read-xpline", 2000.0, 3000.0, "pm0")
        trace = to_chrome_trace(tracer, cycles_per_us=2000.0)
        span = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert span["ts"] == 1.0 and span["dur"] == 0.5

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})

    def test_validate_rejects_backwards_track(self):
        events = [
            {"ph": "i", "name": "a", "ts": 5.0, "pid": 1, "tid": 1, "s": "t"},
            {"ph": "i", "name": "b", "ts": 3.0, "pid": 1, "tid": 1, "s": "t"},
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace({"traceEvents": events})

    def test_timeseries_writers(self, tmp_path):
        sess = self._traced_run()
        series = sess.timeseries()
        csv_path = write_timeseries_csv(tmp_path / "ts.csv", series)
        json_path = write_timeseries_json(tmp_path / "ts.json", series)
        assert csv_path.read_text().splitlines()[0].startswith("ts,device")
        rebuilt = TimeSeries.from_obj(json.loads(json_path.read_text()))
        assert len(rebuilt) == len(series)


class TestWpqTimeDomain:
    def test_wpq_occupancy_varies_during_rap(self):
        """The sampler resolves the WPQ fill/drain sawtooth of Fig. 7."""
        with session(interval=500) as sess:
            machine = machine_for(1)
            run_rap_iterations(
                machine, "pm", FlushKind.CLWB, FenceKind.SFENCE,
                distance=0, wss=4096, passes=50,
            )
        occupancy = [v for _, v in
                     sess.timeseries().column("wpq_occupancy", device="pm0")]
        assert len(occupancy) > 10
        assert len(set(occupancy)) >= 2, "WPQ occupancy should not be constant"

    def test_rap_stall_spans_emitted_under_mfence(self):
        with session() as sess:
            machine = machine_for(1)
            run_rap_iterations(
                machine, "pm", FlushKind.CLWB, FenceKind.MFENCE,
                distance=0, wss=4096, passes=5,
            )
        stalls = [e for e in sess.tracer.events if e.name == "rap-stall"]
        assert stalls, "distance-0 mfence RAP must produce rap-stall spans"
        assert all(e.phase == "X" and e.dur > 0 for e in stalls)


class TestTracingTap:
    def test_persist_instants_stamped_at_completion(self):
        tracer = Tracer()
        machine = machine_for(1)
        heap = PmHeap(machine)
        core = machine.new_core()
        traced = trace_core(core, tracer)
        addr = heap.pm.alloc_xpline()
        traced.store(addr, 8)
        traced.clwb(addr)
        traced.sfence()
        kinds = [e.name for e in tracer.events]
        assert kinds == ["store", "clwb", "fence"]
        ts = [e.ts for e in tracer.events]
        assert ts == sorted(ts)
        # HookedCore forwards before reporting, so the final event is
        # stamped at the core's post-fence clock.
        assert ts[-1] == core.now

    def test_tap_contract_preserved(self):
        tracer = Tracer()
        machine = machine_for(1)
        heap = PmHeap(machine)
        traced = trace_core(machine.new_core(), tracer)
        addr = heap.pm.alloc_xpline()
        traced.store(addr, 8)
        traced.clwb(addr)
        traced.sfence()
        tap = traced.tap
        assert tap.count == 3
        assert [e.kind for e in tap.events] == ["store", "clwb", "fence"]
        assert tap.checker.committed_count == 1

    def test_category_filter_suppresses_instants_not_ledger(self):
        tracer = Tracer(categories=["media"])
        machine = machine_for(1)
        heap = PmHeap(machine)
        traced = trace_core(machine.new_core(), tracer)
        addr = heap.pm.alloc_xpline()
        traced.store(addr, 8)
        traced.clwb(addr)
        traced.sfence()
        assert len(tracer) == 0
        assert traced.tap.count == 3


def _digest(reports) -> str:
    """Canonical digest of one or many ExperimentReports."""
    if not isinstance(reports, list):
        reports = [reports]
    payload = json.dumps([r.to_dict() for r in reports], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestObservationalPurity:
    """Tracing must never perturb simulation results."""

    def test_fig2_digest_unchanged_by_tracing(self):
        base = _digest(fig02.run(1, "fast"))
        with session(interval=1000):
            traced = _digest(fig02.run(1, "fast"))
        assert traced == base

    def test_fig7_digest_unchanged_by_tracing(self):
        base = _digest(fig07.run_panel(1, "pm", "fast"))
        with session(interval=1000):
            traced = _digest(fig07.run_panel(1, "pm", "fast"))
        assert traced == base

    def test_category_filtering_also_pure(self):
        base = _digest(fig02.run(1, "fast"))
        with session(categories=["imc", "persist"]):
            traced = _digest(fig02.run(1, "fast"))
        assert traced == base
