"""Tests for power-failure simulation and crash-consistency checks."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import cacheline_index
from repro.common.errors import RecoveryError
from repro.datastores.cceh import CcehHashTable
from repro.persist import CrashSimulator, DurabilityChecker, PmHeap
from repro.system.presets import g1_machine
from repro.workloads import insert_only_stream


def setup():
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, machine.new_core(), PmHeap(machine)


class TestCrashSimulator:
    def test_unflushed_dirty_pm_line_is_lost(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # dirty in cache, never flushed
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) in report.lost_pm_lines

    def test_flushed_line_is_not_lost(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        core.persist(addr)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_nt_store_is_adr_safe(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.nt_store(addr, 64)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_write_buffer_drained_to_media(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.nt_store(addr, 64)  # sits in the write buffer
        before = machine.pm_counters().media_write_bytes
        report = CrashSimulator(machine).power_failure(core.now)
        assert report.drained_xplines >= 1
        assert machine.pm_counters().media_write_bytes > before

    def test_caches_empty_after_crash(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.load(addr, 8)
        CrashSimulator(machine).power_failure(core.now)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_dram_losses_reported_separately(self):
        machine, core, heap = setup()
        addr = heap.dram.alloc(64)
        core.store(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) in report.lost_dram_lines
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_lost_addresses_helper(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert addr in report.lost_addresses()


class TestDurabilityChecker:
    def test_committed_and_persisted_passes(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        core.persist(addr)
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        checker.verify_against(report)  # no exception

    def test_committed_but_unpersisted_fails(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # missing barrier!
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        with pytest.raises(RecoveryError):
            checker.verify_against(report)

    def test_commit_covers_multi_line_ranges(self):
        checker = DurabilityChecker()
        checker.commit(0, 256)
        assert checker.committed_count == 4


class TestCcehCrashConsistency:
    def test_cceh_inserts_are_durable(self):
        """CCEH persists every bucket update before returning — no
        committed key may reside only in the CPU caches."""
        machine, core, heap = setup()
        table = CcehHashTable(heap.pm)
        checker = DurabilityChecker()
        for key in insert_only_stream(2_000, seed=3):
            table.insert(key, key, core)
        # Commit claims for all bucket lines CCEH persisted: every
        # insert ended with clwb+fence, so nothing dirty may remain in
        # the caches for the segment address range.
        report = CrashSimulator(machine).power_failure(core.now)
        segment_lines = {
            line
            for line in report.lost_pm_lines
        }
        # Directory updates during splits are persisted too; the only
        # acceptable dirty lines would be none at all.
        assert not segment_lines, f"lost {len(segment_lines)} supposedly persisted lines"
