"""Tests for power-failure simulation and crash-consistency checks."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import cacheline_index
from repro.common.errors import ConfigError, RecoveryError
from repro.datastores.cceh import CcehHashTable
from repro.persist import CrashSimulator, DurabilityChecker, FaultMode, PmHeap
from repro.system.presets import g1_machine
from repro.workloads import insert_only_stream


def setup():
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, machine.new_core(), PmHeap(machine)


class TestCrashSimulator:
    def test_unflushed_dirty_pm_line_is_lost(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # dirty in cache, never flushed
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) in report.lost_pm_lines

    def test_flushed_line_is_not_lost(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        core.persist(addr)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_nt_store_is_adr_safe(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.nt_store(addr, 64)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_write_buffer_drained_to_media(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.nt_store(addr, 64)  # sits in the write buffer
        before = machine.pm_counters().media_write_bytes
        report = CrashSimulator(machine).power_failure(core.now)
        assert report.drained_xplines >= 1
        assert machine.pm_counters().media_write_bytes > before

    def test_caches_empty_after_crash(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.load(addr, 8)
        CrashSimulator(machine).power_failure(core.now)
        assert not machine.caches.contains(cacheline_index(addr))

    def test_dram_losses_reported_separately(self):
        machine, core, heap = setup()
        addr = heap.dram.alloc(64)
        core.store(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) in report.lost_dram_lines
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_lost_addresses_helper(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert addr in report.lost_addresses()


class TestDurabilityChecker:
    def test_committed_and_persisted_passes(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        core.persist(addr)
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        checker.verify_against(report)  # no exception

    def test_committed_but_unpersisted_fails(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # missing barrier!
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        with pytest.raises(RecoveryError):
            checker.verify_against(report)

    def test_commit_covers_multi_line_ranges(self):
        checker = DurabilityChecker()
        checker.commit(0, 256)
        assert checker.committed_count == 4


class TestCcehCrashConsistency:
    def test_cceh_inserts_are_durable(self):
        """CCEH persists every bucket update before returning — no
        committed key may reside only in the CPU caches."""
        machine, core, heap = setup()
        table = CcehHashTable(heap.pm)
        checker = DurabilityChecker()
        for key in insert_only_stream(2_000, seed=3):
            table.insert(key, key, core)
        # Commit claims for all bucket lines CCEH persisted: every
        # insert ended with clwb+fence, so nothing dirty may remain in
        # the caches for the segment address range.
        report = CrashSimulator(machine).power_failure(core.now)
        segment_lines = {
            line
            for line in report.lost_pm_lines
        }
        # Directory updates during splits are persisted too; the only
        # acceptable dirty lines would be none at all.
        assert not segment_lines, f"lost {len(segment_lines)} supposedly persisted lines"


class TestCrashReportDetails:
    def test_drained_by_dimm_reports_each_device(self):
        machine = g1_machine(pm_dimms=2, prefetchers=PrefetcherConfig.none())
        core = machine.new_core()
        heap = PmHeap(machine)
        spec = machine.region_spec("pm")
        # One nt_store per channel: interleaving maps consecutive
        # interleave-granule chunks to alternating DIMMs.
        for chunk in range(2):
            core.nt_store(spec.base + chunk * spec.interleave_bytes, 64)
        report = CrashSimulator(machine).power_failure(core.now)
        drained = dict(report.drained_by_dimm)
        assert set(drained) == {"pm0", "pm1"}
        assert all(count >= 1 for count in drained.values())
        assert report.drained_xplines == sum(drained.values())

    def test_wpq_and_inflight_cleared_after_crash(self):
        machine, core, heap = setup()
        addr = heap.pm.alloc(256)
        for offset in range(0, 256, 64):
            core.store(addr + offset, 8)
            core.clwb(addr + offset, 64)
        core.sfence()
        CrashSimulator(machine).power_failure(core.now)
        for region in machine._regions:
            for channel in region.channels:
                assert channel.wpq_occupancy(0.0) == 0
                assert channel.inflight.completion_for(cacheline_index(addr), 0.0) is None

    def test_eadr_flushes_dirty_cache_lines(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none(), eadr=True)
        core = machine.new_core()
        heap = PmHeap(machine)
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # no flush: the eADR domain must cover this
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert report.eadr_flushed_lines >= 1
        assert cacheline_index(addr) not in report.lost_pm_lines
        checker.verify_against(report)  # no exception

    def test_fault_mode_parse_round_trip_and_errors(self):
        assert FaultMode.parse("power-loss") is FaultMode.CLEAN
        assert FaultMode.parse("torn-xpline") is FaultMode.TORN_XPLINE
        assert FaultMode.parse("ait-miss") is FaultMode.AIT_MISS
        with pytest.raises(ConfigError):
            FaultMode.parse("meteor-strike")


class TestDurabilityCheckerEdgeCases:
    def test_commit_straddling_cacheline_boundary_claims_both_lines(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(128)
        straddle = addr + 60  # 8 bytes crossing into the next line
        core.store(straddle, 8)
        core.persist(straddle)  # flushes only the first touched line
        core.persist(straddle + 8)
        checker.commit(straddle, 8)
        assert checker.committed_count == 2
        report = CrashSimulator(machine).power_failure(core.now)
        checker.verify_against(report)  # both lines were persisted

    def test_commit_straddling_boundary_with_half_flush_fails(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(128)
        straddle = addr + 60
        core.store(straddle, 8)  # dirties line 0 AND line 1
        core.clwb(straddle, 4)  # flushes line 0 only — line 1 still dirty
        core.sfence()
        checker.commit(straddle, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        with pytest.raises(RecoveryError):
            checker.verify_against(report)

    def test_retract_withdraws_a_claim(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # never flushed
        checker.commit(addr, 8)
        checker.retract(addr, 8)
        assert checker.committed_count == 0
        report = CrashSimulator(machine).power_failure(core.now)
        checker.verify_against(report)  # retracted claim is not checked

    def test_commit_after_crash_is_not_a_violation(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        report = CrashSimulator(machine).power_failure(core.now)
        # Recovery code legitimately commits new data post-crash; the
        # ledger is only compared against the crash-time report.
        checker.commit(addr, 8)
        assert not checker.violations_against(report)
        checker.verify_against(report)

    def test_violations_against_returns_the_lost_lines(self):
        machine, core, heap = setup()
        checker = DurabilityChecker()
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        checker.commit(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert checker.violations_against(report) == frozenset({cacheline_index(addr)})
