"""Tests for the on-DIMM read buffer (FIFO, CPU-cache-exclusive)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.read_buffer import ReadBuffer
from repro.common.errors import ConfigError
from repro.common.units import kib


def make(capacity_xplines=4):
    return ReadBuffer(capacity_xplines * 256)


class TestInstall:
    def test_install_makes_servable(self):
        buffer = make()
        buffer.install(10)
        assert buffer.servable(10, 0)
        assert buffer.servable(10, 3)

    def test_install_with_consumed_slot(self):
        buffer = make()
        buffer.install(10, consumed_slots=(1,))
        assert not buffer.servable(10, 1)
        assert buffer.servable(10, 0)

    def test_install_all_slots_consumed_drops_entry(self):
        buffer = make()
        buffer.install(10, consumed_slots=(0, 1, 2, 3))
        assert not buffer.contains(10)

    def test_fifo_eviction_order(self):
        buffer = make(capacity_xplines=2)
        buffer.install(1)
        buffer.install(2)
        evicted = buffer.install(3)
        assert evicted == 1
        assert not buffer.contains(1)
        assert buffer.contains(2)
        assert buffer.contains(3)

    def test_hit_does_not_refresh_fifo_position(self):
        buffer = make(capacity_xplines=2)
        buffer.install(1)
        buffer.install(2)
        buffer.deliver(1, 0)  # a hit on the oldest entry
        evicted = buffer.install(3)
        assert evicted == 1  # still evicted first: FIFO, not LRU

    def test_reinstall_resets_consumed_slots(self):
        buffer = make()
        buffer.install(10, consumed_slots=(0,))
        buffer.install(10, consumed_slots=(1,))
        assert buffer.servable(10, 0)
        assert not buffer.servable(10, 1)

    def test_capacity_below_one_xpline_rejected(self):
        with pytest.raises(ConfigError):
            ReadBuffer(100)


class TestDeliver:
    def test_miss_on_absent_line(self):
        assert make().deliver(5, 0) is False

    def test_exclusivity_consumes_slot(self):
        buffer = make()
        buffer.install(10)
        assert buffer.deliver(10, 2)
        assert not buffer.deliver(10, 2)  # already delivered to the CPU

    def test_fully_consumed_entry_dropped(self):
        buffer = make()
        buffer.install(10)
        for slot in range(4):
            assert buffer.deliver(10, slot)
        assert not buffer.contains(10)

    def test_unconsumed_slot_count(self):
        buffer = make()
        buffer.install(10, consumed_slots=(0,))
        assert buffer.unconsumed_slot_count(10) == 3
        assert buffer.unconsumed_slot_count(999) == 0


class TestTake:
    def test_take_removes_for_transition(self):
        buffer = make()
        buffer.install(10)
        assert buffer.take(10)
        assert not buffer.contains(10)

    def test_take_absent_returns_false(self):
        assert make().take(10) is False


class TestCapacitySemantics:
    def test_paper_capacity_is_64_xplines(self):
        buffer = ReadBuffer(kib(16))
        assert buffer.capacity_lines == 64

    def test_resident_order_is_fifo(self):
        buffer = make(capacity_xplines=3)
        for xpline in (7, 5, 9):
            buffer.install(xpline)
        assert buffer.resident_xplines() == [7, 5, 9]

    def test_clear(self):
        buffer = make()
        buffer.install(1)
        buffer.clear()
        assert len(buffer) == 0


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from(["install", "deliver", "take"]),
                  st.integers(0, 20), st.integers(0, 3)),
        max_size=200,
    )
)
def test_never_exceeds_capacity(operations):
    buffer = ReadBuffer(4 * 256)
    for op, xpline, slot in operations:
        if op == "install":
            buffer.install(xpline, consumed_slots=(slot,))
        elif op == "deliver":
            buffer.deliver(xpline, slot)
        else:
            buffer.take(xpline)
        assert len(buffer) <= buffer.capacity_lines


@settings(max_examples=50)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_installed_line_servable_until_consumed_or_evicted(xplines):
    buffer = ReadBuffer(8 * 256)
    for xpline in xplines:
        buffer.install(xpline)
        # The just-installed line is always fully servable.
        assert all(buffer.servable(xpline, slot) for slot in range(4))
