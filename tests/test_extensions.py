"""Tests for the extension features: automatic helper-trace extraction
(§4.1 future work) and eADR (§6 discussion)."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import cacheline_index
from repro.core.helper import HelperConfig, HelperThread
from repro.core.trace_helper import ExtractedTrace, RecordingCore, extract_lookup_trace
from repro.datastores.cceh import CcehHashTable
from repro.persist import CrashSimulator, PersistConfig, Persister, PmHeap
from repro.persist.persistency import FlushKind
from repro.system.presets import g1_machine, g2_machine
from repro.workloads import insert_only_stream


def cceh_setup(n=20_000):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    table = CcehHashTable(PmHeap(machine).pm)
    for key in insert_only_stream(n, seed=5):
        table.insert(key, key)
    return machine, table


class TestRecordingCore:
    def test_records_loads_only(self):
        core = RecordingCore()
        core.load(100, 8)
        core.store(200, 8)
        core.clwb(200)
        core.sfence()
        assert core.load_trace == [(100, 8)]

    def test_records_stream_loads(self):
        core = RecordingCore()
        core.stream_load(256, 64)
        assert core.load_trace == [(256, 64)]


class TestExtractedTrace:
    def test_extracted_matches_manual_trace(self):
        machine, table = cceh_setup()
        manual = machine.new_core("manual")
        table.prefetch_trace(manual, 123)

        auto_core = machine.new_core("auto")
        trace = extract_lookup_trace(table)
        trace(auto_core, 123)
        # The automatic trace covers at least the manual loads
        # (directory + home bucket) and stays load-only.
        assert auto_core.loads >= manual.loads
        assert auto_core.stores == 0
        assert auto_core.flushes == 0

    def test_probe_misses_still_record_prefix(self):
        machine, table = cceh_setup()
        trace = extract_lookup_trace(table)
        helper = machine.new_core("helper")
        trace(helper, 999_999_999)  # absent key
        assert helper.loads >= 2  # directory + probed buckets

    def test_prefix_limit(self):
        machine, table = cceh_setup()
        trace = extract_lookup_trace(table, prefix_loads=1)
        helper = machine.new_core("helper")
        trace(helper, 5)
        assert helper.loads == 1

    def test_rejects_traceless_objects(self):
        with pytest.raises(TypeError):
            extract_lookup_trace(object())

    def test_extracted_trace_drives_helper_thread(self):
        """End-to-end: the auto-extracted helper speeds up inserts like
        the hand-written one."""
        machine, table = cceh_setup()
        keys = [key + (1 << 41) for key in insert_only_stream(3_000, seed=9)]
        worker = machine.new_core("worker")
        start = worker.now
        for key in keys:
            table.insert(key, key, worker)
        baseline = (worker.now - start) / len(keys)

        machine2, table2 = cceh_setup()
        keys2 = list(keys)
        worker2 = machine2.new_core("worker")
        helper = HelperThread(machine2, extract_lookup_trace(table2), HelperConfig(depth=8))
        start = worker2.now
        for index, key in enumerate(keys2):
            helper.sync_before(worker2, keys2, index)
            table2.insert(key, key, worker2)
        helped = (worker2.now - start) / len(keys2)
        assert helped < baseline


class TestEadr:
    def test_dirty_pm_lines_survive_crash(self):
        machine = g2_machine(prefetchers=PrefetcherConfig.none(), eadr=True)
        core = machine.new_core()
        heap = PmHeap(machine)
        addr = heap.pm.alloc(64)
        core.store(addr, 8)  # no flush at all
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) not in report.lost_pm_lines

    def test_without_eadr_same_store_is_lost(self):
        machine = g2_machine(prefetchers=PrefetcherConfig.none(), eadr=False)
        core = machine.new_core()
        heap = PmHeap(machine)
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        report = CrashSimulator(machine).power_failure(core.now)
        assert cacheline_index(addr) in report.lost_pm_lines

    def test_eadr_flush_reaches_dimm(self):
        machine = g2_machine(prefetchers=PrefetcherConfig.none(), eadr=True)
        core = machine.new_core()
        heap = PmHeap(machine)
        addr = heap.pm.alloc(64)
        core.store(addr, 8)
        before = machine.pm_counters().imc_write_bytes
        CrashSimulator(machine).power_failure(core.now)
        assert machine.pm_counters().imc_write_bytes > before

    def test_flushless_persister(self):
        machine = g2_machine(prefetchers=PrefetcherConfig.none(), eadr=True)
        core = machine.new_core()
        heap = PmHeap(machine)
        persister = Persister(core, PersistConfig(flush=FlushKind.NONE))
        persister.write(heap.pm.alloc(64), 8)
        assert core.flushes == 0

    def test_flushless_persist_much_cheaper(self):
        machine = g2_machine(prefetchers=PrefetcherConfig.none(), eadr=True)
        heap = PmHeap(machine)
        addrs = [heap.pm.alloc(64) for _ in range(64)]
        core = machine.new_core()
        eadr_persister = Persister(core, PersistConfig(flush=FlushKind.NONE))
        start = core.now
        for addr in addrs:
            eadr_persister.write(addr, 8)
        eadr_cost = core.now - start

        core2 = machine.new_core()
        clwb_persister = Persister(core2, PersistConfig(flush=FlushKind.CLWB))
        addrs2 = [heap.pm.alloc(64) for _ in range(64)]
        start = core2.now
        for addr in addrs2:
            clwb_persister.write(addr, 8)
        clwb_cost = core2.now - start
        assert eadr_cost < clwb_cost / 2
