"""Tests for the iMC channel: WPQ semantics and back-pressure."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.dimm.config import OptaneDimmConfig
from repro.dimm.optane import OptaneDimm
from repro.stats.counters import TelemetryCounters
from repro.system.imc import IMCChannel


def make_channel(wpq_slots=4, accept=60.0, **dimm_overrides):
    import dataclasses

    config = OptaneDimmConfig.g1()
    if dimm_overrides:
        config = dataclasses.replace(config, **dimm_overrides)
    dimm = OptaneDimm(config, TelemetryCounters(), DeterministicRng(2))
    return IMCChannel(dimm, wpq_slots=wpq_slots, accept_latency=accept)


class TestWpqBasics:
    def test_acceptance_after_accept_latency(self):
        channel = make_channel()
        grant = channel.write(0.0, 0)
        assert grant.acceptance == 60.0
        assert grant.issue_ready == 0.0

    def test_persist_completion_far_after_acceptance(self):
        channel = make_channel()
        grant = channel.write(0.0, 0)
        assert grant.persist_completion > grant.acceptance + 1000

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            make_channel(wpq_slots=0)
        with pytest.raises(ConfigError):
            make_channel(accept=-1)

    def test_occupancy(self):
        channel = make_channel(wpq_slots=4)
        channel.write(0.0, 0)
        assert channel.wpq_occupancy(0.0) == 1
        assert channel.wpq_occupancy(1e9) == 0


class TestBackPressure:
    def test_wpq_fills_under_eviction_storm(self):
        # Distinct XPLines overflow the write buffer; each ingest then
        # waits on a media write, keeping WPQ slots busy and delaying
        # issue_ready for subsequent stores.
        channel = make_channel(wpq_slots=2)
        issue_delays = []
        now = 0.0
        for index in range(200):
            grant = channel.write(now, index * 256)
            issue_delays.append(grant.issue_ready - now)
            now += 10.0  # offered load far above the drain rate
        assert issue_delays[0] == 0.0
        assert max(issue_delays[-20:]) > 100.0  # saturated steady state

    def test_absorbed_writes_do_not_back_pressure(self):
        channel = make_channel(wpq_slots=2)
        # Hammer a handful of XPLines that fit the write buffer.
        now = 0.0
        delays = []
        for index in range(100):
            grant = channel.write(now, (index % 4) * 256 + 64)
            delays.append(grant.issue_ready - now)
            now = grant.acceptance
        assert max(delays) < 100.0


class TestSameLineHazard:
    def test_reflush_of_inflight_line_delays_acceptance(self):
        channel = make_channel()
        first = channel.write(0.0, 0)
        again = channel.write(first.acceptance + 10, 0)
        baseline = channel.write(first.acceptance + 10, 4096)
        assert again.acceptance - baseline.acceptance >= IMCChannel.SAME_LINE_HAZARD_CAP * 0.9

    def test_no_hazard_after_completion(self):
        channel = make_channel()
        first = channel.write(0.0, 0)
        later = channel.write(first.persist_completion + 10, 0)
        assert later.acceptance - later.issue_ready == pytest.approx(channel.accept_latency)


class TestReadSide:
    def test_read_delegates_to_device(self):
        channel = make_channel()
        response = channel.read(0.0, 0)
        assert response.finish > 0
        assert channel.reads_issued == 1

    def test_persist_stall_visibility(self):
        channel = make_channel()
        grant = channel.write(0.0, 0)
        assert channel.persist_stall(grant.acceptance, 0) == grant.persist_completion
        assert channel.persist_stall(grant.persist_completion + 1, 0) is None

    def test_reset(self):
        channel = make_channel()
        channel.write(0.0, 0)
        channel.reset()
        assert channel.writes_issued == 0
        assert channel.persist_stall(0.0, 0) is None
