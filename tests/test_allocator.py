"""Tests for the PM/DRAM region allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE
from repro.common.errors import AllocationError
from repro.persist.allocator import PmHeap, RegionAllocator
from repro.system.presets import g1_machine


def make_allocator(region="pm"):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return RegionAllocator(machine, region)


class TestAlloc:
    def test_within_region(self):
        allocator = make_allocator()
        addr = allocator.alloc(1024)
        assert allocator.base <= addr < allocator.end

    def test_default_cacheline_alignment(self):
        allocator = make_allocator()
        allocator.alloc(7)
        addr = allocator.alloc(7)
        assert addr % 64 == 0

    def test_xpline_alignment(self):
        allocator = make_allocator()
        allocator.alloc(64)
        addr = allocator.alloc_xpline()
        assert addr % XPLINE_SIZE == 0

    def test_no_overlap(self):
        allocator = make_allocator()
        first = allocator.alloc(256)
        second = allocator.alloc(256)
        assert second >= first + 256

    def test_rejects_zero_size(self):
        with pytest.raises(AllocationError):
            make_allocator().alloc(0)

    def test_rejects_non_power_of_two_alignment(self):
        with pytest.raises(AllocationError):
            make_allocator().alloc(64, align=48)

    def test_exhaustion(self):
        allocator = make_allocator()
        region_size = allocator.end - allocator.base
        allocator.alloc(region_size - 4096)
        with pytest.raises(AllocationError):
            allocator.alloc(8192)


class TestFree:
    def test_free_and_reuse(self):
        allocator = make_allocator()
        addr = allocator.alloc(256)
        allocator.free(addr, 256)
        assert allocator.alloc(256) == addr

    def test_free_outside_region_rejected(self):
        with pytest.raises(AllocationError):
            make_allocator().free(1, 64)

    def test_bytes_in_use(self):
        allocator = make_allocator()
        addr = allocator.alloc(256)
        assert allocator.bytes_in_use == 256
        allocator.free(addr, 256)
        assert allocator.bytes_in_use == 0


class TestHeap:
    def test_pm_and_dram_disjoint(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        heap = PmHeap(machine)
        pm = heap.pm.alloc(64)
        dram = heap.dram.alloc(64)
        assert machine.region_of(pm).spec.kind == "pm"
        assert machine.region_of(dram).spec.kind == "dram"


@settings(max_examples=25)
@given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=60))
def test_allocations_never_overlap(sizes):
    allocator = make_allocator()
    spans = []
    for size in sizes:
        addr = allocator.alloc(size)
        rounded = (size + 63) & ~63
        for start, end in spans:
            assert addr + rounded <= start or addr >= end
        spans.append((addr, addr + rounded))
