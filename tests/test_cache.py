"""Tests for the set-associative cache and the 3-level hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.cache.set_assoc import CacheLevelConfig, SetAssociativeCache
from repro.common.errors import ConfigError
from repro.common.units import kib, mib


def small_cache(size=1024, ways=2, latency=4.0):
    return SetAssociativeCache(CacheLevelConfig("t", size, ways, latency))


class TestSetAssocBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(1)
        cache.fill(1)
        assert cache.lookup(1)

    def test_hit_miss_counters(self):
        cache = small_cache()
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_probe_has_no_side_effects(self):
        cache = small_cache()
        cache.fill(1)
        cache.probe(1)
        assert cache.hits == 0

    def test_geometry(self):
        config = CacheLevelConfig("L1", kib(32), 8, 4.0)
        assert config.n_sets == 64
        assert config.n_lines == 512

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig("bad", 1000, 3, 4.0).validate()


class TestSetAssocEviction:
    def test_lru_eviction(self):
        cache = small_cache(size=2 * 64, ways=2)  # one set, two ways
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)  # 0 is now MRU
        eviction = cache.fill(2)
        assert eviction.line == 1

    def test_fill_refreshes_lru(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.fill(0)  # refresh
        eviction = cache.fill(2)
        assert eviction.line == 1

    def test_eviction_carries_dirty_flag(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0, dirty=True)
        cache.fill(1)
        eviction = cache.fill(2)
        assert eviction.line == 0 and eviction.dirty

    def test_different_sets_do_not_conflict(self):
        cache = small_cache(size=4 * 64, ways=2)  # two sets
        assert cache.fill(0) is None
        assert cache.fill(1) is None  # other set
        assert cache.fill(2) is None
        assert cache.fill(3) is None


class TestSetAssocDirty:
    def test_set_dirty_requires_presence(self):
        cache = small_cache()
        assert not cache.set_dirty(1)
        cache.fill(1)
        assert cache.set_dirty(1)
        assert cache.is_dirty(1)

    def test_clean_keeps_line(self):
        cache = small_cache()
        cache.fill(1, dirty=True)
        assert cache.clean(1)
        assert cache.probe(1)
        assert not cache.is_dirty(1)

    def test_invalidate_reports_dirty(self):
        cache = small_cache()
        cache.fill(1, dirty=True)
        present, dirty = cache.invalidate(1)
        assert present and dirty
        assert not cache.probe(1)

    def test_fill_merges_dirty(self):
        cache = small_cache()
        cache.fill(1, dirty=True)
        cache.fill(1, dirty=False)
        assert cache.is_dirty(1)


@settings(max_examples=40)
@given(st.lists(st.integers(0, 200), max_size=400))
def test_capacity_never_exceeded(lines):
    cache = small_cache(size=8 * 64, ways=2)
    for line in lines:
        cache.fill(line)
        assert cache.resident_lines <= 8


def hier():
    return CacheHierarchy(
        CacheHierarchyConfig(
            l1=CacheLevelConfig("L1", kib(4), 2, 4.0),
            l2=CacheLevelConfig("L2", kib(16), 4, 14.0),
            l3=CacheLevelConfig("L3", kib(64), 8, 42.0),
        )
    )


def tiny_hier():
    """Shrunken hierarchy for LLC-eviction tests."""
    return CacheHierarchy(
        CacheHierarchyConfig(
            l1=CacheLevelConfig("L1", kib(1), 2, 4.0),
            l2=CacheLevelConfig("L2", kib(2), 4, 14.0),
            l3=CacheLevelConfig("L3", kib(4), 8, 42.0),
        )
    )


class TestHierarchy:
    def test_miss_then_fill_then_l1_hit(self):
        h = hier()
        result = h.access(1, is_write=False)
        assert result.hit_level is None
        h.fill(1)
        result = h.access(1, is_write=False)
        assert result.hit_level == 1
        assert result.latency == 4.0

    def test_fill_is_inclusive(self):
        h = hier()
        h.fill(1)
        assert h.l1.probe(1) and h.l2.probe(1) and h.l3.probe(1)

    def test_fill_skip_l1(self):
        h = hier()
        h.fill(1, into_l1=False)
        assert not h.l1.probe(1)
        assert h.l2.probe(1)

    def test_l2_hit_promotes_to_l1(self):
        h = hier()
        h.fill(1, into_l1=False)
        result = h.access(1, is_write=False)
        assert result.hit_level == 2
        assert h.l1.probe(1)

    def test_write_hit_marks_l1_dirty(self):
        h = hier()
        h.fill(1)
        h.access(1, is_write=True)
        assert h.l1.is_dirty(1)

    def test_invalidate_everywhere(self):
        h = hier()
        h.fill(1, dirty=True)
        assert h.invalidate(1)
        assert not h.contains(1)

    def test_clean_retains_line(self):
        h = hier()
        h.fill(1, dirty=True)
        assert h.clean(1)
        assert h.contains(1)
        assert not h.is_dirty(1)

    def test_llc_eviction_back_invalidates(self):
        h = tiny_hier()  # L3: 8 sets of 8 ways
        h.fill(0)
        # Fill conflicting lines (same L3 set) to force line 0 out.
        for line in range(8, 8 * 30, 8):
            h.fill(line)
        assert not h.l3.probe(0)
        assert not h.l1.probe(0)
        assert not h.l2.probe(0)

    def test_dirty_llc_eviction_reported(self):
        h = tiny_hier()
        h.fill(0, dirty=True)
        writebacks = []
        for line in range(8, 8 * 200, 8):
            writebacks += list(h.fill(line))
            if 0 in writebacks:
                break
        assert 0 in writebacks

    def test_dirty_l1_eviction_propagates_to_l2(self):
        h = hier()
        # L1: 4KB/2-way → 32 sets; lines 0, 32, 64 conflict in L1 set 0.
        h.fill(0, dirty=True)
        h.fill(32)
        h.fill(64)  # evicts line 0 from L1
        assert not h.l1.probe(0)
        assert h.l2.is_dirty(0)

    def test_shrinking_levels_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchyConfig(
                l1=CacheLevelConfig("L1", kib(64), 2, 4.0),
                l2=CacheLevelConfig("L2", kib(16), 4, 14.0),
                l3=CacheLevelConfig("L3", kib(64), 8, 42.0),
            ).validate()

    def test_g1_and_g2_presets(self):
        g1 = CacheHierarchyConfig.g1()
        g2 = CacheHierarchyConfig.g2()
        assert g1.l3.size_bytes == int(mib(27.5))
        assert g2.l3.size_bytes == mib(36)
        assert g2.l2.size_bytes > g1.l2.size_bytes

    def test_clear(self):
        h = hier()
        h.fill(1)
        h.clear()
        assert not h.contains(1)
