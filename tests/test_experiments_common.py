"""Tests for the experiment harness machinery and the machine presets."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.units import kib, mib
from repro.experiments.common import (
    ExperimentReport,
    buffer_wss_grid,
    check_profile,
    interleave_workers,
    split_round_robin,
    wide_wss_grid,
)
from repro.system.presets import g1_machine, g2_machine, machine_for


class TestExperimentReport:
    def make(self):
        report = ExperimentReport("t1", "title", "WSS", [kib(4), kib(8)])
        report.add_series("a", [1.0, 2.0])
        report.add_series("b", [3.0, 4.0])
        return report

    def test_get_series(self):
        assert self.make().get("a") == [1.0, 2.0]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            self.make().get("zzz")

    def test_value_lookup(self):
        assert self.make().value("b", kib(8)) == 4.0

    def test_mismatched_length_rejected(self):
        report = ExperimentReport("t", "t", "x", [1, 2, 3])
        with pytest.raises(ValueError):
            report.add_series("bad", [1.0])

    def test_render_contains_everything(self):
        report = self.make()
        report.notes.append("a note")
        text = report.render()
        assert "t1" in text and "4KB" in text and "8KB" in text
        assert "a note" in text
        assert "3.00" in text

    def test_render_formats_sizes(self):
        report = ExperimentReport("t", "t", "WSS", [mib(16)])
        report.add_series("s", [1.0])
        assert "16MB" in report.render()


class TestGridsAndProfiles:
    def test_buffer_grid_monotone(self):
        grid = buffer_wss_grid()
        assert grid == sorted(grid)
        assert grid[0] >= 1024

    def test_wide_grid_profiles(self):
        assert len(wide_wss_grid("full")) > len(wide_wss_grid("fast"))

    def test_check_profile(self):
        assert check_profile("fast") == "fast"
        with pytest.raises(ValueError):
            check_profile("turbo")


class TestInterleaveWorkers:
    def test_round_robin_split(self):
        assert split_round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_workers_share_machine_resources(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        base = machine.region_spec("pm").base
        cores = [machine.new_core(f"w{i}") for i in range(2)]

        def stream(core, offset):
            for index in range(20):
                def task(index=index):
                    core.nt_store(base + offset + index * 256, 64)
                yield task

        makespan = interleave_workers(
            [(cores[0], stream(cores[0], 0)), (cores[1], stream(cores[1], 1 << 20))]
        )
        assert makespan > 0
        assert all(core.stores == 20 for core in cores)

    def test_makespan_is_max_elapsed(self):
        machine = g1_machine(prefetchers=PrefetcherConfig.none())
        core = machine.new_core()

        def stream():
            for _ in range(3):
                def task():
                    core.tick(100)
                yield task

        assert interleave_workers([(core, stream())]) == pytest.approx(300)

    def test_empty_workers(self):
        assert interleave_workers([]) == 0.0


class TestPresets:
    def test_machine_for_dispatch(self):
        assert machine_for(1).config.generation == 1
        assert machine_for(2).config.generation == 2
        with pytest.raises(ValueError):
            machine_for(3)

    def test_g1_g2_differences(self):
        g1 = g1_machine()
        g2 = g2_machine()
        assert not g1.config.clwb_retains
        assert g2.config.clwb_retains
        assert g2.config.optane.read_buffer_bytes > g1.config.optane.read_buffer_bytes
        assert g1.config.optane.periodic_writeback
        assert not g2.config.optane.periodic_writeback
        assert g2.config.frequency_ghz > g1.config.frequency_ghz

    def test_dimm_counts(self):
        machine = g1_machine(pm_dimms=6)
        names = [name for name in machine.registry.names() if name.startswith("pm")]
        assert len(names) == 6

    def test_config_overrides_passthrough(self):
        machine = g1_machine(wpq_slots=4)
        assert machine.config.wpq_slots == 4

    def test_seed_changes_rng(self):
        a = g1_machine(seed=1)
        b = g1_machine(seed=2)
        assert a.rng.seed != b.rng.seed
