"""Tests for the discrete-event core: clock, ports, inflight, scheduler."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.sim.clock import Clock
from repro.sim.inflight import InflightPersists
from repro.sim.ports import ServicePorts
from repro.sim.scheduler import GeneratorThread, ThreadScheduler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance(self):
        clock = Clock()
        clock.advance(10)
        assert clock.now == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            Clock().advance(-1)

    def test_advance_to_future_only(self):
        clock = Clock(100)
        clock.advance_to(50)
        assert clock.now == 100
        clock.advance_to(150)
        assert clock.now == 150

    def test_reset(self):
        clock = Clock(5)
        clock.reset()
        assert clock.now == 0.0


class TestServicePorts:
    def test_single_port_serializes(self):
        ports = ServicePorts(1)
        first = ports.acquire(0, 100)
        second = ports.acquire(0, 100)
        assert first.finish == 100
        assert second.start == 100
        assert second.finish == 200

    def test_two_ports_parallel(self):
        ports = ServicePorts(2)
        first = ports.acquire(0, 100)
        second = ports.acquire(0, 100)
        assert first.finish == 100
        assert second.finish == 100

    def test_request_after_idle_starts_immediately(self):
        ports = ServicePorts(1)
        ports.acquire(0, 10)
        grant = ports.acquire(500, 10)
        assert grant.start == 500

    def test_earliest_start(self):
        ports = ServicePorts(1)
        ports.acquire(0, 100)
        assert ports.earliest_start(0) == 100
        assert ports.earliest_start(300) == 300

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            ServicePorts(0)

    def test_rejects_negative_service(self):
        with pytest.raises(ConfigError):
            ServicePorts(1).acquire(0, -5)

    def test_utilization(self):
        ports = ServicePorts(2)
        ports.acquire(0, 100)
        assert ports.utilization(100) == pytest.approx(0.5)

    def test_queue_statistics(self):
        ports = ServicePorts(1)
        ports.acquire(0, 100)
        ports.acquire(0, 100)
        assert ports.total_requests == 2
        assert ports.total_queue_cycles == 100

    def test_reset(self):
        ports = ServicePorts(1)
        ports.acquire(0, 100)
        ports.reset()
        assert ports.acquire(0, 10).start == 0

    def test_picks_earliest_free_port(self):
        ports = ServicePorts(2)
        ports.acquire(0, 100)
        ports.acquire(0, 50)
        third = ports.acquire(0, 10)
        assert third.start == 50


class TestInflightPersists:
    def test_absent_line_returns_none(self):
        assert InflightPersists().completion_for(5, 0) is None

    def test_pending_persist_visible(self):
        inflight = InflightPersists()
        inflight.add(5, 100)
        assert inflight.completion_for(5, 50) == 100

    def test_completed_persist_pruned(self):
        inflight = InflightPersists()
        inflight.add(5, 100)
        assert inflight.completion_for(5, 150) is None
        assert len(inflight) == 0

    def test_newer_later_persist_supersedes(self):
        inflight = InflightPersists()
        inflight.add(5, 100)
        inflight.add(5, 300)
        assert inflight.completion_for(5, 50) == 300

    def test_earlier_completion_does_not_regress(self):
        inflight = InflightPersists()
        inflight.add(5, 300)
        inflight.add(5, 100)
        assert inflight.completion_for(5, 50) == 300

    def test_drain_time(self):
        inflight = InflightPersists()
        inflight.add(1, 100)
        inflight.add(2, 250)
        assert inflight.drain_time(0) == 250
        assert inflight.drain_time(400) == 400

    def test_pending_count(self):
        inflight = InflightPersists()
        inflight.add(1, 100)
        inflight.add(2, 200)
        assert inflight.pending_count(150) == 1

    def test_clear(self):
        inflight = InflightPersists()
        inflight.add(1, 100)
        inflight.clear()
        assert inflight.completion_for(1, 0) is None


class _CounterThread:
    """Minimal ThreadContext: counts down steps, advancing time."""

    def __init__(self, steps, stride):
        self.now = 0.0
        self._left = steps
        self._stride = stride
        self.executed = []

    def step(self):
        if self._left == 0:
            return False
        self._left -= 1
        self.now += self._stride
        self.executed.append(self.now)
        return True


class TestScheduler:
    def test_runs_all_threads_to_completion(self):
        scheduler = ThreadScheduler()
        a = _CounterThread(3, 10)
        b = _CounterThread(2, 100)
        scheduler.add(a)
        scheduler.add(b)
        scheduler.run()
        assert len(a.executed) == 3
        assert len(b.executed) == 2

    def test_makespan(self):
        scheduler = ThreadScheduler()
        a = _CounterThread(3, 10)
        scheduler.add(a)
        scheduler.run()
        assert scheduler.makespan == 30

    def test_causal_order(self):
        # Steps must be dispatched in nondecreasing *start* time order:
        # a thread whose local clock is behind always runs first.
        scheduler = ThreadScheduler()
        starts = []

        class Recorder(_CounterThread):
            def step(self):
                starts.append(self.now)
                return super().step()

        scheduler.add(Recorder(5, 1))
        scheduler.add(Recorder(2, 100))
        scheduler.run()
        assert starts == sorted(starts)

    def test_max_steps_guard(self):
        scheduler = ThreadScheduler()

        class Forever:
            now = 0.0

            def step(self):
                self.now += 1
                return True

        scheduler.add(Forever())
        with pytest.raises(SimulationError):
            scheduler.run(max_steps=10)

    def test_generator_thread(self):
        clock = Clock()

        def body():
            for _ in range(4):
                clock.advance(5)
                yield

        thread = GeneratorThread("worker", body(), lambda: clock.now)
        scheduler = ThreadScheduler()
        scheduler.add(thread)
        scheduler.run()
        assert thread.steps == 4
        assert clock.now == 20
