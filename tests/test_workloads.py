"""Tests for access patterns, zipfian generators and the YCSB engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.common.units import kib
from repro.workloads.patterns import (
    circular_chain,
    partial_write_addresses,
    random_block_sequence,
    strided_read_addresses,
)
from repro.workloads.ycsb import (
    STANDARD_WORKLOADS,
    OpType,
    WorkloadSpec,
    YcsbConfig,
    YcsbWorkload,
    insert_only_stream,
)
from repro.workloads.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    perfect_skew_check,
)


class TestStridedRead:
    def test_one_pass_per_cacheline(self):
        addrs = list(strided_read_addresses(0, 1024, 2))
        assert len(addrs) == 2 * 4  # 4 XPLines, 2 passes

    def test_pass_structure(self):
        addrs = list(strided_read_addresses(0, 512, 2))
        assert addrs == [0, 256, 64, 320]

    def test_base_offset_applied(self):
        addrs = list(strided_read_addresses(1 << 20, 512, 1))
        assert all(addr >= 1 << 20 for addr in addrs)

    def test_invalid_cpx(self):
        with pytest.raises(ConfigError):
            list(strided_read_addresses(0, 1024, 5))

    def test_tiny_wss_rejected(self):
        with pytest.raises(ConfigError):
            list(strided_read_addresses(0, 128, 1))


class TestPartialWrite:
    def test_sequential_order(self):
        addrs = list(partial_write_addresses(0, 512, 2))
        assert addrs == [0, 64, 256, 320]

    def test_random_order_is_permutation_of_sequential(self):
        seq = list(partial_write_addresses(0, kib(4), 3))
        rnd = list(partial_write_addresses(0, kib(4), 3, DeterministicRng(5)))
        assert sorted(seq) == sorted(rnd)
        assert seq != rnd

    def test_written_lines_bounded(self):
        with pytest.raises(ConfigError):
            list(partial_write_addresses(0, 1024, 0))


class TestRandomBlocks:
    def test_alignment_and_range(self):
        rng = DeterministicRng(1)
        for addr in random_block_sequence(1024, kib(4), 100, rng):
            assert addr % 256 == 0
            assert 1024 <= addr < 1024 + kib(4)

    def test_count(self):
        rng = DeterministicRng(1)
        assert len(list(random_block_sequence(0, kib(4), 57, rng))) == 57


class TestCircularChain:
    def test_sequential_chain(self):
        assert circular_chain(4, sequential=True) == [1, 2, 3, 0]

    def test_random_needs_rng(self):
        with pytest.raises(ConfigError):
            circular_chain(4, sequential=False)

    @given(st.integers(min_value=1, max_value=300), st.integers(0, 5))
    @settings(max_examples=40)
    def test_random_chain_is_hamiltonian_cycle(self, count, seed):
        chain = circular_chain(count, sequential=False, rng=DeterministicRng(seed))
        cursor, seen = 0, set()
        for _ in range(count):
            assert cursor not in seen
            seen.add(cursor)
            cursor = chain[cursor]
        assert cursor == 0
        assert len(seen) == count


class TestZipf:
    def test_bounds(self):
        gen = ZipfianGenerator(1000, DeterministicRng(1))
        assert all(0 <= gen.next() < 1000 for _ in range(2000))

    def test_skew_toward_head(self):
        gen = ZipfianGenerator(10_000, DeterministicRng(1))
        samples = [gen.next() for _ in range(5000)]
        assert perfect_skew_check(samples, 10_000) > 0.3

    def test_uniform_not_skewed(self):
        gen = UniformGenerator(10_000, DeterministicRng(1))
        samples = [gen.next() for _ in range(5000)]
        assert perfect_skew_check(samples, 10_000) < 0.05

    def test_scrambled_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(10_000, DeterministicRng(1))
        samples = [gen.next() for _ in range(5000)]
        # Scrambling moves the hot ranks away from the low end...
        assert perfect_skew_check(samples, 10_000) < 0.3
        # ...but the distribution stays skewed: few keys dominate.
        from collections import Counter

        top = Counter(samples).most_common(10)
        assert sum(count for _, count in top) > 500

    def test_determinism(self):
        a = ZipfianGenerator(1000, DeterministicRng(7))
        b = ZipfianGenerator(1000, DeterministicRng(7))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(0, DeterministicRng(1))
        with pytest.raises(ConfigError):
            ZipfianGenerator(10, DeterministicRng(1), theta=1.5)

    def test_fnv_is_deterministic_and_64bit(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert 0 <= fnv1a_64(12345) < 2**64
        assert fnv1a_64(1) != fnv1a_64(2)

    def test_large_keyspace_constructs_fast(self):
        gen = ZipfianGenerator(16_000_000, DeterministicRng(1))
        assert 0 <= gen.next() < 16_000_000


class TestYcsb:
    def test_standard_workloads_valid(self):
        for spec in STANDARD_WORKLOADS.values():
            spec.validate()

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("bad", read=0.5).validate()

    def test_load_phase_covers_keyspace(self):
        workload = YcsbWorkload(YcsbConfig(record_count=100, operation_count=0))
        keys = [op.key for op in workload.load_phase()]
        assert keys == list(range(100))
        assert all(op.op is OpType.INSERT for op in workload.load_phase())

    def test_run_phase_counts(self):
        workload = YcsbWorkload(YcsbConfig(record_count=100, operation_count=500))
        ops = list(workload.run_phase())
        assert len(ops) == 500

    def test_workload_a_mix(self):
        config = YcsbConfig(record_count=1000, operation_count=4000)
        workload = YcsbWorkload(config)
        ops = list(workload.run_phase())
        reads = sum(1 for op in ops if op.op is OpType.READ)
        updates = sum(1 for op in ops if op.op is OpType.UPDATE)
        assert 0.4 < reads / len(ops) < 0.6
        assert 0.4 < updates / len(ops) < 0.6

    def test_workload_c_read_only(self):
        config = YcsbConfig(
            record_count=100, operation_count=200, spec=STANDARD_WORKLOADS["C"]
        )
        ops = list(YcsbWorkload(config).run_phase())
        assert all(op.op is OpType.READ for op in ops)

    def test_workload_d_inserts_extend_keyspace(self):
        config = YcsbConfig(
            record_count=100, operation_count=1000, spec=STANDARD_WORKLOADS["D"]
        )
        ops = list(YcsbWorkload(config).run_phase())
        inserts = [op for op in ops if op.op is OpType.INSERT]
        assert inserts
        assert max(op.key for op in inserts) >= 100

    def test_workload_e_scan_lengths(self):
        config = YcsbConfig(
            record_count=100, operation_count=500, spec=STANDARD_WORKLOADS["E"]
        )
        ops = list(YcsbWorkload(config).run_phase())
        scans = [op for op in ops if op.op is OpType.SCAN]
        assert scans
        assert all(1 <= op.scan_length <= 100 for op in scans)

    def test_keys_within_inserted_range(self):
        config = YcsbConfig(record_count=50, operation_count=500)
        ops = list(YcsbWorkload(config).run_phase())
        non_inserts = [op for op in ops if op.op is not OpType.INSERT]
        assert all(op.key < 50 for op in non_inserts)

    def test_determinism(self):
        config = YcsbConfig(record_count=100, operation_count=100, seed=9)
        a = [(op.op, op.key) for op in YcsbWorkload(config).run_phase()]
        b = [(op.op, op.key) for op in YcsbWorkload(config).run_phase()]
        assert a == b

    def test_insert_only_stream(self):
        keys = insert_only_stream(1000, seed=4)
        assert sorted(keys) == list(range(1000))
        assert keys != list(range(1000))  # shuffled

    def test_insert_only_stream_unshuffled(self):
        assert insert_only_stream(10, shuffled=False) == list(range(10))
