"""Tests for B+-tree deletion and report CSV export."""

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.errors import KeyNotFoundError
from repro.datastores.btree import FastFairTree
from repro.experiments.common import ExperimentReport
from repro.persist.allocator import PmHeap
from repro.system.presets import g1_machine


def make_tree(mode="inplace"):
    machine = g1_machine(prefetchers=PrefetcherConfig.none())
    return machine, FastFairTree(PmHeap(machine), mode=mode)


class TestBtreeRemove:
    def test_remove_then_miss(self):
        _, tree = make_tree()
        tree.insert(5, 50)
        tree.remove(5)
        with pytest.raises(KeyNotFoundError):
            tree.get(5)

    def test_remove_missing_raises(self):
        _, tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.remove(5)

    def test_remove_preserves_order(self):
        _, tree = make_tree()
        for key in range(100):
            tree.insert(key, key)
        for key in range(0, 100, 3):
            tree.remove(key)
        tree.check_invariants()
        remaining = tree.range_scan(0, 200)
        assert [k for k, _ in remaining] == [k for k in range(100) if k % 3]

    def test_remove_shifts_left(self):
        _, tree = make_tree()
        for key in range(0, 20, 2):  # 10 keys, one leaf
            tree.insert(key, key)
        before = tree.stats.shifts
        tree.remove(0)  # 9 entries shift left
        assert tree.stats.shifts - before == 9

    def test_remove_persists(self):
        machine, tree = make_tree()
        for key in range(10):
            tree.insert(key, key)
        core = machine.new_core()
        snapshot = machine.pm_counters().snapshot()
        tree.remove(0, core)
        assert machine.pm_counters().delta(snapshot).imc_write_bytes > 0

    def test_redo_mode_removal(self):
        _, tree = make_tree("redo")
        for key in range(50):
            tree.insert(key, key)
        for key in range(0, 50, 5):
            tree.remove(key)
        tree.check_invariants()
        assert not tree.range_scan(0, 1)[0][0] % 5 == 0 or True
        with pytest.raises(KeyNotFoundError):
            tree.get(45)

    def test_len_decrements(self):
        _, tree = make_tree()
        tree.insert(1, 1)
        tree.insert(2, 2)
        tree.remove(1)
        assert len(tree) == 1

    def test_inplace_removal_slower_than_redo_on_g1(self):
        machine_a, inplace = make_tree("inplace")
        machine_b, redo = make_tree("redo")
        for key in range(1000):
            inplace.insert(key, key)
            redo.insert(key, key)
        core_a, core_b = machine_a.new_core(), machine_b.new_core()
        victims = list(range(0, 1000, 7))
        start = core_a.now
        for key in victims:
            inplace.remove(key, core_a)
        inplace_cost = core_a.now - start
        start = core_b.now
        for key in victims:
            redo.remove(key, core_b)
        redo_cost = core_b.now - start
        assert redo_cost < inplace_cost  # the same RAP effect as insertion


class TestCsvExport:
    def make(self):
        report = ExperimentReport("t", "demo", "WSS", [4096, 8192])
        report.add_series("plain", [1.5, 2.5])
        report.add_series("with,comma", [3.0, 4.0])
        return report

    def test_header(self):
        csv = self.make().to_csv()
        assert csv.splitlines()[0] == 'WSS,plain,"with,comma"'

    def test_rows(self):
        lines = self.make().to_csv().splitlines()
        assert lines[1].startswith("4KB,1.5")
        assert lines[2].startswith("8KB,2.5")

    def test_row_count(self):
        assert len(self.make().to_csv().splitlines()) == 3
