"""Tests for the supplemental experiment modules (scaled down)."""

import pytest

from repro.experiments.bandwidth import measure_bandwidth, run as run_bandwidth
from repro.experiments.interleaving import run as run_interleaving
from repro.experiments.lock_handover import run as run_lock


class TestBandwidth:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            measure_bandwidth(1, "teleport", threads=1, ops_per_thread=2)

    def test_seq_read_scales_with_threads(self):
        one = measure_bandwidth(1, "seq-read", threads=1, ops_per_thread=600)
        four = measure_bandwidth(1, "seq-read", threads=4, ops_per_thread=600)
        assert four > 2 * one

    def test_write_does_not_scale(self):
        one = measure_bandwidth(1, "nt-write", threads=1, ops_per_thread=600)
        four = measure_bandwidth(1, "nt-write", threads=4, ops_per_thread=600)
        assert four < 1.5 * one

    def test_random_read_below_sequential(self):
        seq = measure_bandwidth(1, "seq-read", threads=4, ops_per_thread=400)
        rand = measure_bandwidth(1, "rand-read", threads=4, ops_per_thread=400)
        assert rand < seq


class TestInterleaving:
    def test_report_shape(self):
        report = run_interleaving(1, "fast")
        latency = report.get("random read latency (cycles)")
        bw = report.get("nt-store bandwidth (GB/s, 8 threads)")
        assert latency[0] == pytest.approx(latency[1], rel=0.1)
        assert bw[1] > 2 * bw[0]


class TestLockHandover:
    def test_report_shape(self):
        report = run_lock("fast")
        assert report.value("G1", "pm") > 3 * report.value("G2", "pm")
        assert report.value("G1", "pm_remote") > report.value("G1", "pm")
