"""Tests for address arithmetic in repro.common.constants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import constants as c


class TestBasicConstants:
    def test_cacheline_size(self):
        assert c.CACHELINE_SIZE == 64

    def test_xpline_size(self):
        assert c.XPLINE_SIZE == 256

    def test_cachelines_per_xpline(self):
        assert c.CACHELINES_PER_XPLINE == 4

    def test_max_amplification(self):
        assert c.MAX_AMPLIFICATION == 4.0

    def test_full_mask_has_four_bits(self):
        assert c.FULL_XPLINE_MASK == 0b1111


class TestCachelineHelpers:
    def test_index_of_zero(self):
        assert c.cacheline_index(0) == 0

    def test_index_of_63_is_zero(self):
        assert c.cacheline_index(63) == 0

    def test_index_of_64_is_one(self):
        assert c.cacheline_index(64) == 1

    def test_base_rounds_down(self):
        assert c.cacheline_base(130) == 128

    def test_base_of_aligned_address(self):
        assert c.cacheline_base(192) == 192

    def test_alignment_check(self):
        assert c.is_cacheline_aligned(128)
        assert not c.is_cacheline_aligned(129)


class TestXplineHelpers:
    def test_index(self):
        assert c.xpline_index(255) == 0
        assert c.xpline_index(256) == 1

    def test_base(self):
        assert c.xpline_base(300) == 256

    def test_alignment_check(self):
        assert c.is_xpline_aligned(512)
        assert not c.is_xpline_aligned(576)

    def test_slot_in_xpline(self):
        assert c.cacheline_slot_in_xpline(0) == 0
        assert c.cacheline_slot_in_xpline(64) == 1
        assert c.cacheline_slot_in_xpline(128) == 2
        assert c.cacheline_slot_in_xpline(192) == 3
        assert c.cacheline_slot_in_xpline(256) == 0


@given(st.integers(min_value=0, max_value=2**48))
def test_cacheline_base_is_aligned_and_covers(addr):
    base = c.cacheline_base(addr)
    assert base % c.CACHELINE_SIZE == 0
    assert base <= addr < base + c.CACHELINE_SIZE


@given(st.integers(min_value=0, max_value=2**48))
def test_xpline_base_is_aligned_and_covers(addr):
    base = c.xpline_base(addr)
    assert base % c.XPLINE_SIZE == 0
    assert base <= addr < base + c.XPLINE_SIZE


@given(st.integers(min_value=0, max_value=2**48))
def test_slot_consistency(addr):
    slot = c.cacheline_slot_in_xpline(addr)
    assert 0 <= slot < 4
    reconstructed = c.xpline_base(addr) + slot * c.CACHELINE_SIZE
    assert reconstructed == c.cacheline_base(addr)


@given(st.integers(min_value=0, max_value=2**40))
def test_four_cachelines_per_xpline(line_index):
    addr = line_index * c.CACHELINE_SIZE
    assert c.xpline_index(addr) == line_index // 4
