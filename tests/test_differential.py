"""Differential tests: serial vs process-pool vs cached sweeps agree.

The PR-2 hardening (retries, quarantine, shard timeouts) must never
change *results* — a pooled sweep, a serial sweep and a cache replay
of the same requests have to produce byte-identical report JSON.
These tests drive the public :mod:`repro.validate.determinism` checks
plus the :class:`ExperimentReport` round-trip invariants they rely on.
"""

import json

import pytest

from repro.experiments.common import ExperimentReport
from repro.runner import ResultCache, RunRequest, run_sweep
from repro.trace.session import session
from repro.validate.determinism import (
    check_cache_determinism,
    check_parallel_determinism,
)


class TestSerialVsPool:
    def test_fig4_byte_identical(self):
        result = check_parallel_determinism(experiments=("fig4",), jobs=2)
        assert result.passed, result.detail

    @pytest.mark.slow
    def test_fig2_fig7_byte_identical(self):
        """The ISSUE's named pair: fig2 and fig7, four workers."""
        result = check_parallel_determinism(experiments=("fig2", "fig7"), jobs=4)
        assert result.passed, result.detail


class TestCachedVsFresh:
    def test_cache_replay_byte_identical(self, tmp_path):
        result = check_cache_determinism(tmp_path, experiment="fig4")
        assert result.passed, result.detail

    def test_cached_entries_stay_untraced(self, tmp_path):
        """Tracing must never leak into the cache.

        A sweep under an ambient trace session attaches telemetry to
        the returned report, but the engine stores reports *before*
        attaching — so a later replay comes back untraced
        (``timeseries is None``) and byte-identical to an ordinary run.
        """
        cache = ResultCache(tmp_path)
        requests = [RunRequest.make("fig4", generation=1, profile="fast")]
        with session(interval=5000):
            traced, _ = run_sweep(requests, jobs=1, cache=cache, force=True)
        assert traced[0].error is None
        assert traced[0].reports[0].timeseries is not None

        replay, metrics = run_sweep(requests, jobs=1, cache=cache)
        assert metrics.cache_hits == 1
        assert all(report.timeseries is None for report in replay[0].reports)

        untraced_dicts = [
            {**report.to_dict(), "timeseries": None} for report in traced[0].reports
        ]
        replay_dicts = [report.to_dict() for report in replay[0].reports]
        assert json.dumps(replay_dicts, sort_keys=True) == json.dumps(
            untraced_dicts, sort_keys=True
        )


class TestTimeseriesRoundTrip:
    """Regression: report JSON round-trips preserve the timeseries field."""

    def _report(self, timeseries):
        return ExperimentReport(
            experiment_id="rt", title="round trip", x_label="x",
            x_values=[1, 2], series=[], timeseries=timeseries,
        )

    def test_none_is_preserved(self):
        report = self._report(None)
        assert ExperimentReport.from_json(report.to_json()).timeseries is None

    def test_attached_timeseries_round_trips_equal(self):
        """Tuples canonicalize to lists at construction, so a report
        compares equal to its own parse-back whatever shape the caller
        handed in."""
        report = self._report(
            {"interval": 5000, "rows": ({"t": 0, "v": (1, 2)}, {"t": 1, "v": (3, 4)})}
        )
        parsed = ExperimentReport.from_json(report.to_json())
        assert parsed == report
        assert parsed.timeseries == {
            "interval": 5000,
            "rows": [{"t": 0, "v": [1, 2]}, {"t": 1, "v": [3, 4]}],
        }

    def test_to_dict_does_not_alias_the_payload(self):
        report = self._report({"rows": [1, 2, 3]})
        report.to_dict()["timeseries"]["rows"].append(99)
        assert report.timeseries == {"rows": [1, 2, 3]}
