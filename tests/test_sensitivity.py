"""Sensitivity tests: signatures track the configured parameters.

These validate that the paper-visible quantities are *causally* driven
by the mechanisms we claim drive them: move a configuration knob, and
the corresponding measurement moves with it (and nothing else breaks).
"""

import dataclasses

import pytest

from repro.cache.prefetch import PrefetcherConfig
from repro.common.units import kib
from repro.core.microbench.rap import run_rap_iterations
from repro.core.microbench.strided_read import run_strided_read
from repro.core.microbench.write_amp import run_write_amplification
from repro.dimm.config import OptaneDimmConfig
from repro.persist.persistency import FenceKind, FlushKind
from repro.system.presets import g1_machine


def machine_with(**optane_overrides):
    return g1_machine(
        prefetchers=PrefetcherConfig.none(),
        optane=OptaneDimmConfig.g1(**optane_overrides),
    )


class TestReadBufferSizeSensitivity:
    @pytest.mark.parametrize("capacity_kib", [8, 16, 32])
    def test_ra_step_tracks_capacity(self, capacity_kib):
        capacity = kib(capacity_kib)
        below = run_strided_read(
            machine_with(read_buffer_bytes=capacity), capacity - kib(2), 4
        )
        above = run_strided_read(
            machine_with(read_buffer_bytes=capacity), capacity + kib(2), 4
        )
        assert below.read_amplification == pytest.approx(1.0, rel=0.05)
        assert above.read_amplification == pytest.approx(4.0, rel=0.05)


class TestWriteBufferSizeSensitivity:
    @pytest.mark.parametrize("capacity_kib", [8, 16, 24])
    def test_wa_departure_tracks_capacity(self, capacity_kib):
        capacity = kib(capacity_kib)
        below = run_write_amplification(
            machine_with(write_buffer_bytes=capacity), capacity - kib(2), 1
        )
        above = run_write_amplification(
            machine_with(write_buffer_bytes=capacity), capacity + kib(8), 1, passes=10
        )
        assert below.write_amplification == 0.0
        assert above.write_amplification > 1.0


class TestPersistDrainSensitivity:
    def test_rap_peak_tracks_drain_latency(self):
        short = machine_with(persist_drain_latency=800.0)
        long = machine_with(persist_drain_latency=3200.0)
        peak_short = run_rap_iterations(
            short, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0, passes=12
        )
        peak_long = run_rap_iterations(
            long, "pm", FlushKind.CLWB, FenceKind.MFENCE, 0, passes=12
        )
        assert peak_long > peak_short + 2000
        # The settled level is drain-independent.
        settled_short = run_rap_iterations(
            machine_with(persist_drain_latency=800.0),
            "pm", FlushKind.CLWB, FenceKind.MFENCE, 32, passes=12,
        )
        settled_long = run_rap_iterations(
            machine_with(persist_drain_latency=3200.0),
            "pm", FlushKind.CLWB, FenceKind.MFENCE, 32, passes=12,
        )
        assert settled_long == pytest.approx(settled_short, rel=0.25)


class TestBufferLatencySensitivity:
    def test_buffer_hit_latency_moves_settled_rap(self):
        fast = machine_with(buffer_read_latency=60.0)
        slow = machine_with(buffer_read_latency=360.0)
        settled_fast = run_rap_iterations(
            fast, "pm", FlushKind.CLWB, FenceKind.MFENCE, 8, passes=12
        )
        settled_slow = run_rap_iterations(
            slow, "pm", FlushKind.CLWB, FenceKind.MFENCE, 8, passes=12
        )
        assert settled_slow > settled_fast + 150


class TestWritebackPeriodSensitivity:
    def test_longer_period_coalesces_more(self):
        # With a very long period, a short full-write run finishes
        # before any timer fires: only rewrites drain lines.
        quick = run_write_amplification(
            machine_with(writeback_period=500.0), kib(4), 4, passes=4
        )
        lazy = run_write_amplification(
            machine_with(writeback_period=5_000_000.0), kib(4), 4, passes=4
        )
        assert lazy.write_amplification <= quick.write_amplification
