"""Tests for the fidelity oracle (:mod:`repro.validate`).

Predicates are exercised on synthetic curves, the claim registry is
sanity-checked as a whole, FidelityReport bookkeeping (including the
mutation-smoke exit logic) is tested with stub verdicts, and a small
live validation runs the cheapest experiments end to end.  Full
validation and live mutation smoke are marked ``slow``/``campaign``.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.units import kib
from repro.experiments.common import ExperimentReport
from repro.runner.registry import REGISTRY
from repro.validate import (
    Claim,
    ClaimVerdict,
    Curve,
    FidelityReport,
    MUTATIONS,
    PredicateResult,
    ReportSet,
    parse_mutation,
    select_claims,
    validate,
)
from repro.validate.claims import all_claims
from repro.validate.mutations import resolve_expected
from repro.validate.predicates import (
    all_of,
    crossover_at,
    flat_wrt_wss,
    knee_between,
    monotone_decay,
    monotone_rise,
    never_below,
    ordering,
    peak_over_floor,
    plateau,
    ratio_approx,
    span_ratio,
    value_approx,
    within,
)
from repro.validate.spec import on_pair, on_reports, on_series


def curve(*y, x=None):
    return Curve.of(x if x is not None else list(range(len(y))), y)


class TestCurve:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Curve.of([1, 2], [1.0])

    def test_clip_is_inclusive(self):
        clipped = curve(10, 20, 30, 40).clip(x_min=1, x_max=2)
        assert clipped.x == (1, 2)
        assert clipped.y == (20, 30)

    def test_y_at_picks_nearest_grid_point(self):
        assert curve(10, 20, 30).y_at(0.6) == 20

    def test_first_x_where(self):
        assert curve(1, 1, 5, 9).first_x_where(lambda y: y > 4) == 2
        assert curve(1, 1).first_x_where(lambda y: y > 4) is None


class TestSingleCurvePredicates:
    def test_plateau_windowed(self):
        c = curve(1.0, 1.0, 4.0, 4.0)
        assert plateau(1.0, 0.01, x_max=1)(c).passed
        assert not plateau(1.0, 0.01)(c).passed

    def test_knee_between(self):
        c = curve(1.0, 1.0, 1.0, 4.0, 4.0)
        assert knee_between(2, 4, baseline=1.0)(c).passed
        assert not knee_between(0, 2, baseline=1.0)(c).passed
        assert not knee_between(0, 4)(curve(1.0, 1.0)).passed  # never departs

    def test_monotone_rise_needs_gain(self):
        assert monotone_rise(min_gain=2.0)(curve(1, 2, 4)).passed
        assert not monotone_rise(min_gain=2.0)(curve(1, 1, 1)).passed
        assert not monotone_rise()(curve(1, 3, 2)).passed
        assert monotone_rise(tol=1.5)(curve(1, 3, 2)).passed

    def test_monotone_decay(self):
        assert monotone_decay(min_drop=2.0)(curve(4, 3, 1)).passed
        assert not monotone_decay()(curve(4, 5, 1)).passed

    def test_never_below(self):
        assert never_below(1.0)(curve(1.0, 2.0)).passed
        assert not never_below(1.0)(curve(0.9, 2.0)).passed

    def test_within_point_and_window(self):
        c = curve(5, 50, 500)
        assert within(40, 60, at_x=1)(c).passed
        assert within(0, 60, x_max=1)(c).passed
        assert not within(0, 60)(c).passed

    def test_value_approx(self):
        assert value_approx(0, 100, rel=0.1)(curve(95)).passed
        assert not value_approx(0, 100, rel=0.01)(curve(95)).passed

    def test_flat_wrt_wss(self):
        assert flat_wrt_wss(0.05)(curve(100, 101, 99)).passed
        assert not flat_wrt_wss(0.05)(curve(100, 150)).passed
        assert flat_wrt_wss()(curve(0, 0)).passed  # all-zero is flat

    def test_span_ratio(self):
        c = curve(100, 200, 450)
        assert span_ratio(0, 2, 4.0, 5.0)(c).passed
        assert not span_ratio(0, 1, 4.0, 5.0)(c).passed

    def test_peak_over_floor(self):
        assert peak_over_floor(2.5, 3.5)(curve(300, 150, 100)).passed
        assert not peak_over_floor(2.5, 3.5)(curve(300, 200)).passed
        assert not peak_over_floor(1, 9)(curve(3, 0)).passed  # zero floor

    def test_all_of_joins_expectations(self):
        combined = all_of(never_below(1.0), plateau(2.0, 0.1))
        result = combined(curve(2.0, 2.0))
        assert result.passed
        assert "AND" in result.expected
        assert not combined(curve(2.0, 9.0)).passed


class TestPairPredicates:
    def test_ratio_approx_at_x_and_maxima(self):
        a, b = curve(10, 40), curve(10, 20)
        assert ratio_approx(2.0, 0.05)(a, b).passed  # maxima: 40/20
        assert ratio_approx(1.0, 0.05, at_x=0)(a, b).passed
        assert not ratio_approx(2.0, 0.05, at_x=0)(a, b).passed

    def test_ordering_margin_and_direction(self):
        lower, higher = curve(1.0, 1.0), curve(2.0, 2.0)
        assert ordering(margin=0.4)(lower, higher).passed
        assert not ordering(margin=0.6)(lower, higher).passed
        assert ordering(margin=0.4, higher_is_better=True)(higher, lower).passed

    def test_ordering_negative_margin_is_tolerance(self):
        # Ties within the tolerance count as wins (fig13's iMC vs PM).
        near = curve(1.001, 1.0)
        base = curve(1.0, 1.0)
        assert not ordering(margin=0.0)(near, base).passed
        assert ordering(margin=-0.005)(near, base).passed

    def test_crossover_at(self):
        subject = curve(5, 4, 2, 1)
        reference = curve(3, 3, 3, 3)
        assert crossover_at(1, 3)(subject, reference).passed
        assert not crossover_at(3, 9)(subject, reference).passed
        # Winning everywhere is not a crossover.
        assert not crossover_at(0, 3)(curve(1, 1), curve(3, 3)).passed


def _report(experiment_id="fig-x", series=(("a", [1.0, 2.0]),), x=(1, 2)):
    report = ExperimentReport(
        experiment_id=experiment_id, title="t", x_label="x", x_values=list(x)
    )
    for name, values in series:
        report.add_series(name, list(values))
    return report


class TestReportSet:
    def test_report_selection_by_substring(self):
        reports = ReportSet([_report("fig7-pm"), _report("fig7-dram")])
        assert reports.report("dram").experiment_id == "fig7-dram"
        assert reports.report().experiment_id == "fig7-pm"
        with pytest.raises(KeyError, match="fig7-pm"):
            reports.report("nope")

    def test_curve_names_available_series_on_miss(self):
        reports = ReportSet([_report()])
        with pytest.raises(KeyError, match="have: a"):
            reports.curve("missing")

    def test_value_exact_x(self):
        reports = ReportSet([_report(x=("cfg1", "cfg2"), series=(("a", [7.0, 9.0]),))])
        assert reports.value("a", "cfg2") == 9.0
        with pytest.raises(KeyError):
            reports.value("a", "cfg3")


class TestClaim:
    def _claim(self, check):
        return Claim(
            id="T/x", experiment="fig2", generation=1,
            claim="test", citation="none", check=check,
        )

    def test_id_must_be_namespaced(self):
        with pytest.raises(ValueError):
            Claim(id="bare", experiment="fig2", generation=1,
                  claim="c", citation="c", check=on_series("a", never_below(0)))

    def test_generation_validated(self):
        with pytest.raises(ValueError):
            Claim(id="T/x", experiment="fig2", generation=3,
                  claim="c", citation="c", check=on_series("a", never_below(0)))

    def test_evaluation_error_becomes_failure(self):
        verdict = self._claim(on_series("missing", never_below(0))).evaluate([_report()])
        assert not verdict.passed
        assert "evaluation error" in verdict.measured

    def test_on_pair_and_on_reports(self):
        report = _report(series=(("a", [1.0, 1.0]), ("b", [2.0, 2.0])))
        assert self._claim(on_pair("a", "b", ordering())).evaluate([report]).passed
        custom = on_reports(
            lambda rs: PredicateResult(len(rs.reports) == 1, "1 report", "1 report")
        )
        assert self._claim(custom).evaluate([report]).passed


class TestClaimRegistry:
    def test_registry_is_large_and_unique(self):
        claims = all_claims()
        assert len(claims) >= 90
        assert len({c.id for c in claims}) == len(claims)

    def test_every_claim_targets_a_known_experiment(self):
        for claim in all_claims():
            assert claim.experiment in REGISTRY, claim.id
            assert claim.citation
            assert claim.claim

    def test_both_generations_covered(self):
        generations = {c.generation for c in all_claims()}
        assert generations == {1, 2}

    def test_select_claims_filters(self):
        fig2 = select_claims(experiments=["fig2"])
        assert fig2 and all(c.experiment == "fig2" for c in fig2)
        g1 = select_claims(generations=(1,))
        assert g1 and all(c.generation == 1 for c in g1)
        assert select_claims(experiments=["nonexistent"]) == []


def _verdict(claim_id, passed):
    return ClaimVerdict(
        claim_id=claim_id, experiment="fig2", generation=1, claim="c",
        citation="c", passed=passed, measured="m", expected="e",
    )


class TestFidelityReport:
    def test_normal_ok_requires_all_pass(self):
        report = FidelityReport(verdicts=[_verdict("E1/a", True), _verdict("E1/b", False)])
        assert not report.ok()
        report.verdicts = [_verdict("E1/a", True)]
        assert report.ok()

    def test_run_errors_force_failure(self):
        report = FidelityReport(verdicts=[_verdict("E1/a", True)],
                                run_errors={"fig2:g1": "boom"})
        assert not report.ok()

    def test_mutation_ok_requires_exact_failure_match(self):
        report = FidelityReport(
            mutation="knob=v", expected_failures=["E1/a"],
            verdicts=[_verdict("E1/a", False), _verdict("E1/b", True)],
        )
        assert report.ok()
        # Collateral damage: an unexpected failure.
        report.verdicts = [_verdict("E1/a", False), _verdict("E1/b", False)]
        assert report.unexpected_failures() and not report.ok()
        # Toothless oracle: the expected failure passed.
        report.verdicts = [_verdict("E1/a", True), _verdict("E1/b", True)]
        assert report.unexpected_passes() and not report.ok()
        # Expected claim never evaluated.
        report.verdicts = [_verdict("E1/b", True)]
        assert report.missing_expected() == ["E1/a"] and not report.ok()

    def test_json_round_trip(self):
        report = FidelityReport(
            profile="full", generations=(1,), mutation="knob=v",
            expected_failures=["E1/a"], run_errors={"fig2:g1": "boom"},
            sweep_summary="s",
            verdicts=[_verdict("E1/a", False)],
        )
        parsed = FidelityReport.from_json(report.to_json())
        assert parsed == report
        payload = json.loads(report.to_json())
        assert payload["schema"] == "repro-fidelity-report/1"
        assert payload["counts"] == {"claims": 1, "passed": 0, "failed": 1}

    def test_render_annotates_mutation_rows(self):
        report = FidelityReport(
            mutation="knob=v", expected_failures=["E1/a", "E1/c"],
            verdicts=[_verdict("E1/a", False), _verdict("E1/c", True)],
        )
        text = report.render()
        assert "FAIL (expected FAIL)" in text
        assert "!! expected to FAIL" in text
        assert "never evaluated" not in text
        assert "MISMATCH" in text  # E1/c was expected to fail but passed


class TestMutations:
    def test_parse_known_and_unknown(self):
        mutation = parse_mutation("read_buffer=off")
        assert mutation.knob == "read_buffer"
        with pytest.raises(ConfigError, match="known:"):
            parse_mutation("bogus=1")

    def test_every_mutation_pattern_resolves(self):
        claim_ids = [claim.id for claim in all_claims()]
        for mutation in MUTATIONS.values():
            resolved = resolve_expected(mutation, claim_ids)
            assert resolved, mutation.spec
            assert len(set(resolved)) == len(resolved)

    def test_unmatched_pattern_is_an_error(self):
        mutation = parse_mutation("read_buffer=off")
        with pytest.raises(ConfigError, match="matches no registered claim"):
            resolve_expected(mutation, ["E3/other"])

    def test_overrides_reference_real_config_fields(self):
        from repro.dimm.config import OptaneDimmConfig
        import dataclasses

        fields = {f.name for f in dataclasses.fields(OptaneDimmConfig)}
        for mutation in MUTATIONS.values():
            for key in mutation.overrides.get("optane", {}):
                assert key in fields, f"{mutation.spec}: {key}"


class TestLiveValidation:
    """End-to-end runs on the cheapest experiments (~1 s of sweep)."""

    def test_cheap_experiments_pass_all_claims(self):
        fidelity = validate(experiments=["fig4", "sec33"], jobs=1, cache=None)
        assert fidelity.ok(), fidelity.render()
        assert not fidelity.run_errors
        assert len(fidelity.verdicts) >= 10

    def test_unknown_experiment_selects_nothing(self):
        fidelity = validate(experiments=["nope"], jobs=1, cache=None)
        assert fidelity.verdicts == []
        assert fidelity.ok()  # vacuously: nothing failed

    @pytest.mark.slow
    def test_transition_mutation_smoke(self):
        """The cheapest live mutation: sec33 under transition=off."""
        fidelity = validate(generations=(1,), mutation="transition=off",
                            jobs=4, cache=None)
        assert fidelity.mutation == "transition=off"
        assert fidelity.ok(), fidelity.render()
        assert {v.claim_id for v in fidelity.failed} == set(fidelity.expected_failures)

    @pytest.mark.campaign
    def test_full_fast_profile_validation(self):
        """Every claim, both generations — campaign-scale (~1 h serial)."""
        fidelity = validate(profile="fast", jobs=4, cache=None)
        assert fidelity.ok(), fidelity.render()
