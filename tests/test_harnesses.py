"""Tests for the experiment harnesses (scaled-down configurations)."""

import pytest

from repro.experiments.cceh_harness import build_table, run_config, timed_inserts
from repro.experiments.fig12 import run_mode
from repro.system.presets import g1_machine


class TestCcehHarness:
    def test_build_table_populates(self):
        machine = g1_machine()
        table = build_table(machine, prepopulate=5_000)
        assert len(table) == 5_000

    def test_single_worker_run(self):
        machine = g1_machine()
        table = build_table(machine, prepopulate=5_000)
        result = timed_inserts(machine, table, total_inserts=500, workers=1)
        assert result.cycles_per_insert > 0
        assert result.throughput_mops > 0

    def test_multi_worker_contention_reduces_per_worker_speed(self):
        machine = g1_machine()
        table = build_table(machine, prepopulate=5_000)
        single = timed_inserts(machine, table, total_inserts=400, workers=1, seed=1)

        machine2 = g1_machine()
        table2 = build_table(machine2, prepopulate=5_000)
        multi = timed_inserts(machine2, table2, total_inserts=400 * 8, workers=8, seed=1)
        # Aggregate throughput grows with workers...
        assert multi.throughput_mops > single.throughput_mops
        # ...but per-insert latency does not improve (shared ports).
        assert multi.cycles_per_insert >= single.cycles_per_insert * 0.9

    def test_helper_flag_runs(self):
        machine = g1_machine()
        table = build_table(machine, prepopulate=5_000)
        result = timed_inserts(machine, table, total_inserts=300, workers=2, helper=True)
        assert result.helper

    def test_instrumented_breakdown(self):
        result = run_config(
            1, workers=1, prepopulate=5_000, total_inserts=300, instrument=True
        )
        fractions = result.breakdown.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert "segment" in fractions

    def test_keys_actually_inserted(self):
        machine = g1_machine()
        table = build_table(machine, prepopulate=1_000)
        before = len(table)
        timed_inserts(machine, table, total_inserts=200, workers=3)
        assert len(table) == before + 200


class TestBtreeHarness:
    def test_run_mode_returns_metrics(self):
        latency, throughput = run_mode(
            1, "inplace", threads=1, prepopulate=3_000, total_inserts=200
        )
        assert latency > 0 and throughput > 0

    def test_redo_beats_inplace_at_small_scale_g1(self):
        inplace, _ = run_mode(1, "inplace", threads=1, prepopulate=3_000, total_inserts=200)
        redo, _ = run_mode(1, "redo", threads=1, prepopulate=3_000, total_inserts=200)
        assert redo < inplace

    def test_multithreaded_run(self):
        latency, throughput = run_mode(
            1, "inplace", threads=3, prepopulate=3_000, total_inserts=300
        )
        assert latency > 0 and throughput > 0
