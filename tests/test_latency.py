"""Tests for latency recording and time breakdowns."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.latency import LatencyRecorder, TimeBreakdown, _percentile


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single(self):
        assert _percentile([7.0], 0.99) == 7.0

    def test_median_odd(self):
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert _percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        samples = sorted(float(v) for v in range(10))
        assert _percentile(samples, 0.0) == 0.0
        assert _percentile(samples, 1.0) == 9.0


class TestLatencyRecorder:
    def test_mean_and_count(self):
        recorder = LatencyRecorder()
        recorder.extend([10, 20, 30])
        assert recorder.count == 3
        assert recorder.mean == 20.0

    def test_min_max(self):
        recorder = LatencyRecorder()
        recorder.extend([5, 1, 9])
        assert recorder.minimum == 1
        assert recorder.maximum == 9

    def test_stddev(self):
        recorder = LatencyRecorder()
        recorder.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert recorder.stddev == pytest.approx(2.0)

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_summary_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend(range(101))
        summary = recorder.summary()
        assert summary.p50 == pytest.approx(50.0)
        assert summary.p95 == pytest.approx(95.0)
        assert summary.p99 == pytest.approx(99.0)

    def test_thinning_keeps_exact_moments(self):
        recorder = LatencyRecorder(max_samples=64)
        recorder.extend(range(1000))
        assert recorder.count == 1000
        assert recorder.mean == pytest.approx(499.5)
        assert recorder.maximum == 999

    def test_thinning_bounds_memory(self):
        recorder = LatencyRecorder(max_samples=64)
        recorder.extend(range(10_000))
        assert len(recorder._samples) <= 65

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        recorder.reset()
        assert recorder.count == 0

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=300))
    def test_moments_match_naive(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        assert recorder.mean == pytest.approx(sum(samples) / len(samples), rel=1e-9, abs=1e-6)
        assert recorder.minimum == min(samples)
        assert recorder.maximum == max(samples)


class TestTimeBreakdown:
    def test_charge_accumulates(self):
        breakdown = TimeBreakdown()
        breakdown.charge("read", 10)
        breakdown.charge("read", 5)
        assert breakdown.cycles("read") == 15

    def test_unknown_bucket_zero(self):
        assert TimeBreakdown().cycles("nothing") == 0.0

    def test_fractions_sum_to_one(self):
        breakdown = TimeBreakdown()
        breakdown.charge("a", 30)
        breakdown.charge("b", 70)
        fractions = breakdown.fractions()
        assert fractions["a"] == pytest.approx(0.3)
        assert math.isclose(sum(fractions.values()), 1.0)

    def test_fractions_of_empty(self):
        assert TimeBreakdown().fractions() == {}

    def test_merged_folds_buckets(self):
        breakdown = TimeBreakdown()
        breakdown.charge("directory", 10)
        breakdown.charge("bucket", 20)
        breakdown.charge("segment", 70)
        merged = breakdown.merged({"directory": "misc", "bucket": "misc"})
        assert merged.cycles("misc") == 30
        assert merged.cycles("segment") == 70

    def test_reset(self):
        breakdown = TimeBreakdown()
        breakdown.charge("a", 1)
        breakdown.reset()
        assert breakdown.total == 0
