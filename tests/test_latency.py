"""Tests for latency recording and time breakdowns."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.latency import LatencyRecorder, TimeBreakdown, _percentile


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single(self):
        assert _percentile([7.0], 0.99) == 7.0

    def test_median_odd(self):
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert _percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        samples = sorted(float(v) for v in range(10))
        assert _percentile(samples, 0.0) == 0.0
        assert _percentile(samples, 1.0) == 9.0


class TestLatencyRecorder:
    def test_mean_and_count(self):
        recorder = LatencyRecorder()
        recorder.extend([10, 20, 30])
        assert recorder.count == 3
        assert recorder.mean == 20.0

    def test_min_max(self):
        recorder = LatencyRecorder()
        recorder.extend([5, 1, 9])
        assert recorder.minimum == 1
        assert recorder.maximum == 9

    def test_stddev(self):
        recorder = LatencyRecorder()
        recorder.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert recorder.stddev == pytest.approx(2.0)

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_summary_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend(range(101))
        summary = recorder.summary()
        assert summary.p50 == pytest.approx(50.0)
        assert summary.p95 == pytest.approx(95.0)
        assert summary.p99 == pytest.approx(99.0)

    def test_thinning_keeps_exact_moments(self):
        recorder = LatencyRecorder(max_samples=64)
        recorder.extend(range(1000))
        assert recorder.count == 1000
        assert recorder.mean == pytest.approx(499.5)
        assert recorder.maximum == 999

    def test_thinning_bounds_memory(self):
        recorder = LatencyRecorder(max_samples=64)
        recorder.extend(range(10_000))
        assert len(recorder._samples) <= 65

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        recorder.reset()
        assert recorder.count == 0

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=300))
    def test_moments_match_naive(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        assert recorder.mean == pytest.approx(sum(samples) / len(samples), rel=1e-9, abs=1e-6)
        assert recorder.minimum == min(samples)
        assert recorder.maximum == max(samples)

    def test_percentile_accessors(self):
        recorder = LatencyRecorder()
        recorder.extend(range(101))
        assert recorder.percentile(0.5) == pytest.approx(50.0)
        assert recorder.p50 == pytest.approx(50.0)
        assert recorder.p95 == pytest.approx(95.0)
        assert recorder.p99 == pytest.approx(99.0)

    def test_percentile_rejects_out_of_range(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)
        with pytest.raises(ValueError):
            recorder.percentile(-0.1)

    def test_percentile_of_empty_is_zero(self):
        assert LatencyRecorder().p95 == 0.0


class TestMerge:
    def test_merge_is_exact_for_moments(self):
        left, right, whole = LatencyRecorder(), LatencyRecorder(), LatencyRecorder()
        a, b = [3.0, 1.0, 9.0], [2.0, 8.0, 4.0, 6.0]
        left.extend(a)
        right.extend(b)
        whole.extend(a + b)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.stddev == pytest.approx(whole.stddev)
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum

    def test_merge_empty_is_identity(self):
        recorder = LatencyRecorder()
        recorder.extend([5.0, 7.0])
        recorder.merge(LatencyRecorder())
        assert recorder.count == 2
        assert recorder.minimum == 5.0 and recorder.maximum == 7.0

    def test_merge_into_empty(self):
        recorder = LatencyRecorder()
        shard = LatencyRecorder()
        shard.extend([5.0, 7.0])
        recorder.merge(shard)
        assert recorder.count == 2
        assert recorder.p50 == pytest.approx(6.0)

    def test_merge_respects_sample_cap(self):
        left = LatencyRecorder(max_samples=64)
        right = LatencyRecorder(max_samples=64)
        left.extend(range(500))
        right.extend(range(500, 1000))
        left.merge(right)
        assert left.count == 1000
        assert len(left._samples) <= 65
        assert left.maximum == 999

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    )
    def test_merge_matches_concatenation(self, a, b):
        merged, whole = LatencyRecorder(), LatencyRecorder()
        shard = LatencyRecorder()
        merged.extend(a)
        shard.extend(b)
        whole.extend(a + b)
        merged.merge(shard)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum


class TestTimeBreakdown:
    def test_charge_accumulates(self):
        breakdown = TimeBreakdown()
        breakdown.charge("read", 10)
        breakdown.charge("read", 5)
        assert breakdown.cycles("read") == 15

    def test_unknown_bucket_zero(self):
        assert TimeBreakdown().cycles("nothing") == 0.0

    def test_fractions_sum_to_one(self):
        breakdown = TimeBreakdown()
        breakdown.charge("a", 30)
        breakdown.charge("b", 70)
        fractions = breakdown.fractions()
        assert fractions["a"] == pytest.approx(0.3)
        assert math.isclose(sum(fractions.values()), 1.0)

    def test_fractions_of_empty(self):
        assert TimeBreakdown().fractions() == {}

    def test_merged_folds_buckets(self):
        breakdown = TimeBreakdown()
        breakdown.charge("directory", 10)
        breakdown.charge("bucket", 20)
        breakdown.charge("segment", 70)
        merged = breakdown.merged({"directory": "misc", "bucket": "misc"})
        assert merged.cycles("misc") == 30
        assert merged.cycles("segment") == 70

    def test_reset(self):
        breakdown = TimeBreakdown()
        breakdown.charge("a", 1)
        breakdown.reset()
        assert breakdown.total == 0
