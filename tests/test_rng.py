"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.common.rng import DEFAULT_SEED, DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]

    def test_default_seed_exists(self):
        assert DeterministicRng().seed == DEFAULT_SEED


class TestFork:
    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random() == b.random()

    def test_forks_with_different_streams_diverge(self):
        a = DeterministicRng(7).fork(1)
        b = DeterministicRng(7).fork(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]

    def test_fork_does_not_perturb_parent(self):
        parent = DeterministicRng(9)
        first = parent.randint(0, 10**9)
        parent2 = DeterministicRng(9)
        parent2.fork(5)  # forking must not consume parent entropy
        assert parent2.randint(0, 10**9) == first


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(5, 8) for _ in range(100)]
        assert all(5 <= v <= 8 for v in values)
        assert set(values) == {5, 6, 7, 8}

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(3)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_choice_index_bounds(self):
        rng = DeterministicRng(3)
        assert all(0 <= rng.choice_index(7) < 7 for _ in range(100))

    def test_choice_index_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(3).choice_index(0)

    def test_choice(self):
        rng = DeterministicRng(3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))

    def test_shuffled_preserves_input(self):
        rng = DeterministicRng(3)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffled(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_shuffle_in_place_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(50))
        rng.shuffle(items)
        assert sorted(items) == list(range(50))

    def test_sample_distinct(self):
        rng = DeterministicRng(3)
        drawn = rng.sample(range(100), 10)
        assert len(set(drawn)) == 10
