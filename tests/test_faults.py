"""Tests for the crash-point fault-injection campaigns (repro.faults)."""

import pytest

from repro.common.errors import ConfigError
from repro.faults import (
    CrashPointReached,
    EventTap,
    InjectionSchedule,
    LinkedListWorkload,
    make_workload,
    run_crashtest,
    run_crashtest_campaign,
    validator_for,
)
from repro.faults.campaign import STATUS_CODES, CampaignConfig, run_campaign
from repro.persist.crash import CrashSimulator


class TestInjectionSchedule:
    def test_exhaustive_covers_every_event(self):
        schedule = InjectionSchedule.parse("exhaustive", seed=1)
        assert schedule.points(5) == [0, 1, 2, 3, 4]

    def test_sample_is_deterministic_and_sorted(self):
        schedule = InjectionSchedule.parse("sample:4", seed=42)
        first = schedule.points(100)
        second = InjectionSchedule.parse("sample:4", seed=42).points(100)
        assert first == second
        assert first == sorted(first)
        assert len(first) == 4

    def test_different_seeds_pick_different_points(self):
        a = InjectionSchedule.parse("sample:5", seed=1).points(1000)
        b = InjectionSchedule.parse("sample:5", seed=2).points(1000)
        assert a != b

    def test_oversized_sample_degrades_to_exhaustive(self):
        schedule = InjectionSchedule.parse("sample:50", seed=1)
        assert schedule.points(7) == list(range(7))

    def test_parse_errors(self):
        for bad in ("bogus", "sample:", "sample:0", "sample:-3", "sample:x"):
            with pytest.raises(ConfigError):
                InjectionSchedule.parse(bad, seed=1)

    def test_describe_round_trips(self):
        for text in ("exhaustive", "sample:12"):
            schedule = InjectionSchedule.parse(text, seed=3)
            assert schedule.describe() == text


class TestEventTap:
    def test_workload_replay_is_deterministic(self):
        def stream():
            workload = make_workload("linkedlist", seed=11)
            tap = EventTap(workload.checker)
            workload.run(tap)
            return [event.describe() for event in tap.events]

        assert stream() == stream()
        assert len(stream()) > 0

    def test_stop_at_raises_and_truncates(self):
        workload = make_workload("linkedlist", seed=11)
        tap = EventTap(workload.checker, stop_at=3)
        with pytest.raises(CrashPointReached):
            workload.run(tap)
        assert tap.events[-1].index == 3


class TestCampaigns:
    def test_linkedlist_exhaustive_has_zero_violations(self):
        report = run_crashtest_campaign("linkedlist", points="exhaustive", seed=7)
        assert report.points_tested == report.total_events
        assert report.violations() == []
        assert report.beyond_adr() == []

    def test_btree_exhaustive_has_zero_violations(self):
        report = run_crashtest_campaign("btree", points="exhaustive", seed=7)
        assert report.points_tested == report.total_events
        assert report.violations() == []

    def test_cceh_sampled_campaign_is_clean(self):
        report = run_crashtest_campaign("cceh", points="sample:10", seed=7)
        assert report.points_tested == 10
        assert report.violations() == []

    def test_torn_xpline_losses_classified_beyond_adr(self):
        report = run_crashtest_campaign(
            "linkedlist", points="exhaustive", seed=7, fault_mode="torn-xpline"
        )
        # Tearing destroys data inside the ADR domain: that is media
        # corruption beyond what a missing barrier explains, so it must
        # never be reported as a flush-ordering violation.
        assert report.violations() == []
        assert len(report.beyond_adr()) > 0

    def test_ait_miss_pressure_produces_beyond_adr_losses(self):
        report = run_crashtest_campaign(
            "linkedlist", points="exhaustive", seed=7, fault_mode="ait-miss"
        )
        assert report.violations() == []
        assert len(report.beyond_adr()) > 0

    def test_eadr_campaign_is_fully_clean(self):
        report = run_crashtest_campaign(
            "linkedlist", points="exhaustive", seed=7, fault_mode="eadr"
        )
        assert report.violations() == []
        assert report.beyond_adr() == []

    def test_unknown_fault_mode_and_datastore_raise(self):
        with pytest.raises(ConfigError):
            run_crashtest_campaign("linkedlist", fault_mode="solar-flare")
        with pytest.raises(ConfigError):
            run_crashtest(1, "fast", datastore="heapfile")

    def test_experiment_report_shape(self):
        reports = run_crashtest(1, "fast", datastore="linkedlist", points="sample:5")
        assert len(reports) == 1
        report = reports[0]
        assert report.experiment_id == "crash-linkedlist"
        statuses = report.get("status")
        assert len(statuses) == 5
        assert all(value == STATUS_CODES["ok"] for value in statuses)
        assert any("0 violations" in note for note in report.notes)


class BrokenLinkedListWorkload(LinkedListWorkload):
    """Deliberately broken flush ordering: claim durability early.

    Each op stores the pad, immediately claims it durable, but only
    flushes the PREVIOUS op's pad — so every claim spends a full op
    window dirty in the CPU caches.  Any crash point in that window is
    a genuine lost-committed-update the campaign must pinpoint.
    """

    def _ops(self, core, tap):
        """Store + claim now, flush one op late (the bug under test)."""
        previous = None
        cursor = 0
        for _ in range(self.size):
            element = self.datastore.elements[cursor]
            core.store(element.pad_addr(1), 8)
            self.checker.commit(element.pad_addr(1), 8)
            if previous is not None:
                core.clwb(previous.pad_addr(1), 8)
                core.sfence()
            previous = element
            self.completed_ops += 1
            cursor = element.next_index
            tap.next_op()


def _make_broken(**kwargs):
    """Factory for the deliberately broken workload (picklable)."""
    kwargs.pop("ait_pressure", None)
    kwargs.pop("eadr", None)
    kwargs.pop("profile", None)
    return BrokenLinkedListWorkload(**kwargs)


class TestBrokenFixtureIsCaught:
    def test_broken_flush_ordering_is_pinpointed(self):
        config = CampaignConfig(
            name="broken-linkedlist",
            factory=_make_broken,
            validator=validator_for("linkedlist"),
            schedule=InjectionSchedule.parse("exhaustive", seed=7),
            seed=7,
        )
        report = run_campaign(config)
        violations = report.violations()
        assert violations, "campaign failed to catch a missing-flush bug"
        first = report.first_violation()
        # The very first claim happens at event 0 (the op's store); the
        # next event fires with the claim still cache-dirty, so the
        # earliest violating crash point is pinned to event index 1.
        assert first is not None
        assert first.point == 1
        assert "store" in first.event
        assert any("lost" in problem for problem in first.problems)
        assert "first violation" in report.summary()


class TestCrashSimulatorDisarm:
    def test_recovery_after_crash_does_not_retrip_the_tap(self):
        workload = make_workload("linkedlist", seed=7)
        tap = EventTap(workload.checker, stop_at=2)
        with pytest.raises(CrashPointReached):
            workload.run(tap)
        tap.stop_at = None
        report = CrashSimulator(workload.machine).power_failure(now=workload.core.now)
        status, problems = validator_for("linkedlist").validate(workload, report)
        assert status == "ok"
        assert not problems


class TestCrashtestCli:
    def test_cli_smoke_run(self, capsys):
        from repro.cli import main

        code = main([
            "crashtest", "linkedlist", "--points", "sample:5",
            "--seed", "7", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "crash-linkedlist" in out
        assert "no crash-consistency violations" in out

    def test_cli_rejects_bad_schedule(self, capsys):
        from repro.cli import main

        assert main(["crashtest", "linkedlist", "--points", "nope"]) == 2

    def test_cli_rejects_unknown_datastore(self, capsys):
        from repro.cli import main

        assert main(["crashtest", "rocksdb"]) == 2
