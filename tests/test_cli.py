"""Tests for the command-line runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_generation_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig2", "--generation", "3"])

    def test_profile_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2", "--profile", "full"])
        assert args.profile == "full"

    def test_all_expands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "all"])
        assert args.experiments == ["all"]


class TestRun:
    def test_run_fig4_smoke(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Write buffer hit ratio" in out
        assert "G1 Optane" in out

    def test_run_sec33_smoke(self, capsys):
        assert main(["run", "sec33", "--generation", "2"]) == 0
        out = capsys.readouterr().out
        assert "buffers_are_separate = True" in out

    def test_experiment_table_complete(self):
        # Every experiment id the README/DESIGN mention is runnable.
        for required in ("fig2", "fig3", "fig4", "sec33", "fig6", "fig7",
                         "fig8", "table1", "fig10", "fig12", "fig13", "fig14"):
            assert required in EXPERIMENTS
