"""Tests for the command-line runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs from touching the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CODE_VERSION", "cli-test-version")


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_generation_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig2", "--generation", "3"])

    def test_profile_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2", "--profile", "full"])
        assert args.profile == "full"

    def test_all_expands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "all"])
        assert args.experiments == ["all"]

    def test_runner_flags(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2", "-j", "8", "--force", "--cache-dir", "/tmp/x"])
        assert args.jobs == 8 and args.force and args.cache_dir == "/tmp/x"
        assert args.cache  # caching is the default

    def test_no_cache_flag(self):
        args = build_parser().parse_args(["run", "fig2", "--no-cache"])
        assert not args.cache

    def test_cache_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig2", "--cache", "--no-cache"])


class TestRun:
    def test_run_fig4_smoke(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Write buffer hit ratio" in out
        assert "G1 Optane" in out
        assert "cache: 0 hits / 1 miss" in out

    def test_run_sec33_smoke(self, capsys):
        assert main(["run", "sec33", "--generation", "2"]) == 0
        out = capsys.readouterr().out
        assert "buffers_are_separate = True" in out

    def test_second_run_served_from_cache(self, capsys):
        assert main(["run", "sec33"]) == 0
        first = capsys.readouterr().out
        assert "cache: 0 hits / 1 miss" in first
        assert main(["run", "sec33"]) == 0
        second = capsys.readouterr().out
        assert "[sec33 served from cache]" in second
        assert "cache: 1 hit / 0 misses" in second
        # The rendered report is identical either way.
        table = lambda out: [l for l in out.splitlines() if l.startswith(" ") or "==" in l]
        assert table(first) == table(second)

    def test_force_recomputes(self, capsys):
        assert main(["run", "sec33"]) == 0
        capsys.readouterr()
        assert main(["run", "sec33", "--force"]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits / 1 miss" in out
        assert "served from cache" not in out

    def test_no_cache_bypasses(self, capsys):
        assert main(["run", "sec33", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["run", "sec33", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "served from cache" not in out

    def test_trace_fig4_exports_artifacts(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        timeline = tmp_path / "occupancy.csv"
        assert main(["trace", "fig4", "--interval", "1000",
                     "--out", str(out), "--timeline", str(timeline)]) == 0
        printed = capsys.readouterr().out
        assert "[chrome trace:" in printed and "[trace:" in printed
        from repro.trace import validate_chrome_trace

        stats = validate_chrome_trace(out)
        assert stats["events"] > 0 and len(stats["categories"]) >= 4
        assert timeline.read_text().startswith("ts,device")

    def test_trace_timeline_json(self, tmp_path, capsys):
        import json

        timeline = tmp_path / "occupancy.json"
        assert main(["trace", "fig4", "--interval", "1000",
                     "--out", str(tmp_path / "t.json"),
                     "--timeline", str(timeline)]) == 0
        data = json.loads(timeline.read_text())
        assert data["columns"][:2] == ["ts", "device"] and data["rows"]

    def test_trace_zero_interval_disables_sampling(self, tmp_path, capsys):
        assert main(["trace", "fig4", "--interval", "0",
                     "--out", str(tmp_path / "t.json")]) == 0
        assert "samples @" not in capsys.readouterr().out

    def test_trace_category_filter(self, tmp_path):
        import json

        out = tmp_path / "t.json"
        assert main(["trace", "fig4", "--categories", "imc,persist",
                     "--out", str(out)]) == 0
        cats = {e.get("cat") for e in json.loads(out.read_text())["traceEvents"]
                if e["ph"] != "M"}
        assert cats <= {"imc", "persist"}

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_bad_category_fails_cleanly(self, capsys):
        assert main(["trace", "fig4", "--categories", "bogus"]) == 2
        assert "trace failed" in capsys.readouterr().err

    def test_experiment_table_complete(self):
        # Every experiment id the README/DESIGN mention is runnable.
        for required in ("fig2", "fig3", "fig4", "sec33", "fig6", "fig7",
                         "fig8", "table1", "fig10", "fig12", "fig13", "fig14"):
            assert required in EXPERIMENTS
