#!/usr/bin/env python3
"""Quickstart: build a simulated Optane testbed and watch the buffers work.

This walks the three core concepts of the library:

1. build a machine (the paper's G1 testbed) and get a core;
2. issue the x86 persistence primitives (load / store / nt_store /
   clwb / sfence) against simulated persistent memory;
3. read the ipmwatch-equivalent telemetry to see read/write
   amplification — the paper's primary metrics — emerge from the
   on-DIMM buffering.

Run:  python examples/quickstart.py
"""

from repro.common import CACHELINE_SIZE, XPLINE_SIZE, fmt_size
from repro.persist import PmHeap
from repro.system import g1_machine


def main() -> None:
    machine = g1_machine()
    core = machine.new_core()
    heap = PmHeap(machine)

    print("=== 1. A single persistent write ===")
    addr = heap.pm.alloc_xpline()
    core.store(addr, size=8)
    cycles = core.persist(addr)  # clwb + sfence
    print(f"store+persist of 8 bytes took {cycles:.0f} cycles")
    counters = machine.pm_counters()
    print(f"iMC write bytes: {counters.imc_write_bytes} (one 64B cacheline)")
    print(f"media write bytes so far: {counters.media_write_bytes} "
          "(0 — absorbed by the write-combining buffer)\n")

    print("=== 2. Write amplification from partial writes ===")
    # Write one cacheline in each of 256 XPLines (64 KB region):
    # the 12 KB write buffer overflows and partial XPLines are written
    # back via read-modify-write, 256 media bytes per 64 program bytes.
    region = heap.pm.alloc(256 * XPLINE_SIZE, align=XPLINE_SIZE)
    with machine.measure("pm") as delta:
        for pass_index in range(4):
            for xpline in range(256):
                core.nt_store(region + xpline * XPLINE_SIZE, CACHELINE_SIZE)
    print(f"program wrote {delta.imc_write_bytes} bytes "
          f"({fmt_size(delta.imc_write_bytes)})")
    print(f"media wrote   {delta.media_write_bytes} bytes "
          f"→ write amplification {delta.write_amplification:.2f} "
          "(theoretical max 4.0)\n")

    print("=== 3. Read amplification and the read buffer ===")
    # Read one cacheline per XPLine over 32 KB (misses the 16 KB read
    # buffer between passes): every 64B read costs a 256B media read.
    read_region = heap.pm.alloc(128 * XPLINE_SIZE, align=XPLINE_SIZE)
    with machine.measure("pm") as delta:
        for pass_index in range(4):
            for xpline in range(128):
                line = read_region + xpline * XPLINE_SIZE
                core.load(line, 8)
                core.clflushopt(line)  # keep the CPU caches out of the picture
    print(f"read amplification: {delta.read_amplification:.2f} "
          "(would be 4.0 with CPU prefetchers disabled; the stride-4 "
          "pattern trains the streamer, whose prefetches keep part of "
          "each XPLine reusable in the read buffer)")

    print("\n=== 4. The asynchronous persist (read-after-persist) ===")
    target = heap.pm.alloc_xpline()
    core.store(target, 8)
    core.clwb(target)
    core.mfence()  # returns once the flush is *accepted*, not complete
    rap_latency = core.load(target, 8)
    far_addr = heap.pm.alloc_xpline()
    core.load(far_addr, 8)
    normal = core.load(far_addr, 8)
    print(f"load right after persist: {rap_latency:.0f} cycles "
          f"(vs {normal:.0f} for a cached line) — the paper's Figure 7 effect")


if __name__ == "__main__":
    main()
