#!/usr/bin/env python3
"""Explore read-after-persist latency (the paper's Algorithm 1).

Sweeps the RAP distance for every (flush, fence) combination on both
Optane generations and prints the latency curves of Figure 7 — showing
the ~10x G1 penalty, the sfence fast window at distance <= 1, and the
G2 clwb fix.

Run:  python examples/rap_explorer.py
"""

from repro.cache.prefetch import PrefetcherConfig
from repro.core.microbench.rap import run_rap_iterations
from repro.persist.persistency import FenceKind, FlushKind
from repro.system.presets import machine_for

DISTANCES = (0, 1, 2, 4, 8, 16, 32)
COMBOS = (
    (FlushKind.CLWB, FenceKind.MFENCE),
    (FlushKind.CLWB, FenceKind.SFENCE),
    (FlushKind.NT_STORE, FenceKind.MFENCE),
)


def main() -> None:
    for generation in (1, 2):
        print(f"=== G{generation} Optane, local PM "
              f"(cycles per Algorithm-1 iteration) ===")
        header = "distance:".rjust(22) + "".join(f"{d:>7}" for d in DISTANCES)
        print(header)
        for flush, fence in COMBOS:
            row = []
            for distance in DISTANCES:
                machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
                row.append(run_rap_iterations(
                    machine, "pm", flush, fence, distance, passes=20))
            label = f"{flush.value}+{fence.value}"
            print(label.rjust(22) + "".join(f"{v:>7.0f}" for v in row))
        print()
    print("Takeaways: G1 clwb/nt-store at distance 0 cost ~10x the settled")
    print("latency; clwb+sfence is cheap at distance <= 1 because loads")
    print("reorder past sfence; on G2 only nt-store still suffers.")


if __name__ == "__main__":
    main()
