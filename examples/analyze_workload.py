#!/usr/bin/env python3
"""Profile your own persistent data structure the paper's way.

The paper's core proposition: *decouple reads and writes* when
analyzing a persistent workload — loads are synchronous and expensive,
persists are asynchronous and flat, ordering is what you actually pay
for.  `InstrumentedCore` + `read_write_summary` give you that
decomposition for any code written against the Core API.

This example profiles a toy persistent FIFO queue (something not in
the paper) on both PM and DRAM and prints where its cycles go.

Run:  python examples/analyze_workload.py
"""

from repro.common.constants import CACHELINE_SIZE
from repro.core import InstrumentedCore, read_write_summary
from repro.persist import PmHeap
from repro.system import g1_machine


class PersistentQueue:
    """A minimal persistent ring of cacheline-sized records."""

    def __init__(self, allocator, capacity=4096):
        self.capacity = capacity
        self.base = allocator.alloc(capacity * CACHELINE_SIZE, align=CACHELINE_SIZE)
        self.head_addr = allocator.alloc(CACHELINE_SIZE)
        self.tail_addr = allocator.alloc(CACHELINE_SIZE)
        self.head = 0
        self.tail = 0

    def _slot(self, index):
        return self.base + (index % self.capacity) * CACHELINE_SIZE

    def enqueue(self, core):
        core.store(self._slot(self.tail), CACHELINE_SIZE)  # record
        core.clwb(self._slot(self.tail))
        core.sfence()
        self.tail += 1
        core.store(self.tail_addr, 8)  # tail pointer, persisted second
        core.clwb(self.tail_addr)
        core.sfence()

    def dequeue(self, core):
        core.load(self.head_addr, 8)
        core.load(self._slot(self.head), 8)  # read the record
        self.head += 1
        core.store(self.head_addr, 8)
        core.clwb(self.head_addr)
        core.sfence()


def profile(region: str, operations: int = 4000) -> dict:
    machine = g1_machine()
    heap = PmHeap(machine)
    allocator = heap.pm if region == "pm" else heap.dram
    queue = PersistentQueue(allocator)
    core = InstrumentedCore(machine.new_core())
    start = core.now
    for index in range(operations):
        queue.enqueue(core)
        if index % 2 == 1:
            queue.dequeue(core)
    summary = read_write_summary(core.breakdown)
    summary["cycles/op"] = (core.now - start) / operations
    return summary


def main() -> None:
    print("Persistent FIFO queue, enqueue-heavy mix, G1 testbed\n")
    print(f"{'memory':>6}  {'cyc/op':>7}  {'read':>6}  {'write':>6}  {'order':>6}")
    for region in ("pm", "dram"):
        result = profile(region)
        print(f"{region.upper():>6}  {result['cycles/op']:>7.0f}  "
              f"{result['read']*100:>5.1f}%  {result['write']*100:>5.1f}%  "
              f"{result['order']*100:>5.1f}%")
    print("\nReading the decomposition the paper's way: this queue's PM")
    print("cycles go to *ordering* (two persistence barriers per enqueue),")
    print("not to writes — so the fix is fewer/looser barriers (e.g. one")
    print("barrier covering record+tail), not write coalescing.")


if __name__ == "__main__":
    main()
