#!/usr/bin/env python3
"""Run standard YCSB workloads against CCEH on simulated Optane vs DRAM.

Exercises the full public stack — workload generator, data store,
machine, telemetry — the way a storage-systems user would: pick a
workload mix, run it, and read both performance and device-level
amplification.

Run:  python examples/ycsb_on_pm.py
"""

from repro.datastores.cceh import CcehHashTable
from repro.persist import PmHeap
from repro.system import g1_machine
from repro.workloads import OpType, STANDARD_WORKLOADS, YcsbConfig, YcsbWorkload

RECORDS = 60_000
OPERATIONS = 15_000


def run_workload(name: str, region: str) -> dict:
    machine = g1_machine()
    heap = PmHeap(machine)
    allocator = heap.pm if region == "pm" else heap.dram
    table = CcehHashTable(allocator)
    workload = YcsbWorkload(
        YcsbConfig(record_count=RECORDS, operation_count=OPERATIONS,
                   spec=STANDARD_WORKLOADS[name])
    )
    for op in workload.load_phase():
        table.insert(op.key, op.key)  # untimed load phase
    core = machine.new_core()
    start = core.now
    with machine.measure(region) as delta:
        for op in workload.run_phase():
            if op.op is OpType.READ:
                table.contains(op.key, core)
            elif op.op in (OpType.UPDATE, OpType.INSERT):
                table.insert(op.key, op.key, core)
            elif op.op is OpType.READ_MODIFY_WRITE:
                if table.contains(op.key, core):
                    table.insert(op.key, op.key + 1, core)
            else:  # SCAN is not natural for a hash table; YCSB-E skipped
                continue
    elapsed = core.now - start
    mops = OPERATIONS / (elapsed / (machine.config.frequency_ghz * 1e9)) / 1e6
    return {
        "cycles_per_op": elapsed / OPERATIONS,
        "mops": mops,
        "ra": delta.read_amplification,
        "wa": delta.write_amplification,
    }


def main() -> None:
    print(f"CCEH, {RECORDS} records, {OPERATIONS} ops per workload\n")
    print(f"{'workload':>8}  {'memory':>6}  {'cyc/op':>8}  {'Mops/s':>7}  "
          f"{'RA':>5}  {'WA':>5}")
    for name in ("A", "B", "C", "F"):
        for region in ("pm", "dram"):
            result = run_workload(name, region)
            print(f"{name:>8}  {region.upper():>6}  {result['cycles_per_op']:>8.0f}  "
                  f"{result['mops']:>7.2f}  {result['ra']:>5.2f}  {result['wa']:>5.2f}")
    print("\nNote the device-level asymmetry: on PM, read-heavy mixes pay")
    print("256-byte media reads per random lookup (RA ~ 4) while update")
    print("traffic is softened by the write-combining buffer (WA < 4).")


if __name__ == "__main__":
    main()
