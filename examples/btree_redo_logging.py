#!/usr/bin/env python3
"""Case study 2 (paper §4.2): out-of-place redo logging in a B+-tree.

In-place key insertion in a FAST & FAIR-style node shifts sorted
entries one slot right, flushing and re-reading the *same cacheline*
over and over — the read-after-persist worst case on G1 Optane.
Redirecting the shifts through a redo log doubles the PM writes yet
wins decisively on G1, and is a wash on G2 (whose clwb retains
cachelines).

Run:  python examples/btree_redo_logging.py
"""

from repro.datastores.btree import FastFairTree
from repro.persist import PmHeap
from repro.system import g1_machine, g2_machine
from repro.workloads import insert_only_stream

PREPOPULATE = 150_000
MEASURE = 5_000


def measure(generation: int, mode: str) -> float:
    machine = (g1_machine if generation == 1 else g2_machine)()
    tree = FastFairTree(PmHeap(machine), mode=mode)
    for key in insert_only_stream(PREPOPULATE, seed=3):
        tree.insert(key * 4, key)  # untimed pre-population, gaps for later
    core = machine.new_core()
    keys = insert_only_stream(MEASURE, seed=11)
    start = core.now
    for key in keys:
        tree.insert(key * 4 + 1, key, core)
    tree.check_invariants()
    return (core.now - start) / len(keys)


def main() -> None:
    print(f"B+-tree: {PREPOPULATE} keys pre-loaded, {MEASURE} timed inserts\n")
    for generation in (1, 2):
        inplace = measure(generation, "inplace")
        redo = measure(generation, "redo")
        latency_gain = 100 * (1 - redo / inplace)
        tput_gain = 100 * (inplace / redo - 1)
        print(f"G{generation}: in-place {inplace:7.0f} cycles/insert | "
              f"redo {redo:7.0f} | latency {latency_gain:+.1f}%, "
              f"throughput {tput_gain:+.1f}%")
    print("\nPaper reference: G1 up to -38.8% latency / +60.8% throughput;")
    print("G2 no benefit (clwb keeps the line cached, so shifting never")
    print("stalls on its own flushes).")


if __name__ == "__main__":
    main()
