#!/usr/bin/env python3
"""Case study 1 (paper §4.1): helper-thread prefetching for CCEH.

Builds a CCEH hash table on simulated Optane, measures insertion with
and without a speculative helper thread, and repeats the comparison on
DRAM — reproducing the paper's headline: the helper wins big on PM
(random media reads dominate and the worker's fences leave bandwidth
idle) and *loses* on DRAM (loads are short; the helper only steals
shared-core resources).

Run:  python examples/cceh_helper_prefetch.py
"""

from repro.core.helper import HelperConfig, HelperThread
from repro.datastores.cceh import CcehHashTable
from repro.persist import PmHeap
from repro.system import g1_machine
from repro.workloads import insert_only_stream

PREPOPULATE = 150_000
MEASURE = 10_000


def build_table(machine, region: str) -> CcehHashTable:
    heap = PmHeap(machine)
    allocator = heap.pm if region == "pm" else heap.dram
    table = CcehHashTable(allocator)
    for key in insert_only_stream(PREPOPULATE, seed=5):
        table.insert(key, key)  # untimed pre-population
    return table


def measure(region: str, use_helper: bool) -> float:
    machine = g1_machine()
    table = build_table(machine, region)
    worker = machine.new_core("worker")
    helper = HelperThread(machine, table.prefetch_trace, HelperConfig(depth=8))
    keys = [key + (1 << 40) for key in insert_only_stream(MEASURE, seed=9)]
    start = worker.now
    for index, key in enumerate(keys):
        if use_helper:
            helper.sync_before(worker, keys, index)
        worker.tick(100)  # benchmark driver overhead
        table.insert(key, key, worker)
    return (worker.now - start) / len(keys)


def main() -> None:
    print(f"CCEH: {PREPOPULATE} keys pre-loaded, {MEASURE} timed inserts\n")
    for region in ("pm", "dram"):
        baseline = measure(region, use_helper=False)
        helped = measure(region, use_helper=True)
        change = 100 * (1 - helped / baseline)
        verdict = "improvement" if change > 0 else "DEGRADATION"
        print(f"{region.upper():5s}: baseline {baseline:7.0f} cycles/insert | "
              f"with helper {helped:7.0f} | {abs(change):.0f}% {verdict}")
    print("\nThe asymmetry is the paper's point: random 3D-XPoint reads are")
    print("the bottleneck on PM, and the helper's 100%-accurate prefetches")
    print("hide them; DRAM has no such latency to hide.")


if __name__ == "__main__":
    main()
