#!/usr/bin/env python3
"""Case study 3 (paper §4.3): SIMD access redirection for XPLine blocks.

Random 256-byte blocks with sequential access *inside* each block are
a worst case for CPU prefetchers: every cross-block guess is wrong and
drags a whole XPLine off the 3D-XPoint media.  Copying each block to a
DRAM staging buffer with streaming loads (the paper's Algorithm 2)
disables that waste — costing latency at 1 thread, winning once many
threads contend for the media's read bandwidth.

Run:  python examples/xpline_redirection.py
"""

from repro.common.units import mib
from repro.core.microbench.prefetch_probe import run_prefetch_probe
from repro.experiments.fig14 import run_point
from repro.system import g1_machine

WSS = mib(64)


def main() -> None:
    print("--- Read ratios (media bytes per demanded byte) at 64MB WSS ---")
    machine = g1_machine()
    baseline = run_prefetch_probe(machine, WSS, visits=4000)
    machine = g1_machine()
    optimized = run_prefetch_probe(machine, WSS, visits=4000, redirect=True)
    print(f"baseline : PM ratio {baseline.pm_read_ratio:.2f}, "
          f"iMC ratio {baseline.imc_read_ratio:.2f}")
    print(f"optimized: PM ratio {optimized.pm_read_ratio:.2f} "
          "(misprefetching eliminated)\n")

    print("--- Latency / throughput vs thread count ---")
    print(f"{'threads':>7}  {'base cyc':>9}  {'opt cyc':>8}  "
          f"{'base GB/s':>9}  {'opt GB/s':>8}")
    crossover = None
    for threads in (1, 4, 8, 12, 16):
        machine = g1_machine()
        base_lat, base_tput = run_point(machine, threads, False, WSS, visits_per_thread=400)
        machine = g1_machine()
        opt_lat, opt_tput = run_point(machine, threads, True, WSS, visits_per_thread=400)
        print(f"{threads:>7}  {base_lat:>9.0f}  {opt_lat:>8.0f}  "
              f"{base_tput:>9.2f}  {opt_tput:>8.2f}")
        if crossover is None and opt_tput > base_tput:
            crossover = threads
    if crossover:
        print(f"\nRedirection starts winning at ~{crossover} threads "
              "(the paper observed ~12 on real hardware).")


if __name__ == "__main__":
    main()
