#!/usr/bin/env python3
"""Characterize an 'unknown' PM device with the paper's methodology.

The paper never opens the DIMM — it infers the on-DIMM design from
black-box telemetry signatures.  ``repro.core.inference`` packages
those probes; here we point them at both generations (and at a
deliberately ablated device) and watch them recover the internals.

Run:  python examples/characterize_device.py
"""

from repro.cache.prefetch import PrefetcherConfig
from repro.common.units import kib
from repro.core.inference import characterize, quiet_factory
from repro.dimm.config import OptaneDimmConfig
from repro.system.presets import g1_machine


def main() -> None:
    for generation in (1, 2):
        print(f"=== Probing the G{generation} device (black box) ===")
        print(characterize(quiet_factory(generation)).describe())
        print()

    print("=== Probing a mystery device (ablated internals) ===")
    mystery = OptaneDimmConfig.g1(
        read_buffer_bytes=kib(32),
        write_buffer_bytes=kib(8),
        write_buffer_eviction="fifo",
        periodic_writeback=False,
    )

    def factory():
        return g1_machine(prefetchers=PrefetcherConfig.none(), optane=mystery)

    print(characterize(factory).describe())
    print()
    print("Ground truth was: 32 KB read buffer, 8 KB write buffer,")
    print("FIFO eviction, no periodic write-back — all recovered from")
    print("telemetry alone, exactly how the paper reverse-engineered")
    print("the real hardware.")


if __name__ == "__main__":
    main()
