#!/usr/bin/env python3
"""Watch the WPQ occupancy sawtooth during a read-after-persist run.

Figure 7's RAP anomaly is a *time-domain* phenomenon: each iteration
persists one cacheline (store + clwb + fence) and immediately loads a
recently persisted line.  The flush parks in the write pending queue,
the fence returns at WPQ *acceptance*, and the load then stalls until
the persist completes on the DIMM.  A time-resolved view of WPQ
occupancy shows the queue filling on every flush and draining before
the next — a sawtooth the cumulative counters can never show.

This example runs Algorithm 1 inside an ambient trace session
(:mod:`repro.trace`), prints the sampled occupancy as an ASCII strip
chart, and exports a Chrome trace you can open at
https://ui.perfetto.dev to see the same story as flush/drain/rap-stall
spans per operation.

Run:  python examples/trace_rap.py
"""

import tempfile
from pathlib import Path

from repro.core.microbench.rap import run_rap_iterations
from repro.persist.persistency import FenceKind, FlushKind
from repro.system.presets import machine_for
from repro.trace import session, write_chrome_trace, write_timeseries_csv


def sparkline(values: list[float]) -> str:
    """Render values as a unicode strip chart (one glyph per sample)."""
    glyphs = " .:-=+*#%@"
    top = max(values) or 1.0
    scale = len(glyphs) - 1
    return "".join(glyphs[round(value / top * scale)] for value in values)


def main(out_dir: str | None = None) -> None:
    with session(interval=500) as sess:
        machine = machine_for(1)
        cycles = run_rap_iterations(
            machine, "pm", FlushKind.CLWB, FenceKind.MFENCE,
            distance=0, wss=4096, passes=30,
        )

    print("=== RAP under the tracer (G1, clwb+mfence, distance 0) ===")
    print(f"avg cycles/iteration: {cycles:.0f}\n")

    series = sess.timeseries()
    occupancy = [value for _, value in series.column("wpq_occupancy", device="pm0")]
    window = occupancy[:72]
    print(f"WPQ occupancy, first {len(window)} samples @ 500 cycles "
          f"(max {max(occupancy):.0f} slots):")
    print(f"  [{sparkline(window)}]")
    print("Each pulse is one iteration: the clwb fills a WPQ slot, the")
    print("persist drains it, and the dependent load waits that drain out.\n")

    stalls = [e for e in sess.tracer.events if e.name == "rap-stall"]
    if stalls:
        mean_stall = sum(e.dur for e in stalls) / len(stalls)
        print(f"{len(stalls)} rap-stall spans, mean {mean_stall:.0f} cycles each")

    target = Path(out_dir) if out_dir is not None else Path(tempfile.mkdtemp(prefix="trace_rap_"))
    trace_path = write_chrome_trace(target / "rap-trace.json", sess.tracer)
    csv_path = write_timeseries_csv(target / "rap-occupancy.csv", series)
    print(f"chrome trace: {trace_path} (load at https://ui.perfetto.dev)")
    print(f"time series:  {csv_path} ({len(series)} rows)")


if __name__ == "__main__":
    main()
