#!/usr/bin/env python3
"""Drive a paper sweep through the parallel runner and its result cache.

Demonstrates the `repro.runner` public API — the same substrate behind
``python -m repro run all --jobs 8``:

1. build one `RunRequest` per (experiment, generation) configuration;
2. hand the batch to `run_sweep` with a process pool and the on-disk
   `ResultCache` (content-addressed: any source change invalidates);
3. read the metrics: per-experiment wall time, worker utilization and
   cache hit/miss counters.

Run it twice to watch the second invocation come back from cache:

    python examples/parallel_sweep.py
    python examples/parallel_sweep.py      # all hits, near-instant

Environment: REPRO_JOBS (default 4), REPRO_CACHE_DIR (default
~/.cache/repro).
"""

import os

from repro.runner import ResultCache, RunRequest, run_sweep


def main() -> None:
    jobs = int(os.environ.get("REPRO_JOBS", "4"))
    requests = [
        RunRequest.make("fig4"),                    # generation-independent
        RunRequest.make("sec33", generation=1),
        RunRequest.make("sec33", generation=2),
        RunRequest.make("fig2", generation=1),      # sharded: one worker per curve
    ]
    cache = ResultCache()

    def show(result):
        status = "cache" if result.cached else f"{result.wall_time:.1f}s"
        for report in result.reports:
            print(report.render())
            print()
        print(f"[{result.request.experiment} g{result.request.generation}: {status}]\n")

    _, metrics = run_sweep(requests, jobs=jobs, cache=cache, progress=show)
    print(f"sweep finished: {metrics.summary()}")
    print(f"cache root: {cache.root} ({len(cache)} entries)")


if __name__ == "__main__":
    main()
