"""Measurement machinery: ipmwatch-equivalent counters and latency stats."""

from repro.stats.counters import TelemetryCounters, TelemetryDelta, TelemetryRegistry
from repro.stats.latency import LatencyRecorder, LatencySummary, TimeBreakdown

__all__ = [
    "TelemetryCounters",
    "TelemetryDelta",
    "TelemetryRegistry",
    "LatencyRecorder",
    "LatencySummary",
    "TimeBreakdown",
]
