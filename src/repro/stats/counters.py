"""Telemetry counters — the simulator's equivalent of VTune ``ipmwatch``.

The paper's two primary metrics (Section 2.4) are defined over two
observation points:

* the **iMC boundary** — bytes the integrated memory controller
  requested from / issued to a DIMM (64-byte granularity), and
* the **media boundary** — bytes the DIMM actually moved to / from the
  3D-XPoint media (256-byte XPLine granularity).

``write amplification  = media_write_bytes / imc_write_bytes``
``read amplification   = media_read_bytes  / imc_read_bytes``

For the prefetching experiments (Figures 6 and 13) the paper also uses
*read ratios* against the program's demanded bytes, so we track demand
bytes separately from iMC traffic (the difference is CPU prefetches
and cache-hit absorption).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TelemetryCounters:
    """Byte and event counters for one device (DIMM or DRAM channel).

    All counters are cumulative; use :meth:`snapshot` + arithmetic on
    :class:`TelemetryDelta` to measure a region of interest, exactly
    like sampling ``ipmwatch`` before/after a benchmark loop.
    """

    #: Bytes of read requests the iMC issued to this device.
    imc_read_bytes: int = 0
    #: Bytes of write requests the iMC issued to this device.
    imc_write_bytes: int = 0
    #: Bytes physically read from the storage media.
    media_read_bytes: int = 0
    #: Bytes physically written to the storage media.
    media_write_bytes: int = 0
    #: Bytes the *program* demanded via loads that reached this device's
    #: address range (cache hits excluded — this is demand that missed).
    demand_read_bytes: int = 0
    #: Bytes the program demanded via stores destined for this device.
    demand_write_bytes: int = 0

    # Event counters used by the buffer-behaviour experiments.
    read_buffer_hits: int = 0
    read_buffer_misses: int = 0
    write_buffer_hits: int = 0
    write_buffer_misses: int = 0
    write_buffer_evictions: int = 0
    periodic_writebacks: int = 0
    ait_hits: int = 0
    ait_misses: int = 0
    rmw_avoided: int = 0  # read-modify-writes skipped via buffer transition
    underfill_reads: int = 0  # media reads needed to fill partial evictions

    def snapshot(self) -> "TelemetryCounters":
        """Return a copy of the current counter values."""
        return TelemetryCounters(**vars(self))

    def delta(self, earlier: "TelemetryCounters") -> "TelemetryDelta":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return TelemetryDelta(
            **{name: getattr(self, name) - getattr(earlier, name) for name in vars(self)}
        )

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in vars(self):
            setattr(self, name, 0)

    @contextmanager
    def measure(self) -> "Iterator[TelemetryDelta]":
        """Measure a region of interest: snapshot, run, diff.

        Yields a :class:`TelemetryDelta` whose fields are zero inside
        the ``with`` body and are filled in when it exits — the
        snapshot/delta idiom as one construct::

            with machine.registry.get("pm0").measure() as delta:
                run_benchmark(core)
            print(delta.write_amplification)

        Only meaningful on *live* counters (ones a device is updating);
        for an aggregate over several DIMMs use
        :meth:`TelemetryRegistry.measure`.
        """
        before = self.snapshot()
        delta = TelemetryDelta()
        try:
            yield delta
        finally:
            result = self.delta(before)
            for name in vars(result):
                setattr(delta, name, getattr(result, name))


@dataclass
class TelemetryDelta:
    """Difference between two :class:`TelemetryCounters` snapshots.

    Provides the paper's derived metrics.  Ratios over a zero
    denominator return 0.0 rather than raising: a benchmark region that
    issued no reads simply has no read amplification to speak of.
    """

    imc_read_bytes: int = 0
    imc_write_bytes: int = 0
    media_read_bytes: int = 0
    media_write_bytes: int = 0
    demand_read_bytes: int = 0
    demand_write_bytes: int = 0
    read_buffer_hits: int = 0
    read_buffer_misses: int = 0
    write_buffer_hits: int = 0
    write_buffer_misses: int = 0
    write_buffer_evictions: int = 0
    periodic_writebacks: int = 0
    ait_hits: int = 0
    ait_misses: int = 0
    rmw_avoided: int = 0
    underfill_reads: int = 0

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator else 0.0

    @property
    def read_amplification(self) -> float:
        """media reads / iMC reads (paper Section 2.4)."""
        return self._ratio(self.media_read_bytes, self.imc_read_bytes)

    @property
    def write_amplification(self) -> float:
        """media writes / iMC writes (paper Section 2.4)."""
        return self._ratio(self.media_write_bytes, self.imc_write_bytes)

    @property
    def pm_read_ratio(self) -> float:
        """media reads / program-demanded reads (Figures 6 and 13)."""
        return self._ratio(self.media_read_bytes, self.demand_read_bytes)

    @property
    def imc_read_ratio(self) -> float:
        """iMC reads / program-demanded reads (Figures 6 and 13)."""
        return self._ratio(self.imc_read_bytes, self.demand_read_bytes)

    @property
    def write_buffer_hit_ratio(self) -> float:
        """Fraction of iMC writes absorbed by the write buffer (Figure 4)."""
        total = self.write_buffer_hits + self.write_buffer_misses
        return self._ratio(self.write_buffer_hits, total)

    @property
    def read_buffer_hit_ratio(self) -> float:
        """Fraction of DIMM reads served from the on-DIMM read buffer."""
        total = self.read_buffer_hits + self.read_buffer_misses
        return self._ratio(self.read_buffer_hits, total)


class TelemetryRegistry:
    """Named collection of counters for every device in a machine.

    The machine builds one registry; experiments fetch counters by
    device name (e.g. ``"pm0"``, ``"dram"``) and also get an aggregate
    view across a group of interleaved DIMMs.
    """

    def __init__(self) -> None:
        self._counters: dict[str, TelemetryCounters] = {}

    def register(self, name: str) -> TelemetryCounters:
        """Create (or return the existing) counters for ``name``."""
        if name not in self._counters:
            self._counters[name] = TelemetryCounters()
        return self._counters[name]

    def get(self, name: str) -> TelemetryCounters:
        """Return the counters for ``name`` (KeyError if unknown)."""
        return self._counters[name]

    def names(self) -> list[str]:
        """All registered device names, sorted."""
        return sorted(self._counters)

    def aggregate(self, prefix: str = "") -> TelemetryCounters:
        """Sum counters over all devices whose name starts with ``prefix``."""
        total = TelemetryCounters()
        for name, counters in self._counters.items():
            if name.startswith(prefix):
                for attr in vars(total):
                    setattr(total, attr, getattr(total, attr) + getattr(counters, attr))
        return total

    def reset(self) -> None:
        """Zero every registered counter."""
        for counters in self._counters.values():
            counters.reset()

    @contextmanager
    def measure(self, prefix: str = "") -> "Iterator[TelemetryDelta]":
        """Measure counters accumulated across a ``with`` body.

        Like :meth:`TelemetryCounters.measure`, but over the aggregate
        of every device whose name starts with ``prefix`` — the form
        experiments want, since :meth:`aggregate` returns a detached
        sum that a later re-read would not update.
        """
        before = self.aggregate(prefix)
        delta = TelemetryDelta()
        try:
            yield delta
        finally:
            result = self.aggregate(prefix).delta(before)
            for name in vars(result):
                setattr(delta, name, getattr(result, name))
