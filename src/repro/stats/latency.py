"""Latency accounting: per-operation samples, summaries and histograms.

The paper reports latency as *CPU cycles per element / per operation*
(Figures 7, 8, 10, 12, 14).  :class:`LatencyRecorder` collects samples
cheaply (sum + count + bounded reservoir) and produces the summary
statistics the experiment harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latency samples (in cycles)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.1f} p50={self.p50:.1f} "
            f"p95={self.p95:.1f} p99={self.p99:.1f} max={self.maximum:.1f}"
        )


def _percentile(sorted_samples: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_samples[lo]
    weight = rank - lo
    return sorted_samples[lo] * (1.0 - weight) + sorted_samples[hi] * weight


class LatencyRecorder:
    """Accumulates latency samples with O(1) record cost.

    All samples are retained up to ``max_samples``; beyond that a
    simple stride-based thinning keeps memory bounded while the running
    sum/min/max stay exact.  For the experiment sizes in this repo the
    reservoir virtually never thins.
    """

    def __init__(self, max_samples: int = 1_000_000) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, cycles: float) -> None:
        """Add one sample (cycles spent by one operation)."""
        self.count += 1
        self.total += cycles
        self.total_sq += cycles * cycles
        if cycles < self.minimum:
            self.minimum = cycles
        if cycles > self.maximum:
            self.maximum = cycles
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(cycles)
            if len(self._samples) > self._max_samples:
                # Thin by 2: keep every other retained sample.
                self._samples = self._samples[::2]
                self._stride *= 2

    def extend(self, samples: Iterable[float]) -> None:
        """Record many samples."""
        for sample in samples:
            self.record(sample)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder into this one (shard-histogram merge).

        Running moments (count/mean/stddev/min/max) stay exact; the
        percentile reservoirs are concatenated and re-thinned to the
        cap, so merged percentiles carry the same approximation
        quality as a single recorder that thinned.  Lets a parallel
        sweep keep one recorder per shard and combine them afterwards.
        """
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self._samples.extend(other._samples)
        self._stride = max(self._stride, other._stride)
        while len(self._samples) > self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def percentile(self, fraction: float) -> float:
        """One percentile (``fraction`` in [0, 1]) over retained samples."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        return _percentile(sorted(self._samples), fraction)

    @property
    def p50(self) -> float:
        """Median latency (approximate once thinning kicked in)."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all recorded samples."""
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (exact, from running moments)."""
        if self.count == 0:
            return 0.0
        variance = self.total_sq / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    def summary(self) -> LatencySummary:
        """Produce a :class:`LatencySummary` (percentiles approximate
        once thinning kicked in, exact otherwise)."""
        ordered = sorted(self._samples)
        return LatencySummary(
            count=self.count,
            mean=self.mean,
            minimum=self.minimum if self.count else 0.0,
            maximum=self.maximum if self.count else 0.0,
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            stddev=self.stddev,
        )

    def reset(self) -> None:
        """Drop all samples and zero the running moments."""
        self.__init__(self._max_samples)


class TimeBreakdown:
    """Attribution of total time across named phases (paper Table 1).

    The CCEH case study reports what fraction of key-insertion time is
    spent on segment-metadata reads, persists, and everything else.
    Components charge cycles to named buckets; :meth:`fractions`
    normalizes.
    """

    def __init__(self) -> None:
        self._cycles: dict[str, float] = {}

    def charge(self, bucket: str, cycles: float) -> None:
        """Add ``cycles`` to ``bucket``."""
        self._cycles[bucket] = self._cycles.get(bucket, 0.0) + cycles

    @property
    def total(self) -> float:
        """Sum over all buckets."""
        return sum(self._cycles.values())

    def cycles(self, bucket: str) -> float:
        """Cycles charged to one bucket (0 if never charged)."""
        return self._cycles.get(bucket, 0.0)

    def fractions(self) -> dict[str, float]:
        """Bucket shares of the total, each in [0, 1]."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self._cycles}
        return {name: value / total for name, value in self._cycles.items()}

    def merged(self, mapping: dict[str, str]) -> "TimeBreakdown":
        """Return a new breakdown with buckets renamed/merged via ``mapping``.

        Buckets absent from ``mapping`` keep their names.  Used to fold
        fine-grained instrumentation buckets into the paper's three
        Table-1 columns.
        """
        out = TimeBreakdown()
        for name, value in self._cycles.items():
            out.charge(mapping.get(name, name), value)
        return out

    def reset(self) -> None:
        """Zero all buckets."""
        self._cycles.clear()
