"""Address Indirection Table (AIT) cache model.

Optane DIMMs translate DIMM physical addresses to media addresses
through an on-DIMM Address Indirection Table (for wear leveling).  The
hot part of the AIT is cached on-DIMM; prior work (LENS [30]) and the
paper's Section 3.6 observe a sharp read-latency increase once the
working set exceeds roughly 16 MB, attributed to AIT-cache overflow.

We model the AIT cache as an LRU set of 4 KB translation granules with
a fixed coverage.  A miss charges an extra media access to fetch the
translation entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import kib, mib
from repro.stats.counters import TelemetryCounters


@dataclass(frozen=True)
class AitConfig:
    """Geometry and cost of the AIT cache."""

    #: Bytes of PM address space whose translations fit in the cache.
    coverage_bytes: int = mib(16)
    #: Translation granule: one cached entry covers this many bytes.
    granule_bytes: int = kib(4)
    #: Extra cycles charged to a media access on an AIT-cache miss.
    miss_penalty: float = 200.0

    def validate(self) -> None:
        """Raise ConfigError on inconsistent AIT geometry."""
        if self.coverage_bytes <= 0 or self.granule_bytes <= 0:
            raise ConfigError("AIT coverage and granule must be positive")
        if self.coverage_bytes % self.granule_bytes:
            raise ConfigError("AIT coverage must be a multiple of the granule")
        if self.miss_penalty < 0:
            raise ConfigError("AIT miss penalty cannot be negative")

    @property
    def entries(self) -> int:
        """Number of cached translation entries."""
        return self.coverage_bytes // self.granule_bytes


class AitCache:
    """LRU cache of address-translation granules."""

    def __init__(self, config: AitConfig, counters: TelemetryCounters) -> None:
        config.validate()
        self.config = config
        self._counters = counters
        #: Tracer handle + track label, installed by an ambient trace
        #: session (None ⇒ tracing off, see repro.trace.session).
        self.tracer = None
        self.trace_track: str | None = None
        self._entries: OrderedDict[int, None] = OrderedDict()

    def lookup_penalty(self, addr: int, now: float = 0.0) -> float:
        """Charge for translating ``addr``; 0 on a hit, miss penalty otherwise.

        The granule is installed (and LRU-refreshed) as a side effect,
        mirroring a real translation fetch.  ``now`` only timestamps
        the trace instant a miss emits; it never affects the charge.
        """
        granule = addr // self.config.granule_bytes
        if granule in self._entries:
            self._entries.move_to_end(granule)
            self._counters.ait_hits += 1
            return 0.0
        self._counters.ait_misses += 1
        if self.tracer is not None and self.tracer.wants("ait"):
            self.tracer.instant("ait", "miss", now, self.trace_track or "ait",
                                granule=granule)
        self._entries[granule] = None
        if len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)
        return self.config.miss_penalty

    def covers(self, addr: int) -> bool:
        """True if ``addr``'s translation granule is currently cached.

        A pure peek: unlike :meth:`lookup_penalty` it neither installs
        nor LRU-refreshes the granule.  Fault injection uses it to cost
        an ADR drain without perturbing the cache state it is costing.
        """
        return addr // self.config.granule_bytes in self._entries

    @property
    def resident_granules(self) -> int:
        """How many translation granules are currently cached."""
        return len(self._entries)

    def reset(self) -> None:
        """Drop all cached translations (simulated power cycle)."""
        self._entries.clear()
