"""3D-XPoint media model.

The physical media behind an Optane DIMM:

* every access moves a whole 256-byte XPLine;
* reads are long-latency but enjoy some parallelism (several
  concurrent media reads per DIMM);
* writes are longer still and have very limited concurrency — the
  paper (Section 2.2) notes write bandwidth is ~1/3 of read bandwidth
  and does not scale beyond a small thread count.

Contention is expressed through :class:`~repro.sim.ports.ServicePorts`;
the AIT cache charges translation misses on every media access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import XPLINE_SIZE
from repro.common.errors import ConfigError
from repro.media.ait import AitCache, AitConfig
from repro.sim.clock import Cycles
from repro.sim.ports import ServiceGrant, ServicePorts
from repro.stats.counters import TelemetryCounters


@dataclass(frozen=True)
class XPointConfig:
    """Latency/concurrency parameters of the 3D-XPoint media."""

    #: Service time of one XPLine read from the media, in cycles.
    read_latency: float = 600.0
    #: Service time of one XPLine write to the media, in cycles.
    #: One write port at this service time caps the per-DIMM media
    #: write drain — the plateau of Figure 8 and the write-scaling
    #: ceiling of Section 2.2 both fall out of this number.
    write_latency: float = 180.0
    #: Service-time multiplier for read-modify-write of a partially
    #: dirty XPLine (the underfill read happens inside the media
    #: pipeline, not on the external read ports).
    rmw_factor: float = 1.5
    #: Concurrent media reads a DIMM can sustain.
    read_ports: int = 4
    #: Concurrent media writes a DIMM can sustain (the scarce resource).
    write_ports: int = 1
    #: AIT cache parameters.
    ait: AitConfig = field(default_factory=AitConfig)

    def validate(self) -> None:
        """Raise ConfigError on non-positive latencies or ports."""
        if self.read_latency <= 0 or self.write_latency <= 0:
            raise ConfigError("media latencies must be positive")
        if self.read_ports <= 0 or self.write_ports <= 0:
            raise ConfigError("media port counts must be positive")
        self.ait.validate()


class XPointMedia:
    """One DIMM's physical media with its AIT cache and telemetry."""

    def __init__(self, config: XPointConfig, counters: TelemetryCounters, name: str = "xpoint") -> None:
        config.validate()
        self.config = config
        self.name = name
        self.counters = counters
        self.ait = AitCache(config.ait, counters)
        self.read_ports = ServicePorts(config.read_ports, f"{name}.read")
        self.write_ports = ServicePorts(config.write_ports, f"{name}.write")

    def read_xpline(self, now: Cycles, addr: int) -> ServiceGrant:
        """Read the XPLine containing ``addr``; returns the service grant.

        The caller (the DIMM front-end) decides whether the requester
        blocks until ``grant.finish`` (demand read) or not (prefetch).
        """
        penalty = self.ait.lookup_penalty(addr, now=now)
        grant = self.read_ports.acquire(now, self.config.read_latency + penalty)
        self.counters.media_read_bytes += XPLINE_SIZE
        return grant

    def write_xpline(self, now: Cycles, addr: int, rmw: bool = False) -> ServiceGrant:
        """Write the XPLine containing ``addr``; returns the service grant.

        Writes are asynchronous from the CPU's point of view: the DIMM
        front-end uses ``grant.start`` for back-pressure and
        ``grant.finish`` only for persist-completion accounting.

        ``rmw=True`` models the write-back of a partially dirty XPLine:
        the media internally reads the line to fill the untouched bytes
        (longer service, and the read bytes show up in telemetry), but
        no external read port is consumed.
        """
        penalty = self.ait.lookup_penalty(addr, now=now)
        service = self.config.write_latency
        if rmw:
            service *= self.config.rmw_factor
            self.counters.media_read_bytes += XPLINE_SIZE
        grant = self.write_ports.acquire(now, service + penalty)
        self.counters.media_write_bytes += XPLINE_SIZE
        return grant

    def reset(self) -> None:
        """Clear port state and the AIT cache (counters are left alone)."""
        self.read_ports.reset()
        self.write_ports.reset()
        self.ait.reset()
