"""Physical media models: 3D-XPoint, DRAM, and the AIT cache."""

from repro.media.ait import AitCache, AitConfig
from repro.media.dram import DramConfig, DramMedia
from repro.media.xpoint import XPointConfig, XPointMedia

__all__ = [
    "AitCache",
    "AitConfig",
    "DramConfig",
    "DramMedia",
    "XPointConfig",
    "XPointMedia",
]
