"""DRAM media model — the baseline device the paper compares against.

DRAM differs from the Optane media in every way that matters here:
64-byte access granularity (no amplification), symmetric and much
lower latency, and ample concurrency.  Persists to DRAM (used by the
paper's Figure 7 DRAM curves) complete quickly because there is no
slow media behind the write pending queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE
from repro.common.errors import ConfigError
from repro.sim.clock import Cycles
from repro.sim.ports import ServiceGrant, ServicePorts
from repro.stats.counters import TelemetryCounters


@dataclass(frozen=True)
class DramConfig:
    """Latency/concurrency parameters of a DRAM channel."""

    #: Service time of one cacheline read, in cycles.
    read_latency: float = 150.0
    #: Service time of one cacheline write, in cycles.
    write_latency: float = 150.0
    #: Concurrent reads the channel sustains (banks × channels, folded).
    read_ports: int = 10
    #: Concurrent writes the channel sustains.
    write_ports: int = 10

    def validate(self) -> None:
        """Raise ConfigError on non-positive latencies or ports."""
        if self.read_latency <= 0 or self.write_latency <= 0:
            raise ConfigError("DRAM latencies must be positive")
        if self.read_ports <= 0 or self.write_ports <= 0:
            raise ConfigError("DRAM port counts must be positive")


class DramMedia:
    """One DRAM channel with telemetry.

    Media and iMC byte counts coincide for DRAM (64 B granularity both
    sides), so amplification metrics evaluate to 1 by construction.
    """

    def __init__(self, config: DramConfig, counters: TelemetryCounters, name: str = "dram") -> None:
        config.validate()
        self.config = config
        self.name = name
        self.counters = counters
        self.read_ports = ServicePorts(config.read_ports, f"{name}.read")
        self.write_ports = ServicePorts(config.write_ports, f"{name}.write")

    def read_line(self, now: Cycles, addr: int) -> ServiceGrant:
        """Read the cacheline containing ``addr``."""
        grant = self.read_ports.acquire(now, self.config.read_latency)
        self.counters.media_read_bytes += CACHELINE_SIZE
        return grant

    def write_line(self, now: Cycles, addr: int) -> ServiceGrant:
        """Write the cacheline containing ``addr``."""
        grant = self.write_ports.acquire(now, self.config.write_latency)
        self.counters.media_write_bytes += CACHELINE_SIZE
        return grant

    def reset(self) -> None:
        """Clear port state (counters are left alone)."""
        self.read_ports.reset()
        self.write_ports.reset()
