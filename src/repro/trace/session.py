"""Trace sessions: attach a tracer + sampler to every machine built.

Experiments construct their machines internally (often one per sweep
point), so tracing cannot be wired by handing a tracer to a specific
``Machine``.  Instead — like ETW or ``perf`` — a *session* is ambient:

    from repro.trace import session

    with session(interval=1000) as sess:
        reports = fig07.run(1, "fast")        # unmodified experiment
    sess.chrome_trace()                        # every machine captured

While a session is active, :class:`~repro.system.machine.Machine`
construction calls :func:`attach_if_active`, which installs the
session's tracer onto the machine and its components (iMC channels,
DIMMs, AIT caches) and starts a per-machine
:class:`~repro.trace.sampler.TelemetrySampler` when ``interval`` is
set.  Each machine becomes one Chrome-trace *process*
(``machine0``, ``machine1``, ...), keeping per-track timestamps
monotonic even when an experiment builds a fresh machine per point.

With no active session every handle stays ``None`` and the
instrumentation reduces to one attribute test per operation.
Sessions are per-process: worker processes of a parallel sweep build
their machines far from the parent's session, so ``repro trace`` runs
experiments serially in-process.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sim.clock import Cycles
from repro.trace.events import Tracer
from repro.trace.sampler import TelemetrySampler, TimeSeries

#: The ambient session, if any (set by the :func:`session` context
#: manager, read by Machine construction via :func:`attach_if_active`).
_ACTIVE: "TraceSession | None" = None


class MachineTrace:
    """The per-machine trace handle (``machine.trace``).

    Bundles the session tracer, the machine's sampler (None when the
    session samples nothing) and the machine's track label.  The
    machine's hot paths call :meth:`on_op` once per memory operation.
    """

    __slots__ = ("tracer", "sampler", "label")

    def __init__(self, tracer: Tracer, sampler: TelemetrySampler | None,
                 label: str) -> None:
        """Bundle ``tracer``/``sampler`` under the machine's ``label``."""
        self.tracer = tracer
        self.sampler = sampler
        self.label = label

    def on_op(self, now: Cycles) -> None:
        """Advance sampling to ``now`` (called per memory operation)."""
        if self.sampler is not None:
            self.sampler.maybe_sample(now)


class TraceSession:
    """One observation window: a tracer plus a sampler per machine."""

    def __init__(self, interval: Cycles | None = None, categories=None,
                 max_events: int = 200_000, max_rows: int = 200_000) -> None:
        """Create a session; ``interval=None`` disables sampling."""
        self.tracer = Tracer(categories, max_events=max_events)
        self.interval = interval
        self.max_rows = max_rows
        self.samplers: list[TelemetrySampler] = []
        self._machines = 0

    def attach(self, machine) -> None:
        """Instrument ``machine`` and its components with this session.

        Safe to call manually on a machine built outside the session
        window; machines built while the session is active are
        attached automatically.
        """
        label = f"machine{self._machines}"
        self._machines += 1
        sampler = None
        if self.interval is not None:
            sampler = TelemetrySampler(machine, self.interval,
                                       tracer=self.tracer, label=label,
                                       max_rows=self.max_rows)
            self.samplers.append(sampler)
        machine.trace = MachineTrace(self.tracer, sampler, label)
        for core in machine.cores:
            core.trace_track = f"{label}.{core.name}"
        for name, channel in machine.channels().items():
            track = f"{label}.{name}"
            channel.tracer = self.tracer
            channel.trace_track = f"{label}.imc.{name}"
            device = channel.device
            device.tracer = self.tracer
            device.trace_track = track
            media = getattr(device, "media", None)
            ait = getattr(media, "ait", None)
            if ait is not None:
                ait.tracer = self.tracer
                ait.trace_track = f"{track}.ait"

    @property
    def machines(self) -> int:
        """How many machines this session has instrumented."""
        return self._machines

    def timeseries(self) -> TimeSeries:
        """All samplers' rows merged into one :class:`TimeSeries`.

        Rows keep per-sampler order; the ``device`` column alone does
        not disambiguate machines, so multi-machine consumers should
        iterate :attr:`samplers` (each carries its machine label).
        """
        merged = TimeSeries()
        for sampler in self.samplers:
            merged.extend(sampler.series)
        return merged

    def dropped_rows(self) -> int:
        """Total sampler rows discarded over the row cap."""
        return sum(sampler.dropped for sampler in self.samplers)

    def chrome_trace(self, cycles_per_us: float = 1000.0) -> dict:
        """The session's events as a Chrome trace dict (see emit.py)."""
        from repro.trace.emit import to_chrome_trace

        return to_chrome_trace(self.tracer, cycles_per_us)

    def summary(self) -> str:
        """One-line human summary (the CLI prints this after a trace)."""
        counts = self.tracer.by_category()
        cats = " ".join(f"{name}={counts[name]}" for name in sorted(counts))
        parts = [
            f"{len(self.tracer.events)} events over {self._machines} "
            f"machine{'s' if self._machines != 1 else ''}",
            cats or "no events",
        ]
        if self.interval is not None:
            rows = sum(len(s.series) for s in self.samplers)
            parts.append(f"{rows} samples @ {self.interval:g} cycles")
        if self.tracer.dropped:
            parts.append(f"{self.tracer.dropped} events dropped (cap)")
        if self.dropped_rows():
            parts.append(f"{self.dropped_rows()} samples dropped (cap)")
        return ", ".join(parts)


def active_session() -> TraceSession | None:
    """The ambient session, or None when tracing is off."""
    return _ACTIVE


def attach_if_active(machine) -> None:
    """Attach ``machine`` to the ambient session, if one is active.

    Called by ``Machine.__init__``; a no-op (one global read) when no
    session is open.
    """
    if _ACTIVE is not None:
        _ACTIVE.attach(machine)


@contextmanager
def session(interval: Cycles | None = None, categories=None,
            max_events: int = 200_000, max_rows: int = 200_000):
    """Open an ambient :class:`TraceSession` for the ``with`` body.

    Every machine constructed inside the body is instrumented; the
    previous ambient session (if any) is restored on exit, so sessions
    nest without leaking.
    """
    global _ACTIVE
    previous = _ACTIVE
    current = TraceSession(interval=interval, categories=categories,
                           max_events=max_events, max_rows=max_rows)
    _ACTIVE = current
    try:
        yield current
    finally:
        _ACTIVE = previous
