"""Exporters: Chrome ``trace_event`` JSON and time-series CSV/JSON.

The Chrome trace format (loadable in Perfetto or ``chrome://tracing``)
is a JSON object with a ``traceEvents`` list; each event carries a
phase (``X`` complete span, ``i`` instant, ``C`` counter, ``M``
metadata), a microsecond timestamp, and integer ``pid``/``tid``
identifiers.  :func:`to_chrome_trace` maps the simulator's tracks onto
that model:

* the part of a track name before the first ``.`` becomes the
  *process* (one per machine: ``machine0``, ``machine1``, ...),
* the remainder becomes the *thread* (one swim lane per component:
  ``pm0``, ``imc.pm0``, ``cpu0``),
* ``thread_name``/``process_name`` metadata events carry the real
  names, so Perfetto shows ``pm0`` instead of ``tid 3``,
* simulated cycles are converted to microseconds via
  ``cycles_per_us`` (default 1000, i.e. a nominal 1 GHz clock — the
  *relative* timing is what matters when reading a trace).

Events are sorted by timestamp before export, so within every track
``ts`` is monotonically non-decreasing — a property
:func:`validate_chrome_trace` checks (and CI asserts on the exported
artifact).
"""

from __future__ import annotations

import json
import pathlib

from repro.trace.events import TraceEvent, Tracer
from repro.trace.sampler import TimeSeries


def _split_track(track: str) -> tuple[str, str]:
    """Split a track name into (process, thread)."""
    if "." in track:
        process, thread = track.split(".", 1)
        return process, thread
    return "trace", track


def to_chrome_trace(source, cycles_per_us: float = 1000.0) -> dict:
    """Render a :class:`Tracer` (or an event list) as a Chrome trace dict.

    The result is ready for ``json.dump``; load the file in
    https://ui.perfetto.dev or ``chrome://tracing``.  ``cycles_per_us``
    sets the simulated-cycles-per-microsecond conversion.
    """
    events: list[TraceEvent] = source.events if isinstance(source, Tracer) else list(source)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    trace_events: list[dict] = []

    for event in sorted(events, key=lambda e: e.ts):
        process, thread = _split_track(event.track)
        if process not in pids:
            pids[process] = len(pids) + 1
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pids[process],
                "tid": 0, "ts": 0, "args": {"name": process},
            })
        key = (process, thread)
        if key not in tids:
            tids[key] = len(tids) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pids[process],
                "tid": tids[key], "ts": 0, "args": {"name": thread},
            })
        record = {
            "ph": event.phase,
            "cat": event.category,
            "name": event.name,
            "ts": event.ts / cycles_per_us,
            "pid": pids[process],
            "tid": tids[key],
        }
        if event.phase == "X":
            record["dur"] = event.dur / cycles_per_us
        if event.phase == "i":
            record["s"] = "t"  # instant scope: thread
        if event.args:
            record["args"] = event.args
        trace_events.append(record)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, source, cycles_per_us: float = 1000.0) -> pathlib.Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(to_chrome_trace(source, cycles_per_us), handle)
    return path


def validate_chrome_trace(source) -> dict:
    """Validate a Chrome trace file/dict; returns summary statistics.

    Checks the ``trace_event`` schema essentials: a ``traceEvents``
    list whose entries carry ``ph``/``name``/``ts``/``pid``/``tid``,
    span events carry ``dur``, and — per (pid, tid) track — ``ts`` is
    monotonically non-decreasing.  Raises ``ValueError`` on the first
    violation.  Returns ``{"events", "categories", "tracks"}`` so
    callers (the CI smoke step) can assert coverage, e.g. at least
    four event categories present.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source) as handle:
            data = json.load(handle)
    else:
        data = source
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError("not a Chrome trace: missing traceEvents list")
    events = data["traceEvents"]
    if not events:
        raise ValueError("trace contains no events")
    last_ts: dict[tuple, float] = {}
    categories: set[str] = set()
    for index, event in enumerate(events):
        for required in ("ph", "name", "ts", "pid", "tid"):
            if required not in event:
                raise ValueError(f"event #{index} missing {required!r}: {event}")
        if event["ph"] == "M":
            continue
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"span event #{index} missing 'dur': {event}")
        categories.add(event.get("cat", ""))
        track = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(track, float("-inf")):
            raise ValueError(
                f"event #{index} goes backwards on track {track}: "
                f"{event['ts']} < {last_ts[track]}"
            )
        last_ts[track] = event["ts"]
    return {
        "events": len(events),
        "categories": sorted(categories - {""}),
        "tracks": len(last_ts),
    }


def write_timeseries_csv(path, series: TimeSeries) -> pathlib.Path:
    """Write a :class:`TimeSeries` as CSV to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series.to_csv() + "\n")
    return path


def write_timeseries_json(path, series: TimeSeries) -> pathlib.Path:
    """Write a :class:`TimeSeries` as JSON to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(series.to_obj(), handle)
    return path
