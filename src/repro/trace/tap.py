"""Bridge between fault-injection event taps and the tracer.

The crash-campaign rig (:mod:`repro.faults.hooks`) already intercepts
every persistence-relevant operation a workload issues — stores,
flushes, nt-stores, fences — in program order, via
:class:`~repro.faults.hooks.EventTap` behind a
:class:`~repro.faults.hooks.HookedCore`.  Rather than duplicating that
plumbing, :class:`TracingTap` *is* an ``EventTap`` that additionally
mirrors each event into a tracer as a ``persist``-category instant, so
a traced workload shows its program-order persistence stream alongside
the hardware-level spans the machine emits.

Use :func:`trace_core` to wrap a core for tracing the way crash
campaigns wrap one for injection::

    from repro.trace import Tracer, trace_core

    tracer = Tracer()
    traced = trace_core(machine.new_core(), tracer)
    datastore.insert(key, value, core=traced)   # runs unmodified
"""

from __future__ import annotations

from repro.faults.hooks import EventTap, HookedCore
from repro.trace.events import Tracer


class TracingTap(EventTap):
    """An :class:`EventTap` that mirrors its event stream into a tracer.

    The full tap contract is preserved — global event indexing, the
    durability ledger, crash-point arming via ``stop_at`` — so a
    traced run can double as a campaign dry run.  Each recorded event
    becomes a ``persist`` instant carrying the event index, address and
    workload-op index as args.

    ``HookedCore`` forwards every operation to the real core *before*
    reporting it, so by the time :meth:`_record` runs the bound core's
    clock already reads the operation's completion time — that is the
    timestamp each instant gets.  :meth:`bind` is called by
    :func:`trace_core`; an unbound tap stamps events at cycle 0.
    """

    def __init__(self, tracer: Tracer, track: str = "workload",
                 checker=None, stop_at: int | None = None) -> None:
        """Create a tap mirroring into ``tracer`` on ``track``."""
        super().__init__(checker=checker, stop_at=stop_at)
        self.tracer = tracer
        self.track = track
        self._core = None

    def bind(self, core) -> None:
        """Read timestamps from ``core``'s local clock from now on."""
        self._core = core

    def _record(self, kind: str, addr: int, size: int) -> None:
        if self.tracer.wants("persist"):
            now = self._core.now if self._core is not None else 0.0
            self.tracer.instant(
                "persist", kind, now, self.track,
                index=self.count, addr=addr, op=self.op_index,
            )
        super()._record(kind, addr, size)


def trace_core(core, tracer: Tracer, track: str | None = None) -> HookedCore:
    """Wrap ``core`` so its persistence events land in ``tracer``.

    ``track`` defaults to the core's name.  The returned object
    satisfies the same ``CoreLike`` protocol the datastores use.
    """
    tap = TracingTap(tracer, track=track or getattr(core, "name", "workload"))
    tap.bind(core)
    return HookedCore(core, tap)
