"""Hierarchical trace events — the simulator's ETW/ftrace equivalent.

A :class:`Tracer` collects timestamped events emitted by the machine's
components while a simulation runs.  Components hold a *nullable*
tracer handle (``self.tracer`` is ``None`` unless a trace session is
attached), so the disabled path costs one attribute test per
instrumentation point and allocates nothing.

Three event shapes, mirroring the Chrome ``trace_event`` phases the
exporter (:mod:`repro.trace.emit`) targets:

* **span** — an interval with a start and an end (a media read, a
  persist draining from WPQ acceptance to completion, a RAP stall);
* **instant** — a point event (a buffer hit/miss, an AIT-cache miss,
  a fence retiring);
* **counter** — a sampled value over time (WPQ occupancy, buffer
  fill), rendered by Perfetto as a step chart.

Every event carries a *category* from :data:`CATEGORIES` (which layer
of the hierarchy emitted it) and a *track* (which component instance —
exported as the Chrome thread, so each DIMM/core gets its own swim
lane).  Timestamps are simulated cycles, the repo-wide currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.sim.clock import Cycles

#: The event categories, one per layer of the memory hierarchy:
#: CPU caches/prefetchers, on-DIMM read buffer, on-DIMM write-combining
#: buffer, iMC queues (WPQ), 3D-XPoint media, AIT translation cache,
#: and the persistence primitives (flushes, fences, RAP stalls).
CATEGORIES = ("cache", "rbuf", "wbuf", "imc", "media", "ait", "persist")


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``phase`` is the Chrome ``trace_event`` phase: ``"X"`` (complete
    span with ``dur``), ``"i"`` (instant) or ``"C"`` (counter, value
    in ``args``).  ``ts``/``dur`` are simulated cycles; ``track``
    names the emitting component instance.
    """

    phase: str
    category: str
    name: str
    ts: Cycles
    track: str
    dur: Cycles = 0.0
    args: dict | None = None


class Tracer:
    """Low-overhead event sink with category filtering and a hard cap.

    ``categories=None`` records everything; otherwise only the listed
    categories are kept (emissions for filtered-out categories cost
    the ``wants()`` set test and nothing else).  ``max_events`` bounds
    memory: once reached, the *first* ``max_events`` events are kept,
    later emissions are counted in :attr:`dropped` — the exporter and
    the CLI surface that count, so truncation is never silent.
    """

    def __init__(self, categories=None, max_events: int = 200_000) -> None:
        """Create a tracer keeping ``categories`` (None = all)."""
        if max_events <= 0:
            raise ConfigError("max_events must be positive")
        if categories is not None:
            unknown = set(categories) - set(CATEGORIES)
            if unknown:
                raise ConfigError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"known: {', '.join(CATEGORIES)}"
                )
        self._categories = frozenset(categories) if categories is not None else None
        self._max_events = max_events
        self.events: list[TraceEvent] = []
        #: Events discarded after the cap was reached.
        self.dropped = 0

    def wants(self, category: str) -> bool:
        """True if events of ``category`` are being recorded."""
        return self._categories is None or category in self._categories

    # -- emission ----------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        if len(self.events) < self._max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    def instant(self, category: str, name: str, ts: Cycles, track: str,
                **args) -> None:
        """Record a point event at ``ts`` on ``track``."""
        if not self.wants(category):
            return
        self._emit(TraceEvent("i", category, name, ts, track,
                              args=args or None))

    def span(self, category: str, name: str, start: Cycles, end: Cycles,
             track: str, **args) -> None:
        """Record an interval event covering [start, end] on ``track``."""
        if not self.wants(category):
            return
        self._emit(TraceEvent("X", category, name, start, track,
                              dur=max(end - start, 0.0), args=args or None))

    def counter(self, category: str, name: str, ts: Cycles, value: float,
                track: str) -> None:
        """Record one sample of the counter ``name`` on ``track``."""
        if not self.wants(category):
            return
        self._emit(TraceEvent("C", category, name, ts, track,
                              args={"value": value}))

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        """Number of events recorded (excludes dropped)."""
        return len(self.events)

    def by_category(self) -> dict[str, int]:
        """Event counts per category (only categories actually seen)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def tracks(self) -> list[str]:
        """All track names seen, sorted."""
        return sorted({event.track for event in self.events})
