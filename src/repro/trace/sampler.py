"""Interval-sampled telemetry — the simulator's ``ipmwatch -interval``.

VTune's ``ipmwatch`` samples each DIMM's media/iMC byte counters at a
fixed wall-clock interval; the difference between consecutive samples
is the time-resolved traffic that makes buffer fill/evict dynamics
visible (the paper's §2.4 methodology).  :class:`TelemetrySampler`
does the same against simulated time: every ``interval`` cycles it
snapshots every device's :class:`~repro.stats.counters.TelemetryCounters`
and records the *per-interval deltas* together with instantaneous
occupancies (read/write buffer fill, WPQ depth, AIT hit ratio, store
buffer backlog) as one :class:`Sample` row per device.

Sampling is driven by the machine itself: each memory operation calls
the attached trace handle (see :mod:`repro.trace.session`), which asks
the sampler whether a sample boundary was crossed.  Because simulated
time only advances at operation boundaries, each crossing produces one
row stamped at the boundary cycle — exactly the semantics of a
counter read racing a workload loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.sim.clock import Cycles

#: Per-interval deltas of every TelemetryCounters field, in order.
COUNTER_COLUMNS = (
    "imc_read_bytes", "imc_write_bytes",
    "media_read_bytes", "media_write_bytes",
    "demand_read_bytes", "demand_write_bytes",
    "read_buffer_hits", "read_buffer_misses",
    "write_buffer_hits", "write_buffer_misses",
    "write_buffer_evictions", "periodic_writebacks",
    "ait_hits", "ait_misses", "rmw_avoided", "underfill_reads",
)

#: Instantaneous state sampled alongside the counter deltas:
#: buffer occupancies in XPLines, WPQ slots busy, the interval's AIT
#: hit ratio, and the machine-wide store-buffer backlog (flush
#: acceptances no fence has consumed yet).
GAUGE_COLUMNS = (
    "rbuf_lines", "wbuf_lines", "wpq_occupancy",
    "ait_hit_ratio", "store_buffer_pending",
)

#: All value columns of a Sample row, in CSV order.
COLUMNS = COUNTER_COLUMNS + GAUGE_COLUMNS


@dataclass(frozen=True)
class Sample:
    """One device's telemetry over one sampling interval.

    ``ts`` is the boundary cycle the sample is stamped at; ``device``
    the DIMM name (``pm0``, ``dram0``, ...); ``values`` maps each
    :data:`COLUMNS` entry to its number for this interval.
    """

    ts: Cycles
    device: str
    values: dict

    def get(self, column: str) -> float:
        """One column's value (KeyError on an unknown column)."""
        return self.values[column]


class TimeSeries:
    """An ordered collection of :class:`Sample` rows with exporters."""

    def __init__(self, rows: list[Sample] | None = None) -> None:
        """Wrap ``rows`` (empty by default); rows stay append-ordered."""
        self.rows: list[Sample] = list(rows) if rows else []

    def __len__(self) -> int:
        """Number of sample rows."""
        return len(self.rows)

    def devices(self) -> list[str]:
        """Device names present, sorted."""
        return sorted({row.device for row in self.rows})

    def column(self, name: str, device: str | None = None) -> list[tuple[Cycles, float]]:
        """(ts, value) pairs of one column, optionally for one device."""
        return [
            (row.ts, row.values[name])
            for row in self.rows
            if device is None or row.device == device
        ]

    def extend(self, other: "TimeSeries") -> None:
        """Append another series' rows (multi-machine merge)."""
        self.rows.extend(other.rows)

    def to_csv(self, precision: int = 6) -> str:
        """CSV text: ``ts,device`` followed by every :data:`COLUMNS` entry."""
        lines = [",".join(("ts", "device") + COLUMNS)]
        for row in self.rows:
            cells = [f"{row.ts:.0f}", row.device]
            cells += [f"{row.values[c]:.{precision}g}" for c in COLUMNS]
            lines.append(",".join(cells))
        return "\n".join(lines)

    def to_obj(self) -> dict:
        """JSON-friendly form: columns plus one compact list per row."""
        return {
            "columns": list(("ts", "device") + COLUMNS),
            "rows": [
                [row.ts, row.device] + [row.values[c] for c in COLUMNS]
                for row in self.rows
            ],
        }

    @classmethod
    def from_obj(cls, data: dict) -> "TimeSeries":
        """Rebuild a series from :meth:`to_obj` output."""
        series = cls()
        columns = data["columns"][2:]
        for row in data["rows"]:
            series.rows.append(Sample(row[0], row[1], dict(zip(columns, row[2:]))))
        return series


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


class TelemetrySampler:
    """Samples one machine's devices every ``interval`` simulated cycles.

    ``max_rows`` bounds memory on very long runs: rows past the cap
    are counted in :attr:`dropped` rather than stored (never silent —
    exporters and the CLI report the count).  When a ``tracer`` is
    given, the occupancy gauges are additionally emitted as Chrome
    counter events so Perfetto renders them as step charts alongside
    the event tracks.
    """

    def __init__(self, machine, interval: Cycles, tracer=None,
                 label: str = "machine0", max_rows: int = 200_000) -> None:
        """Attach to ``machine``, sampling every ``interval`` cycles."""
        if interval <= 0:
            raise ConfigError("sampling interval must be positive")
        self.machine = machine
        self.interval = float(interval)
        self.tracer = tracer
        self.label = label
        self.series = TimeSeries()
        self.dropped = 0
        self._max_rows = max_rows
        self._channels = machine.channels()
        self._prev = {
            name: channel.device.counters.snapshot()
            for name, channel in self._channels.items()
        }
        self._next = self.interval

    def maybe_sample(self, now: Cycles) -> None:
        """Record one sample if ``now`` crossed the next boundary.

        A jump across several boundaries (an idle stretch) yields a
        single row stamped at the first crossed boundary — matching a
        counter reader that was descheduled and reads once on wake-up.
        """
        if now < self._next:
            return
        boundary = self._next
        self.sample(boundary)
        steps = int((now - boundary) // self.interval) + 1
        self._next = boundary + steps * self.interval

    def sample(self, ts: Cycles) -> None:
        """Force one sample row per device, stamped at ``ts``."""
        pending = sum(core.store_buffer_pending for core in self.machine.cores)
        for name, channel in self._channels.items():
            counters = channel.device.counters
            delta = counters.delta(self._prev[name])
            self._prev[name] = counters.snapshot()
            values = {column: getattr(delta, column) for column in COUNTER_COLUMNS}
            device = channel.device
            read_buffer = getattr(device, "read_buffer", None)
            write_buffer = getattr(device, "write_buffer", None)
            values["rbuf_lines"] = len(read_buffer) if read_buffer is not None else 0
            values["wbuf_lines"] = len(write_buffer) if write_buffer is not None else 0
            values["wpq_occupancy"] = channel.wpq_occupancy(ts)
            values["ait_hit_ratio"] = _ratio(
                delta.ait_hits, delta.ait_hits + delta.ait_misses
            )
            values["store_buffer_pending"] = pending
            if len(self.series.rows) < self._max_rows:
                self.series.rows.append(Sample(ts, name, values))
            else:
                self.dropped += 1
            if self.tracer is not None:
                track = f"{self.label}.{name}"
                self.tracer.counter("imc", "wpq_occupancy", ts,
                                    values["wpq_occupancy"], track)
                self.tracer.counter("rbuf", "rbuf_lines", ts,
                                    values["rbuf_lines"], track)
                self.tracer.counter("wbuf", "wbuf_lines", ts,
                                    values["wbuf_lines"], track)
