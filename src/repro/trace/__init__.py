"""repro.trace — time-resolved telemetry and hierarchical event tracing.

The observability layer: where :mod:`repro.stats.counters` gives
cumulative before/after deltas (``ipmwatch`` read twice), this package
gives the *time-resolved* view every buffering phenomenon in the paper
lives in — buffer fill/evict dynamics, the WPQ drain cadence under
read-after-persist, periodic write-back pulses, AIT-cache thrash
onset.  Three coordinated pieces:

* :mod:`repro.trace.sampler` — interval-sampled per-device telemetry
  (``ipmwatch -interval`` for the simulator): per-interval counter
  deltas plus buffer/WPQ/store-buffer occupancies as a
  :class:`TimeSeries` of :class:`Sample` rows;
* :mod:`repro.trace.events` — the hierarchical event model: a
  :class:`Tracer` collecting span/instant/counter events in seven
  categories (``cache rbuf wbuf imc media ait persist``), emitted by
  the machine's components behind nullable handles (zero recording
  cost when no session is attached);
* :mod:`repro.trace.emit` — exporters: Chrome ``trace_event`` JSON
  (drop the file into https://ui.perfetto.dev) and time-series
  CSV/JSON, plus a schema validator CI asserts on.

:mod:`repro.trace.session` ties them together ETW-style: machines
built while a :func:`session` is open are instrumented automatically,
so any unmodified experiment can be traced (the ``repro trace`` CLI
subcommand does exactly this).  :mod:`repro.trace.tap` reuses the
crash-campaign :class:`~repro.faults.hooks.EventTap` plumbing to also
trace a *workload's* program-order persistence stream.

Tracing is observational by construction: every emitter reads
simulation state without mutating it, so traced and untraced runs
produce bit-identical experiment results (asserted by the test suite).
"""

from repro.trace.emit import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_timeseries_csv,
    write_timeseries_json,
)
from repro.trace.events import CATEGORIES, TraceEvent, Tracer
from repro.trace.sampler import COLUMNS, Sample, TelemetrySampler, TimeSeries
from repro.trace.session import (
    TraceSession,
    active_session,
    attach_if_active,
    session,
)

__all__ = [
    "CATEGORIES",
    "COLUMNS",
    "Sample",
    "TelemetrySampler",
    "TimeSeries",
    "TraceEvent",
    "TraceSession",
    "Tracer",
    "active_session",
    "attach_if_active",
    "session",
    "to_chrome_trace",
    "trace_core",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_timeseries_csv",
    "write_timeseries_json",
]


def trace_core(core, tracer, track=None):
    """Wrap ``core`` so its persistence events land in ``tracer``.

    Thin lazy re-export of :func:`repro.trace.tap.trace_core` — the
    tap module pulls in :mod:`repro.faults`, which machine
    construction (importing this package's session module) must not.
    """
    from repro.trace.tap import trace_core as _trace_core

    return _trace_core(core, tracer, track)
