"""CPU cache hierarchy and prefetchers."""

from repro.cache.hierarchy import AccessResult, CacheHierarchy, CacheHierarchyConfig
from repro.cache.prefetch import (
    AdjacentLinePrefetcher,
    DcuPrefetcher,
    PrefetchEngine,
    PrefetcherConfig,
    StreamPrefetcher,
)
from repro.cache.set_assoc import CacheLevelConfig, Eviction, SetAssociativeCache

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "CacheHierarchyConfig",
    "AdjacentLinePrefetcher",
    "DcuPrefetcher",
    "PrefetchEngine",
    "PrefetcherConfig",
    "StreamPrefetcher",
    "CacheLevelConfig",
    "Eviction",
    "SetAssociativeCache",
]
