"""Generic set-associative, write-back cache level (tag-only).

The simulator tracks presence and dirtiness of 64-byte lines, not
data: every experiment in the paper is about *where* accesses are
served from and *what traffic* they generate, never about values.

Each set is an :class:`collections.OrderedDict` mapping line index to
dirty flag; insertion order doubles as LRU order (``move_to_end`` on
touch, ``popitem(last=False)`` to evict), which keeps the hot path in
C-implemented dict operations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and access latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: float
    line_size: int = 64

    def validate(self) -> None:
        """Raise ConfigError on inconsistent geometry."""
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ConfigError(f"{self.name}: geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_size):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_size})"
            )
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency cannot be negative")

    @property
    def n_sets(self) -> int:
        """Number of sets (size / (ways * line))."""
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of a level by a fill."""

    line: int
    dirty: bool


class SetAssociativeCache:
    """One LRU, write-back cache level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        config.validate()
        self.config = config
        self._n_sets = config.n_sets
        self._ways = config.ways
        self._sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line % self._n_sets]

    def lookup(self, line: int) -> bool:
        """Demand lookup: refreshes LRU and counts hit/miss."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Presence check with no LRU or statistics side effects."""
        return line in self._set_for(line)

    def fill(self, line: int, dirty: bool = False) -> Eviction | None:
        """Install ``line``; returns the victim if the set overflowed.

        Filling a line that is already present refreshes LRU and ORs
        in the dirty flag.
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            cache_set.move_to_end(line)
            return None
        cache_set[line] = dirty
        if len(cache_set) > self._ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            return Eviction(victim_line, victim_dirty)
        return None

    def invalidate(self, line: int) -> tuple[bool, bool]:
        """Remove ``line``; returns (was_present, was_dirty)."""
        cache_set = self._set_for(line)
        dirty = cache_set.pop(line, None)
        if dirty is None:
            return (False, False)
        return (True, dirty)

    def clean(self, line: int) -> bool:
        """Clear the dirty flag, keeping the line resident (G2 clwb).

        Returns whether the line was dirty.
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            was_dirty = cache_set[line]
            cache_set[line] = False
            return was_dirty
        return False

    def set_dirty(self, line: int) -> bool:
        """Mark a resident line dirty; returns False if absent."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True
            return True
        return False

    def is_dirty(self, line: int) -> bool:
        """True if the line is resident and dirty."""
        return bool(self._set_for(line).get(line, False))

    @property
    def resident_lines(self) -> int:
        """Total lines currently cached across all sets."""
        return sum(len(s) for s in self._sets)

    def dirty_lines(self) -> list[int]:
        """All resident dirty line indexes (crash-analysis support)."""
        return [
            line
            for cache_set in self._sets
            for line, dirty in cache_set.items()
            if dirty
        ]

    def clear(self) -> None:
        """Empty the cache (statistics retained)."""
        for cache_set in self._sets:
            cache_set.clear()
