"""Three-level inclusive cache hierarchy.

Coordinates L1/L2/L3 :class:`SetAssociativeCache` levels with inclusive
fills, LRU promotion on lower-level hits, dirty write-back cascades and
back-invalidation on LLC evictions.  The hierarchy never talks to
memory itself: demand misses and dirty LLC victims are reported to the
caller (the machine), which routes them to the right device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.set_assoc import CacheLevelConfig, SetAssociativeCache
from repro.common.errors import ConfigError
from repro.common.units import kib, mib


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """Geometries of all three levels plus the miss detection cost."""

    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig("L1", kib(32), 8, latency=4.0)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig("L2", mib(1), 16, latency=14.0)
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig("L3", int(mib(27.5)), 11, latency=42.0)
    )
    #: Cycles burned discovering a full miss before memory is engaged.
    miss_overhead: float = 10.0

    def validate(self) -> None:
        """Validate all levels and the outward-growth constraint."""
        for level in (self.l1, self.l2, self.l3):
            level.validate()
        if not (self.l1.size_bytes <= self.l2.size_bytes <= self.l3.size_bytes):
            raise ConfigError("cache levels must not shrink outward")

    @staticmethod
    def g1() -> "CacheHierarchyConfig":
        """Xeon Gold 6230-class hierarchy (G1 testbed)."""
        return CacheHierarchyConfig()

    @staticmethod
    def g2() -> "CacheHierarchyConfig":
        """Xeon Gold 5317-class hierarchy (G2 testbed): bigger L2/L3."""
        return CacheHierarchyConfig(
            l1=CacheLevelConfig("L1", kib(48), 12, latency=5.0),
            l2=CacheLevelConfig("L2", int(mib(1.25)), 20, latency=16.0),
            l3=CacheLevelConfig("L3", mib(36), 12, latency=46.0),
        )


@dataclass(frozen=True)
class AccessResult:
    """What one demand access did to the hierarchy."""

    #: 1, 2 or 3 for a hit at that level; None for a full miss.
    hit_level: int | None
    #: Lookup latency: hit-level latency, or the full-probe overhead on miss.
    latency: float
    #: Dirty lines pushed out of the LLC that must be written to memory.
    memory_writebacks: tuple[int, ...] = ()


class CacheHierarchy:
    """Inclusive L1/L2/L3 with write-back and write-allocate."""

    def __init__(self, config: CacheHierarchyConfig) -> None:
        config.validate()
        self.config = config
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.l3 = SetAssociativeCache(config.l3)
        self._levels = (self.l1, self.l2, self.l3)

    # -- queries -------------------------------------------------------------

    def probe_level(self, line: int) -> int | None:
        """Highest level holding ``line`` (1/2/3), or None.  No side effects."""
        for number, level in enumerate(self._levels, start=1):
            if level.probe(line):
                return number
        return None

    def contains(self, line: int) -> bool:
        """True if any level holds ``line``."""
        return self.probe_level(line) is not None

    # -- demand path -----------------------------------------------------------

    def access(self, line: int, is_write: bool) -> AccessResult:
        """One demand load/store.  On a hit the line is promoted to L1.

        On a miss the caller must fetch from memory and then call
        :meth:`fill`.  Stores mark the (promoted) L1 copy dirty —
        write-allocate is the caller's job via the fill path.
        """
        writebacks: list[int] = []
        if self.l1.lookup(line):
            if is_write:
                self.l1.set_dirty(line)
            return AccessResult(1, self.config.l1.latency)
        if self.l2.lookup(line):
            self._promote(line, to_level=1, dirty=is_write, writebacks=writebacks)
            return AccessResult(2, self.config.l2.latency, tuple(writebacks))
        if self.l3.lookup(line):
            self._promote(line, to_level=2, dirty=False, writebacks=writebacks)
            self._promote(line, to_level=1, dirty=is_write, writebacks=writebacks)
            return AccessResult(3, self.config.l3.latency, tuple(writebacks))
        return AccessResult(None, self.config.miss_overhead)

    def fill(self, line: int, dirty: bool = False, into_l1: bool = True) -> tuple[int, ...]:
        """Install a line fetched from memory (inclusive: L3 → L2 [→ L1]).

        Returns dirty lines evicted from the LLC (the caller writes
        them back to memory).  Prefetch fills typically use
        ``into_l1=False`` (L2 prefetchers fill L2/L3 only).
        """
        writebacks: list[int] = []
        self._fill_level(3, line, dirty=False, writebacks=writebacks)
        self._fill_level(2, line, dirty=False, writebacks=writebacks)
        if into_l1:
            self._fill_level(1, line, dirty=dirty, writebacks=writebacks)
        elif dirty:
            self.l2.set_dirty(line)
        return tuple(writebacks)

    # -- flush / invalidate path --------------------------------------------------

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` from all levels; True if any copy was dirty.

        Models clflush/clflushopt and the G1 clwb behaviour.
        """
        dirty = False
        for level in self._levels:
            _, was_dirty = level.invalidate(line)
            dirty = dirty or was_dirty
        return dirty

    def clean(self, line: int) -> bool:
        """Clear dirtiness of ``line`` everywhere, keeping it resident.

        Models the G2 clwb behaviour; True if any copy was dirty.
        """
        dirty = False
        for level in self._levels:
            dirty = level.clean(line) or dirty
        return dirty

    def is_dirty(self, line: int) -> bool:
        """True if any level holds a dirty copy of ``line``."""
        return any(level.is_dirty(line) for level in self._levels)

    def dirty_lines(self) -> set[int]:
        """Union of dirty lines across all levels (crash analysis)."""
        dirty: set[int] = set()
        for level in self._levels:
            dirty.update(level.dirty_lines())
        return dirty

    def clear(self) -> None:
        """Empty all levels."""
        for level in self._levels:
            level.clear()

    # -- internals --------------------------------------------------------------

    def _promote(self, line: int, to_level: int, dirty: bool, writebacks: list[int]) -> None:
        self._fill_level(to_level, line, dirty=dirty, writebacks=writebacks)

    def _fill_level(self, number: int, line: int, dirty: bool, writebacks: list[int]) -> None:
        level = self._levels[number - 1]
        eviction = level.fill(line, dirty=dirty)
        if eviction is None:
            return
        if number == 1:
            # Write-back into L2; inclusive, so normally present there.
            if eviction.dirty and not self.l2.set_dirty(eviction.line):
                self._fill_level(2, eviction.line, dirty=True, writebacks=writebacks)
        elif number == 2:
            if eviction.dirty and not self.l3.set_dirty(eviction.line):
                self._fill_level(3, eviction.line, dirty=True, writebacks=writebacks)
        else:
            # LLC eviction: back-invalidate inner levels (inclusivity).
            _, l1_dirty = self.l1.invalidate(eviction.line)
            _, l2_dirty = self.l2.invalidate(eviction.line)
            if eviction.dirty or l1_dirty or l2_dirty:
                writebacks.append(eviction.line)
