"""CPU cache prefetchers (paper Section 3.4).

Three prefetchers of the Intel scalable processors are modeled, each
individually toggleable, mirroring the paper's BIOS switches:

* **DCU streamer** (L1 next-line): on an ascending access pair within
  a 4 KB page, fetch the next line.  Cheap per trigger (one line) but
  fires constantly — its cross-XPLine overshoots are what push the PM
  read ratio toward 2 in Figure 6 (d).
* **Adjacent-line / spatial prefetcher** (L2): on a demand miss, fetch
  the following two lines.
* **Hardware streamer** (L2): trains on ascending accesses within a
  page; once trained it keeps a prefetch frontier ``distance`` lines
  ahead, issuing up to ``degree`` lines per trigger.  Training is
  probabilistic (``fire_probability``) to model the detector's
  sensitivity to interleaved access streams — with random 256 B blocks
  it only sometimes locks on, which is why Figure 6 (b) shows the
  smallest ratios.

Prefetchers emit *candidate* line indexes; the machine filters out
lines already cached or in flight and issues the remainder as
non-demand fills.  No prefetcher crosses a 4 KB page boundary.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.rng import DeterministicRng

#: Hardware prefetchers do not cross 4 KB page boundaries.
PAGE_BYTES = 4096
LINES_PER_PAGE = PAGE_BYTES // 64


@dataclass(frozen=True)
class PrefetcherConfig:
    """Which prefetchers are enabled, and the streamer's tuning."""

    dcu: bool = True
    adjacent: bool = True
    streamer: bool = True
    streamer_train_threshold: int = 2
    #: How far ahead (in lines) the streamer keeps its prefetch frontier.
    streamer_distance: int = 4
    streamer_degree: int = 4
    #: Largest ascending jump still considered part of the same stream;
    #: lets the streamer lock onto strided element walks, not just +1.
    streamer_window: int = 6
    streamer_fire_probability: float = 0.3
    #: Max pages tracked concurrently by each page-local prefetcher.
    table_entries: int = 16

    @staticmethod
    def none() -> "PrefetcherConfig":
        """All prefetchers disabled (the Figure 6 (a)/(e) configuration)."""
        return PrefetcherConfig(dcu=False, adjacent=False, streamer=False)

    @staticmethod
    def only(which: str) -> "PrefetcherConfig":
        """Enable a single prefetcher: "dcu", "adjacent" or "streamer"."""
        if which not in ("dcu", "adjacent", "streamer"):
            raise ValueError(f"unknown prefetcher {which!r}")
        return PrefetcherConfig(
            dcu=which == "dcu",
            adjacent=which == "adjacent",
            streamer=which == "streamer",
        )


def _page_of(line: int) -> int:
    return line // LINES_PER_PAGE


def _page_end(line: int) -> int:
    """Last line index (inclusive) of the page containing ``line``."""
    return (_page_of(line) + 1) * LINES_PER_PAGE - 1


class DcuPrefetcher:
    """L1 next-line prefetcher: ascending pair → fetch line+1."""

    def __init__(self, table_entries: int) -> None:
        self._last_line: OrderedDict[int, int] = OrderedDict()
        self._table_entries = table_entries

    def observe(self, line: int, hit_level: int | None) -> list[int]:
        """Feed one access; returns prefetch candidates (DCU next-line)."""
        page = _page_of(line)
        previous = self._last_line.get(page)
        self._last_line[page] = line
        self._last_line.move_to_end(page)
        if len(self._last_line) > self._table_entries:
            self._last_line.popitem(last=False)
        if previous is not None and line == previous + 1 and line + 1 <= _page_end(line):
            return [line + 1]
        return []

    def reset(self) -> None:
        """Forget all page-local history."""
        self._last_line.clear()


class AdjacentLinePrefetcher:
    """L2 spatial prefetcher: demand miss → fetch the next two lines."""

    def observe(self, line: int, hit_level: int | None) -> list[int]:
        """Feed one access; L2-visible misses fetch the next two lines."""
        if hit_level == 1:
            return []  # invisible to L2
        end = _page_end(line)
        return [candidate for candidate in (line + 1, line + 2) if candidate <= end]

    def reset(self) -> None:
        """Stateless."""


@dataclass
class _StreamEntry:
    last_line: int
    confidence: int = 0
    active: bool = False
    frontier: int = -1


class StreamPrefetcher:
    """L2 hardware streamer with training, frontier and page locality."""

    def __init__(
        self,
        rng: DeterministicRng,
        train_threshold: int,
        distance: int,
        degree: int,
        window: int,
        fire_probability: float,
        table_entries: int,
    ) -> None:
        self._rng = rng
        self._train_threshold = train_threshold
        self._distance = distance
        self._degree = degree
        self._window = window
        self._fire_probability = fire_probability
        self._table_entries = table_entries
        self._streams: OrderedDict[int, _StreamEntry] = OrderedDict()

    def observe(self, line: int, hit_level: int | None) -> list[int]:
        """Feed one access; trained streams prefetch up to the frontier."""
        if hit_level == 1:
            return []  # L1 hits are invisible to the L2 streamer
        page = _page_of(line)
        entry = self._streams.get(page)
        if entry is None:
            entry = _StreamEntry(last_line=line)
            self._streams[page] = entry
            self._streams.move_to_end(page)
            if len(self._streams) > self._table_entries:
                self._streams.popitem(last=False)
            return []
        self._streams.move_to_end(page)

        delta = line - entry.last_line
        ascending = 0 < delta <= self._window
        entry.last_line = line
        if ascending:
            entry.confidence += 1
        elif delta != 0:
            entry.confidence = 0
            entry.active = False
            entry.frontier = -1
            return []
        else:
            return []

        if not entry.active:
            if entry.confidence < self._train_threshold:
                return []
            # Trained; lock on probabilistically (detector sensitivity).
            if self._rng.random() >= self._fire_probability:
                return []
            entry.active = True
            entry.frontier = line

        desired = min(line + self._distance, _page_end(line))
        start = max(entry.frontier, line) + 1
        stop = min(desired, start + self._degree - 1)
        if start > stop:
            return []
        entry.frontier = stop
        return list(range(start, stop + 1))

    def reset(self) -> None:
        """Forget all stream training state."""
        self._streams.clear()


class PrefetchEngine:
    """Aggregates the enabled prefetchers behind one observe() call."""

    def __init__(self, config: PrefetcherConfig, rng: DeterministicRng) -> None:
        self.config = config
        self._units: list = []
        if config.dcu:
            self._units.append(DcuPrefetcher(config.table_entries))
        if config.adjacent:
            self._units.append(AdjacentLinePrefetcher())
        if config.streamer:
            self._units.append(
                StreamPrefetcher(
                    rng=rng,
                    train_threshold=config.streamer_train_threshold,
                    distance=config.streamer_distance,
                    degree=config.streamer_degree,
                    window=config.streamer_window,
                    fire_probability=config.streamer_fire_probability,
                    table_entries=config.table_entries,
                )
            )
        self.issued = 0

    @property
    def enabled(self) -> bool:
        """True if at least one prefetcher is active."""
        return bool(self._units)

    def observe(self, line: int, hit_level: int | None) -> list[int]:
        """Feed one demand access; returns deduplicated candidates."""
        if not self._units:
            return []
        candidates: list[int] = []
        seen: set[int] = set()
        for unit in self._units:
            for candidate in unit.observe(line, hit_level):
                if candidate not in seen and candidate != line:
                    seen.add(candidate)
                    candidates.append(candidate)
        self.issued += len(candidates)
        return candidates

    def reset(self) -> None:
        """Forget all training state."""
        for unit in self._units:
            unit.reset()
        self.issued = 0
