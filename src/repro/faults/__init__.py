"""Systematic crash-point fault injection with recovery validation.

The package turns the simulator's determinism into a crash-consistency
test rig: every persistence event of a workload is a potential crash
point, realized by replaying the workload from scratch, cutting power
there (:class:`~repro.persist.crash.CrashSimulator`), and validating
recovery — structural invariants plus no-lost-committed-update against
the durability ledger.  See ``docs/crash_consistency.md`` for the
model and for how to write a validator for a new datastore.
"""

from repro.faults.campaign import (
    FAULT_MODES,
    STATUS_CODES,
    CampaignConfig,
    CrashPointResult,
    FaultCampaignReport,
    run_campaign,
)
from repro.faults.hooks import CrashPointReached, EventTap, HookedCore, PersistEvent
from repro.faults.schedule import InjectionSchedule
from repro.faults.validators import (
    BtreeValidator,
    CcehValidator,
    LinkedListValidator,
    RecoveryValidator,
    validator_for,
)
from repro.faults.workloads import (
    DATASTORES,
    BtreeRedoWorkload,
    CcehWorkload,
    CrashWorkload,
    LinkedListWorkload,
    make_workload,
)
from repro.faults.experiment import run_crashtest, run_crashtest_campaign

__all__ = [
    "FAULT_MODES",
    "STATUS_CODES",
    "DATASTORES",
    "CampaignConfig",
    "CrashPointResult",
    "FaultCampaignReport",
    "run_campaign",
    "CrashPointReached",
    "EventTap",
    "HookedCore",
    "PersistEvent",
    "InjectionSchedule",
    "RecoveryValidator",
    "LinkedListValidator",
    "BtreeValidator",
    "CcehValidator",
    "validator_for",
    "CrashWorkload",
    "LinkedListWorkload",
    "BtreeRedoWorkload",
    "CcehWorkload",
    "make_workload",
    "run_crashtest",
    "run_crashtest_campaign",
]
