"""Crash-point campaign driver and its machine-readable report.

One campaign = one workload × one fault mode × one injection schedule.
The driver first replays the workload uncut to count persistence
events, asks the schedule which event indexes get a power cut, then
for each point replays from scratch, stops at the point, pulls the
plug via :class:`~repro.persist.crash.CrashSimulator`, and runs the
datastore's :class:`~repro.faults.validators.RecoveryValidator`.

Every crash point yields a :class:`CrashPointResult`; the campaign
aggregates them into a :class:`FaultCampaignReport` that serializes to
JSON and converts to an
:class:`~repro.experiments.common.ExperimentReport` so campaigns flow
through the PR-1 runner, result cache, and CLI unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.experiments.common import ExperimentReport
from repro.faults.hooks import CrashPointReached, EventTap
from repro.faults.schedule import InjectionSchedule
from repro.faults.validators import RecoveryValidator
from repro.faults.workloads import CrashWorkload
from repro.persist.crash import CrashSimulator, FaultMode

#: Campaign-level fault modes: the CrashSimulator modes plus "eadr",
#: which is a *machine* variant (caches join the persistence domain)
#: crashed with a clean power loss.
FAULT_MODES = ("power-loss", "torn-xpline", "ait-miss", "eadr")

#: Numeric encoding of per-point status for ExperimentReport series.
STATUS_CODES = {"ok": 0.0, "beyond-adr-loss": 1.0, "violation": 2.0}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run needs."""

    #: Display name (normally the datastore name).
    name: str
    #: Builds a *fresh* workload instance per replay.
    factory: Callable[[], CrashWorkload]
    #: Recovery validator matched to the workload's datastore.
    validator: RecoveryValidator
    #: Which crash points get injected.
    schedule: InjectionSchedule
    #: One of :data:`FAULT_MODES`.
    fault_mode: str = "power-loss"
    #: Seeds the per-point fault RNG (torn-xpline victim draws).
    seed: int = DEFAULT_SEED
    generation: int = 1

    def crash_mode(self) -> FaultMode:
        """The CrashSimulator mode this campaign injects."""
        if self.fault_mode in ("power-loss", "eadr"):
            return FaultMode.CLEAN
        return FaultMode.parse(self.fault_mode)


@dataclass(frozen=True)
class CrashPointResult:
    """Outcome of one injected crash."""

    #: Event index the power failed after.
    point: int
    #: Human-readable description of that event.
    event: str
    #: Workload operation in flight when power failed.
    op_index: int
    #: "ok" | "violation" | "beyond-adr-loss".
    status: str
    #: What the validator found (empty when ok).
    problems: tuple[str, ...] = ()
    #: Dirty PM cachelines lost from the CPU caches.
    lost_lines: int = 0
    #: PM cachelines destroyed by the injected beyond-ADR fault.
    torn_lines: int = 0
    #: XPLines the ADR drain saved.
    drained_xplines: int = 0

    def to_dict(self) -> dict:
        """JSON-ready dict of every field."""
        return {
            "point": self.point,
            "event": self.event,
            "op_index": self.op_index,
            "status": self.status,
            "problems": list(self.problems),
            "lost_lines": self.lost_lines,
            "torn_lines": self.torn_lines,
            "drained_xplines": self.drained_xplines,
        }


@dataclass
class FaultCampaignReport:
    """Machine-readable summary of a whole campaign."""

    workload: str
    generation: int
    fault_mode: str
    schedule: str
    seed: int
    #: Persistence events in the uncut workload.
    total_events: int
    results: list[CrashPointResult] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        """How many crash points were injected."""
        return len(self.results)

    def violations(self) -> list[CrashPointResult]:
        """Crash points where the datastore claimed durability it lacked."""
        return [result for result in self.results if result.status == "violation"]

    def beyond_adr(self) -> list[CrashPointResult]:
        """Crash points where only injected platform damage was found."""
        return [result for result in self.results if result.status == "beyond-adr-loss"]

    def first_violation(self) -> CrashPointResult | None:
        """The earliest violating crash point (None when clean)."""
        violating = self.violations()
        return min(violating, key=lambda result: result.point) if violating else None

    def summary(self) -> str:
        """One line for CLI output and logs."""
        head = (
            f"{self.workload} g{self.generation} {self.fault_mode} "
            f"[{self.schedule}]: {self.points_tested}/{self.total_events} "
            f"points, {len(self.violations())} violations, "
            f"{len(self.beyond_adr())} beyond-ADR losses"
        )
        first = self.first_violation()
        if first is not None:
            head += f"; first violation at {first.event}"
        return head

    def to_dict(self) -> dict:
        """JSON-ready dict of the campaign, results included."""
        return {
            "workload": self.workload,
            "generation": self.generation,
            "fault_mode": self.fault_mode,
            "schedule": self.schedule,
            "seed": self.seed,
            "total_events": self.total_events,
            "violations": len(self.violations()),
            "beyond_adr": len(self.beyond_adr()),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize :meth:`to_dict` as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def as_experiment_report(self) -> ExperimentReport:
        """Encode the campaign as an ExperimentReport.

        Lets campaigns ride the PR-1 runner/cache: x-axis = crash
        points, series = status code (:data:`STATUS_CODES`), loss
        counts, and drain counts; the summary and first violation (the
        pinpointed crash event) travel in the notes.
        """
        report = ExperimentReport(
            experiment_id=f"crash-{self.workload}",
            title=f"Crash campaign — {self.workload} ({self.fault_mode})",
            x_label="crash point",
            x_values=[result.point for result in self.results],
            x_is_size=False,
        )
        report.add_series("status", [STATUS_CODES[result.status] for result in self.results])
        report.add_series("lost_lines", [float(result.lost_lines) for result in self.results])
        report.add_series("torn_lines", [float(result.torn_lines) for result in self.results])
        report.add_series(
            "drained_xplines", [float(result.drained_xplines) for result in self.results]
        )
        report.notes.append(self.summary())
        first = self.first_violation()
        if first is not None:
            report.notes.append(
                f"first violation at {first.event}: {'; '.join(first.problems)}"
            )
        return report


def run_campaign(config: CampaignConfig) -> FaultCampaignReport:
    """Execute one crash campaign and return its report."""
    # Dry run: replay the workload uncut to measure the event stream.
    probe = config.factory()
    probe_tap = EventTap(probe.checker)
    probe.run(probe_tap)
    total_events = probe_tap.count

    report = FaultCampaignReport(
        workload=config.name,
        generation=config.generation,
        fault_mode=config.fault_mode,
        schedule=config.schedule.describe(),
        seed=config.seed,
        total_events=total_events,
    )
    crash_mode = config.crash_mode()
    fault_rng = DeterministicRng(config.seed)
    for point in config.schedule.points(total_events):
        instance = config.factory()
        tap = EventTap(instance.checker, stop_at=point)
        try:
            instance.run(tap)
        except CrashPointReached:
            pass
        # Disarm the tap: recovery runs through the same machine and
        # must not trip the (already fired) crash point again.
        tap.stop_at = None
        simulator = CrashSimulator(instance.machine)
        crash = simulator.power_failure(
            now=instance.core.now if instance.core is not None else 0.0,
            mode=crash_mode,
            rng=fault_rng.fork(1_000 + point),
        )
        status, problems = config.validator.validate(instance, crash)
        last = tap.last_event
        report.results.append(
            CrashPointResult(
                point=point,
                event=last.describe() if last is not None else "<before first event>",
                op_index=last.op_index if last is not None else 0,
                status=status,
                problems=problems,
                lost_lines=len(crash.lost_pm_lines),
                torn_lines=len(crash.torn_pm_lines),
                drained_xplines=crash.drained_xplines,
            )
        )
    return report
