"""Replayable crash workloads over the shipped persistent datastores.

A crash campaign realizes "crash at event k" by *replaying* the
workload from scratch and stopping at k — the simulator is fully
deterministic, so a fresh build with the same seed reproduces the
identical event stream every time.  Each :class:`CrashWorkload`
therefore owns everything a replay needs: a private machine, the
datastore under test, and the operation sequence.

Workloads are deliberately small: exhaustive campaigns replay the
whole workload once per persistence event, so the event count sets the
campaign's cost quadratically.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.datastores.btree.fastfair import FastFairTree
from repro.datastores.cceh.hashtable import CcehHashTable
from repro.datastores.linkedlist import PersistentLinkedList
from repro.dimm.config import OptaneDimmConfig
from repro.faults.hooks import EventTap, HookedCore
from repro.media.ait import AitConfig
from repro.persist.allocator import PmHeap, RegionAllocator
from repro.persist.crash import DurabilityChecker
from repro.system.presets import machine_for

#: Datastores a campaign can target.
DATASTORES = ("linkedlist", "btree", "cceh")

#: Operation counts per (datastore, profile) — small on purpose; see
#: the module docstring for why exhaustive cost is quadratic in these.
_SIZES = {
    ("linkedlist", "fast"): 6,
    ("linkedlist", "full"): 12,
    ("btree", "fast"): 6,
    ("btree", "full"): 12,
    ("cceh", "fast"): 8,
    ("cceh", "full"): 16,
}


class CrashWorkload:
    """One replayable unit: private machine + datastore + op sequence.

    Instances are single-use: construct, :meth:`run` (possibly cut
    short by :class:`~repro.faults.hooks.CrashPointReached`), then hand
    to a validator.  Subclasses implement :meth:`_build` (allocate and
    populate the structure at zero simulated cost) and :meth:`_ops`
    (execute the measured operations through the hooked core).
    """

    name = "base"

    def __init__(
        self,
        generation: int = 1,
        profile: str = "fast",
        seed: int = DEFAULT_SEED,
        eadr: bool = False,
        ait_pressure: bool = False,
        size: int | None = None,
    ) -> None:
        """Build the machine and the structure; no events fire yet."""
        self.generation = generation
        self.seed = seed
        self.size = size if size is not None else _SIZES[(self.name, profile)]
        overrides: dict = {}
        if ait_pressure:
            # The ait-miss fault mode needs translation misses *during
            # the ADR drain*, which a workload this small can never
            # produce against the real 16 MB AIT cache — every granule
            # it touched is resident.  The pressure variant shrinks the
            # cache to a single XPLine-sized granule so drained lines
            # genuinely miss, making the fault observable.  Timing
            # changes, but the event stream (program order) does not.
            base = OptaneDimmConfig.g1() if generation == 1 else OptaneDimmConfig.g2()
            overrides["optane"] = replace(
                base,
                media=replace(
                    base.media,
                    ait=AitConfig(coverage_bytes=XPLINE_SIZE, granule_bytes=XPLINE_SIZE),
                ),
            )
        self.machine = machine_for(
            generation, prefetchers=PrefetcherConfig.none(), seed=seed, eadr=eadr, **overrides
        )
        self.checker = DurabilityChecker()
        self.core: HookedCore | None = None
        self.completed_ops = 0
        #: Keys whose operation ran to completion before the crash —
        #: what recovery validators assert is still reachable.
        self.completed_keys: list[int] = []
        self._build()

    def run(self, tap: EventTap) -> None:
        """Execute the op sequence through ``tap`` (may stop mid-op)."""
        self.core = HookedCore(self.machine.new_core(), tap)
        self._ops(self.core, tap)

    def _build(self) -> None:
        """Allocate and pre-populate the datastore (subclass hook)."""
        raise NotImplementedError

    def _ops(self, core: HookedCore, tap: EventTap) -> None:
        """Run the measured operations (subclass hook)."""
        raise NotImplementedError


class LinkedListWorkload(CrashWorkload):
    """Figure 8's pointer-chase-and-update pass over the circular list.

    Each operation updates (and persists) one element's pad cacheline.
    The pointers are never modified, so the structural invariant — the
    chain is one Hamiltonian cycle — must hold at every crash point.
    """

    name = "linkedlist"

    def _build(self) -> None:
        """Allocate the circular list (layout only, no events)."""
        allocator = RegionAllocator(self.machine, "pm")
        self.datastore = PersistentLinkedList(allocator, count=self.size, sequential=True)

    def _ops(self, core: HookedCore, tap: EventTap) -> None:
        """One persisted pad update per element, chasing the chain."""
        cursor = 0
        for _ in range(self.size):
            cursor = self.datastore.update_pass(
                core, start=cursor, steps=1, persist=True, fence="sfence"
            )
            self.completed_ops += 1
            self.completed_keys.append(cursor)
            tap.next_op()


class BtreeRedoWorkload(CrashWorkload):
    """Sorted-insert batch into the redo-logging FAST & FAIR B+-tree.

    Exercises the paper's Figure 11 protocol end to end: out-of-place
    log appends, per-cacheline commit flags, and plain-store write-back
    — the path whose crash window is covered by log replay, not by
    flushes of the home locations.
    """

    name = "btree"

    def _build(self) -> None:
        """Create the tree and draw a shuffled key sequence."""
        self.heap = PmHeap(self.machine)
        self.datastore = FastFairTree(self.heap, mode="redo", fence="sfence")
        self.keys = DeterministicRng(self.seed).shuffled(
            [index * 7 + 1 for index in range(self.size)]
        )

    def _ops(self, core: HookedCore, tap: EventTap) -> None:
        """Insert each key; a key counts as completed when insert returns."""
        for key in self.keys:
            self.datastore.insert(key, key + 100, core)
            self.completed_ops += 1
            self.completed_keys.append(key)
            tap.next_op()


class CcehWorkload(CrashWorkload):
    """Insert batch into the CCEH hash table (paper Section 4.1).

    Covers bucket stores, the per-insert persistence barrier, and —
    with enough keys — lazy segment splits and directory updates.
    """

    name = "cceh"

    def _build(self) -> None:
        """Create the table and draw a shuffled key sequence."""
        allocator = RegionAllocator(self.machine, "pm")
        self.datastore = CcehHashTable(allocator, initial_depth=1, fence="mfence")
        self.keys = DeterministicRng(self.seed).shuffled(
            [index * 13 + 5 for index in range(self.size)]
        )

    def _ops(self, core: HookedCore, tap: EventTap) -> None:
        """Insert each key; a key counts as completed when insert returns."""
        for key in self.keys:
            self.datastore.insert(key, key + 1, core)
            self.completed_ops += 1
            self.completed_keys.append(key)
            tap.next_op()


_WORKLOADS = {
    "linkedlist": LinkedListWorkload,
    "btree": BtreeRedoWorkload,
    "cceh": CcehWorkload,
}


def make_workload(
    datastore: str,
    generation: int = 1,
    profile: str = "fast",
    seed: int = DEFAULT_SEED,
    eadr: bool = False,
    ait_pressure: bool = False,
) -> CrashWorkload:
    """Build a fresh workload instance for ``datastore``.

    Module-level and partial-friendly so campaign configs built from it
    stay picklable for the process-pool runner.
    """
    try:
        cls = _WORKLOADS[datastore]
    except KeyError:
        raise ConfigError(
            f"unknown crash datastore {datastore!r}; known: {', '.join(DATASTORES)}"
        )
    return cls(
        generation=generation,
        profile=profile,
        seed=seed,
        eadr=eadr,
        ait_pressure=ait_pressure,
    )
