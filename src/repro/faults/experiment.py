"""Crash campaigns as registry experiments for the sweep runner.

:func:`run_crashtest` has the runner's uniform shape — module-level,
picklable, ``(generation, profile, **overrides) -> list[ExperimentReport]``
— so ``repro crashtest`` reuses the PR-1 process pool and on-disk
result cache exactly like the figure experiments do.
"""

from __future__ import annotations

from functools import partial

from repro.common.errors import ConfigError
from repro.experiments.common import ExperimentReport, check_profile
from repro.faults.campaign import FAULT_MODES, CampaignConfig, FaultCampaignReport, run_campaign
from repro.faults.schedule import InjectionSchedule
from repro.faults.validators import validator_for
from repro.faults.workloads import DATASTORES, make_workload


def run_crashtest_campaign(
    datastore: str,
    generation: int = 1,
    profile: str = "fast",
    points: str | None = None,
    seed: int = 7,
    fault_mode: str = "power-loss",
) -> FaultCampaignReport:
    """Run one campaign and return the full FaultCampaignReport.

    ``points`` is schedule syntax (``exhaustive`` / ``sample:N``);
    None defaults to exhaustive — the shipped workloads are small
    enough that full coverage is the sensible default.
    """
    check_profile(profile)
    if fault_mode not in FAULT_MODES:
        raise ConfigError(
            f"unknown fault mode {fault_mode!r}; known: {', '.join(FAULT_MODES)}"
        )
    schedule = InjectionSchedule.parse(points if points is not None else "exhaustive", seed=seed)
    config = CampaignConfig(
        name=datastore,
        factory=partial(
            make_workload,
            datastore,
            generation=generation,
            profile=profile,
            seed=seed,
            eadr=fault_mode == "eadr",
            ait_pressure=fault_mode == "ait-miss",
        ),
        validator=validator_for(datastore),
        schedule=schedule,
        fault_mode=fault_mode,
        seed=seed,
        generation=generation,
    )
    return run_campaign(config)


def run_crashtest(
    generation: int,
    profile: str,
    datastore: str = "linkedlist",
    points: str | None = None,
    seed: int = 7,
    fault_mode: str = "power-loss",
) -> list[ExperimentReport]:
    """Registry entry point: one campaign as an ExperimentReport list."""
    if datastore not in DATASTORES:
        raise ConfigError(
            f"unknown crash datastore {datastore!r}; known: {', '.join(DATASTORES)}"
        )
    campaign = run_crashtest_campaign(
        datastore,
        generation=generation,
        profile=profile,
        points=points,
        seed=seed,
        fault_mode=fault_mode,
    )
    return [campaign.as_experiment_report()]
