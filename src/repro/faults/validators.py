"""Per-datastore recovery validation after an injected crash.

A :class:`RecoveryValidator` answers two questions about a crashed
workload:

1. **No lost committed update** — did the crash destroy any cacheline
   the workload had claimed durable (flush accepted before a fence)?
   This comes straight from the
   :class:`~repro.persist.crash.DurabilityChecker` ledger the event
   tap maintained, compared against the crash report.
2. **Structural integrity** — after running the datastore's recovery
   procedure (e.g. redo-log replay), do its invariants hold and is
   every operation that completed before the crash still visible?

The two losses a crash report can carry are classified differently:
committed lines lost from the *CPU caches* mean the datastore claimed
durability it never had — a missing persistence barrier, status
``violation``.  Committed lines destroyed *inside* the ADR domain by
an injected fault (torn XPLine, exhausted drain budget) are platform
damage no barrier discipline can prevent — status ``beyond-adr-loss``.
"""

from __future__ import annotations

from repro.common.errors import DataStoreError, KeyNotFoundError
from repro.datastores.base import NullCore
from repro.faults.workloads import CrashWorkload
from repro.persist.crash import CrashReport


class RecoveryValidator:
    """Base validator: ledger classification + structural hook."""

    def validate(self, instance: CrashWorkload, report: CrashReport) -> tuple[str, tuple[str, ...]]:
        """Classify one crash point; returns ``(status, problems)``.

        ``status`` is ``"ok"``, ``"violation"`` (datastore bug), or
        ``"beyond-adr-loss"`` (injected platform damage).  The ledger
        is checked *before* recovery runs, since recovery legitimately
        commits new lines.
        """
        violations = instance.checker.violations_against(report)
        cache_lost = violations & report.lost_pm_lines
        torn_lost = violations & report.torn_pm_lines
        problems: list[str] = []
        if cache_lost:
            problems.append(
                f"{len(cache_lost)} committed cacheline(s) lost from the CPU "
                f"caches (missing barrier): {sorted(cache_lost)[:4]}"
            )
        if torn_lost:
            problems.append(
                f"{len(torn_lost)} committed cacheline(s) destroyed by the "
                f"injected {report.mode} fault: {sorted(torn_lost)[:4]}"
            )
        structural = self.recover_and_check(instance, report)
        problems.extend(structural)
        if cache_lost or (structural and not report.torn_pm_lines):
            status = "violation"
        elif torn_lost or structural:
            status = "beyond-adr-loss"
        else:
            status = "ok"
        return status, tuple(problems)

    def recover_and_check(self, instance: CrashWorkload, report: CrashReport) -> list[str]:
        """Run recovery and check invariants; returns problem strings."""
        raise NotImplementedError


class LinkedListValidator(RecoveryValidator):
    """The circular list needs no recovery: the chain must just hold."""

    def recover_and_check(self, instance: CrashWorkload, report: CrashReport) -> list[str]:
        """Check the Hamiltonian-cycle invariant."""
        try:
            instance.datastore.verify_cycle()
        except DataStoreError as error:
            return [f"linked list structure broken: {error}"]
        return []


class BtreeValidator(RecoveryValidator):
    """Redo-log replay, tree invariants, and completed-key reachability."""

    def recover_and_check(self, instance: CrashWorkload, report: CrashReport) -> list[str]:
        """Replay committed-but-unapplied logs, then audit the tree."""
        problems: list[str] = []
        recovery_core = instance.machine.new_core("recovery")
        for log in instance.datastore._logs.values():
            # The workload's core died with the crash; recovery replays
            # the log's pending records through a fresh core.
            log.core = recovery_core
            log.recover()
        try:
            instance.datastore.check_invariants()
        except DataStoreError as error:
            problems.append(f"B+-tree invariants violated: {error}")
        quiet = NullCore()
        for key in instance.completed_keys:
            try:
                instance.datastore.get(key, quiet)
            except KeyNotFoundError:
                problems.append(f"completed insert of key {key} not found after recovery")
        return problems


class CcehValidator(RecoveryValidator):
    """Directory/segment invariants and completed-key reachability."""

    def recover_and_check(self, instance: CrashWorkload, report: CrashReport) -> list[str]:
        """Check CCEH invariants and that completed inserts are visible."""
        problems: list[str] = []
        try:
            instance.datastore.check_invariants()
        except DataStoreError as error:
            problems.append(f"CCEH invariants violated: {error}")
        quiet = NullCore()
        for key in instance.completed_keys:
            if not instance.datastore.contains(key, quiet):
                problems.append(f"completed insert of key {key} not found after recovery")
        return problems


_VALIDATORS = {
    "linkedlist": LinkedListValidator,
    "btree": BtreeValidator,
    "cceh": CcehValidator,
}


def validator_for(datastore: str) -> RecoveryValidator:
    """The shipped validator for one of the known datastores."""
    return _VALIDATORS[datastore]()
