"""Crash-point selection: which events of a workload get a power cut.

For small workloads the campaign can afford to crash *after every
persistence event* (exhaustive coverage: if a missing-barrier window
exists anywhere in the run, some crash point lands inside it).  Larger
workloads get seeded-random sampling — distinct points drawn without
replacement, fully reproducible from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, DeterministicRng


@dataclass(frozen=True)
class InjectionSchedule:
    """How crash points are enumerated over a workload's event stream."""

    #: "exhaustive" or "sample".
    kind: str
    #: Number of points for the "sample" kind (ignored otherwise).
    sample_size: int = 0
    #: Seed for the sampling draw (ignored for "exhaustive").
    seed: int = DEFAULT_SEED

    @classmethod
    def parse(cls, text: str, seed: int = DEFAULT_SEED) -> "InjectionSchedule":
        """Build a schedule from CLI syntax: ``exhaustive`` or ``sample:N``."""
        if text == "exhaustive":
            return cls(kind="exhaustive", seed=seed)
        if text.startswith("sample:"):
            try:
                size = int(text.split(":", 1)[1])
            except ValueError:
                raise ConfigError(f"bad sample size in schedule {text!r}")
            if size <= 0:
                raise ConfigError("sample size must be positive")
            return cls(kind="sample", sample_size=size, seed=seed)
        raise ConfigError(
            f"unknown injection schedule {text!r}; use 'exhaustive' or 'sample:N'"
        )

    def describe(self) -> str:
        """The CLI syntax for this schedule (round-trips with parse)."""
        if self.kind == "exhaustive":
            return "exhaustive"
        return f"sample:{self.sample_size}"

    def points(self, total_events: int) -> list[int]:
        """Sorted crash-point indexes to inject, given the stream length.

        A sample larger than the stream degrades to exhaustive: every
        point is tested once, never twice.
        """
        if total_events <= 0:
            return []
        if self.kind == "exhaustive" or self.sample_size >= total_events:
            return list(range(total_events))
        rng = DeterministicRng(self.seed)
        return sorted(rng.sample(range(total_events), self.sample_size))
