"""Persistence-event tapping for crash-point fault injection.

A crash campaign needs two things from a running workload: the ordered
stream of *persistence-relevant* events (stores, flushes, nt-stores,
fences — loads cannot change what survives a crash), and the ability
to stop execution dead at a chosen event so a power failure can be
injected at exactly that point.

:class:`HookedCore` wraps a real :class:`~repro.system.machine.Core`
and satisfies the :class:`~repro.datastores.base.CoreLike` protocol,
so any shipped data store runs on it unmodified.  Each persistence
event is forwarded to an :class:`EventTap`, which

* assigns the event its global index (the campaign's crash-point id),
* maintains a :class:`~repro.persist.crash.DurabilityChecker` ledger
  from the event stream itself — a cacheline becomes *claimed durable*
  when a flush of it is followed by a fence, and the claim is retracted
  when the line is re-dirtied by a later store (the cached new version
  is legitimately volatile until the next barrier), and
* raises :class:`CrashPointReached` once the configured stop point has
  executed, freezing the machine in exactly the state an adversarial
  power cut would find.

Because the simulator is fully deterministic, "snapshot at event k" is
implemented as "replay the workload from scratch and stop at k" —
no machine deep-copying required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE, cacheline_index
from repro.common.errors import ReproError
from repro.persist.crash import DurabilityChecker


class CrashPointReached(ReproError):
    """Raised by :class:`EventTap` when the stop event has executed.

    Control-flow exception, not an error: the campaign catches it to
    inject the power failure while the workload is frozen mid-flight.
    """


@dataclass(frozen=True)
class PersistEvent:
    """One persistence-relevant operation in program order."""

    #: Global index in the event stream — the crash-point identifier.
    index: int
    #: "store" | "nt_store" | "clwb" | "clflushopt" | "fence".
    kind: str
    #: Target byte address (0 for fences).
    addr: int
    #: Bytes touched (0 for fences).
    size: int
    #: Which workload operation (insert #, list step #) issued it.
    op_index: int

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        if self.kind == "fence":
            return f"#{self.index} fence (op {self.op_index})"
        return f"#{self.index} {self.kind} {self.addr:#x}+{self.size} (op {self.op_index})"


def _lines(addr: int, size: int) -> range:
    """Cacheline indexes covered by [addr, addr+size)."""
    first = cacheline_index(addr)
    last = cacheline_index(addr + max(size, 1) - 1)
    return range(first, last + 1)


class EventTap:
    """Records persistence events and arms one crash point.

    ``stop_at=None`` records the full stream (the campaign's dry run,
    used to count events); ``stop_at=k`` raises
    :class:`CrashPointReached` immediately *after* event ``k`` has
    taken effect on the machine and on the ledger — a crash at point
    ``k`` means "power failed just after event k".
    """

    def __init__(self, checker: DurabilityChecker | None = None, stop_at: int | None = None) -> None:
        """Create a tap feeding ``checker`` (a fresh one if None)."""
        self.checker = checker if checker is not None else DurabilityChecker()
        self.stop_at = stop_at
        self.events: list[PersistEvent] = []
        self.op_index = 0
        #: Cachelines flushed (or nt-stored) since the last fence:
        #: accepted toward durability but not yet claimed.
        self._pending_lines: set[int] = set()

    @property
    def count(self) -> int:
        """Number of events recorded so far."""
        return len(self.events)

    @property
    def last_event(self) -> PersistEvent | None:
        """The most recent event (None before the first)."""
        return self.events[-1] if self.events else None

    def next_op(self) -> None:
        """Advance the workload-operation counter (called between ops)."""
        self.op_index += 1

    # -- event intake (called by HookedCore) -------------------------------

    def on_store(self, addr: int, size: int) -> None:
        """A cached store: re-dirties lines, retracting their claims."""
        for line in _lines(addr, size):
            self._pending_lines.discard(line)
        self.checker.retract(addr, size)
        self._record("store", addr, size)

    def on_flush(self, kind: str, addr: int, size: int) -> None:
        """A clwb/clflushopt/nt-store: lines head toward durability."""
        self._pending_lines.update(_lines(addr, size))
        self._record(kind, addr, size)

    def on_fence(self) -> None:
        """A fence: everything flushed since the last fence is durable."""
        for line in self._pending_lines:
            self.checker.commit(line * CACHELINE_SIZE, CACHELINE_SIZE)
        self._pending_lines.clear()
        self._record("fence", 0, 0)

    def _record(self, kind: str, addr: int, size: int) -> None:
        event = PersistEvent(
            index=len(self.events), kind=kind, addr=addr, size=size, op_index=self.op_index
        )
        self.events.append(event)
        if self.stop_at is not None and event.index >= self.stop_at:
            raise CrashPointReached(event.describe())


class HookedCore:
    """A CoreLike proxy that mirrors persistence events into a tap.

    Every operation executes on the wrapped core *first* (so the
    machine state is exactly what the real workload produces), then the
    event is reported.  Loads and ticks pass through silently: they
    cannot change what a crash destroys, and skipping them keeps the
    crash-point space small enough to enumerate exhaustively.
    """

    def __init__(self, core, tap: EventTap) -> None:
        """Wrap ``core``, reporting its persistence events to ``tap``."""
        self._core = core
        self.tap = tap

    @property
    def now(self) -> float:
        """The wrapped core's local clock."""
        return self._core.now

    # -- silent passthroughs ----------------------------------------------

    def load(self, addr: int, size: int = 8) -> float:
        """Forward a load (no event: loads do not affect durability)."""
        return self._core.load(addr, size)

    def tick(self, cycles: float) -> None:
        """Forward pure compute time."""
        self._core.tick(cycles)

    # -- tapped operations -------------------------------------------------

    def store(self, addr: int, size: int = 8) -> float:
        """Forward a cached store, then report it."""
        cost = self._core.store(addr, size)
        self.tap.on_store(addr, size)
        return cost

    def nt_store(self, addr: int, size: int = 64) -> float:
        """Forward a non-temporal store, then report it as a flush."""
        cost = self._core.nt_store(addr, size)
        self.tap.on_flush("nt_store", addr, size)
        return cost

    def clwb(self, addr: int, size: int = 64) -> float:
        """Forward a clwb, then report it."""
        cost = self._core.clwb(addr, size)
        self.tap.on_flush("clwb", addr, size)
        return cost

    def clflushopt(self, addr: int, size: int = 64) -> float:
        """Forward a clflushopt, then report it."""
        cost = self._core.clflushopt(addr, size)
        self.tap.on_flush("clflushopt", addr, size)
        return cost

    def sfence(self) -> float:
        """Forward an sfence, then report it."""
        cost = self._core.sfence()
        self.tap.on_fence()
        return cost

    def mfence(self) -> float:
        """Forward an mfence, then report it."""
        cost = self._core.mfence()
        self.tap.on_fence()
        return cost

    def fence(self, kind: str = "sfence") -> float:
        """Forward a fence by name, then report it."""
        cost = self._core.fence(kind)
        self.tap.on_fence()
        return cost
