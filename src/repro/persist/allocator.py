"""Persistent-memory allocator over a simulated region.

Data structures (CCEH, the B+-tree, linked lists) need addresses in a
mapped region.  :class:`RegionAllocator` is a bump allocator with
size-class free lists — enough to support allocate/free churn in the
case studies while keeping placement deterministic (allocation order
fully determines layout, which the experiments rely on).
"""

from __future__ import annotations

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.errors import AllocationError
from repro.system.machine import Machine


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class RegionAllocator:
    """Bump-plus-freelist allocator for one memory region."""

    def __init__(self, machine: Machine, region: str = "pm") -> None:
        """Bind the allocator to one named region of ``machine``."""
        spec = machine.region_spec(region)
        self.machine = machine
        self.region_name = region
        self.base = spec.base
        self.end = spec.end
        self._cursor = spec.base
        self._free_lists: dict[int, list[int]] = {}
        self.allocated_bytes = 0
        self.freed_bytes = 0

    def alloc(self, size: int, align: int = CACHELINE_SIZE) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns the address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment must be a positive power of two, got {align}")
        size = _align_up(size, align)
        free_list = self._free_lists.get(size)
        if free_list:
            addr = free_list.pop()
            if addr % align == 0:
                self.allocated_bytes += size
                return addr
            free_list.append(addr)
        addr = _align_up(self._cursor, align)
        if addr + size > self.end:
            raise AllocationError(
                f"region {self.region_name!r} exhausted: need {size} bytes at {addr:#x}"
            )
        self._cursor = addr + size
        self.allocated_bytes += size
        return addr

    def alloc_xpline(self, size: int = XPLINE_SIZE) -> int:
        """Allocate XPLine-aligned memory (the granularity-matching case)."""
        return self.alloc(size, align=XPLINE_SIZE)

    def free(self, addr: int, size: int, align: int = CACHELINE_SIZE) -> None:
        """Return a block to the size-class free list."""
        size = _align_up(size, align)
        if not (self.base <= addr < self.end):
            raise AllocationError(f"free of {addr:#x} outside region {self.region_name!r}")
        self._free_lists.setdefault(size, []).append(addr)
        self.freed_bytes += size

    @property
    def bytes_in_use(self) -> int:
        """Live allocation footprint."""
        return self.allocated_bytes - self.freed_bytes

    @property
    def high_water_mark(self) -> int:
        """One past the highest address ever handed out."""
        return self._cursor


class PmHeap:
    """Paired PM and DRAM allocators, as persistent programs use them.

    Case studies place durable structures on PM and scratch state
    (DRAM address arrays, staging buffers, DRAM log mirrors) on DRAM.
    """

    def __init__(self, machine: Machine, pm_region: str = "pm", dram_region: str = "dram") -> None:
        """Create paired PM and DRAM allocators over ``machine``."""
        self.machine = machine
        self.pm = RegionAllocator(machine, pm_region)
        self.dram = RegionAllocator(machine, dram_region)
