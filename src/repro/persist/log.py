"""Redo logging on simulated persistent memory (paper Section 4.2).

The B+-tree case study replaces in-place key shifting (repeated
flush + read of the *same* cacheline — the read-after-persist worst
case) with out-of-place redo logging:

* each update is recorded in its own log-entry cacheline on PM and
  persisted immediately (matching the baseline's persist count);
* updates are mirrored in a DRAM copy of the log;
* once all updates for a cacheline are logged, an 8-byte commit flag
  is atomically written and persisted;
* the DRAM mirror is then written back to the original location, and
  the flag is cleared so the log space can be reclaimed.

The performance point: every *PM write goes to a fresh cacheline*, so
no load ever targets a line with an in-flight persist — the RAP stall
disappears even though total PM writes double.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE
from repro.common.errors import DataStoreError
from repro.persist.allocator import PmHeap
from repro.system.machine import Core


@dataclass
class LogRecord:
    """Bookkeeping for one logged update (simulation-side metadata)."""

    target_addr: int
    length: int


class RedoLog:
    """A circular redo log with one entry per cacheline."""

    def __init__(self, core: Core, heap: PmHeap, capacity_entries: int = 64) -> None:
        """Allocate log storage on ``heap``; appends run on ``core``."""
        if capacity_entries <= 0:
            raise DataStoreError("redo log needs at least one entry")
        self.core = core
        self.capacity = capacity_entries
        # One cacheline per entry, plus one cacheline for the commit flag.
        self._entries_base = heap.pm.alloc(capacity_entries * CACHELINE_SIZE, align=CACHELINE_SIZE)
        self._flag_addr = heap.pm.alloc(CACHELINE_SIZE, align=CACHELINE_SIZE)
        self._mirror_base = heap.dram.alloc(capacity_entries * CACHELINE_SIZE, align=CACHELINE_SIZE)
        self._cursor = 0
        self._pending: list[LogRecord] = []
        self.committed_batches = 0
        self.logged_updates = 0

    @property
    def pending_count(self) -> int:
        """Updates logged but not yet committed."""
        return len(self._pending)

    def append(self, target_addr: int, length: int = 8, fence: str = "sfence") -> None:
        """Log one update out-of-place and persist the entry immediately.

        Matches the paper's setup: "we persist each log entry
        immediately after it is written", so the persist count equals
        the in-place baseline's.
        """
        if len(self._pending) >= self.capacity:
            raise DataStoreError("redo log overflow: commit before appending more")
        entry_addr = self._entries_base + self._cursor * CACHELINE_SIZE
        mirror_addr = self._mirror_base + self._cursor * CACHELINE_SIZE
        self._cursor = (self._cursor + 1) % self.capacity
        # Entry on PM: address + value + length, one fresh cacheline.
        self.core.store(entry_addr, size=CACHELINE_SIZE)
        self.core.clwb(entry_addr)
        self.core.fence(fence)
        # DRAM mirror of the same record (cheap cached store).
        self.core.store(mirror_addr, size=CACHELINE_SIZE)
        self._pending.append(LogRecord(target_addr, length))
        self.logged_updates += 1

    def commit(self, fence: str = "sfence") -> None:
        """Atomically mark the logged batch durable (8-byte flag write)."""
        self.core.store(self._flag_addr, size=8)
        self.core.clwb(self._flag_addr)
        self.core.fence(fence)
        self.committed_batches += 1

    def apply_and_reclaim(self, fence: str = "sfence") -> list[LogRecord]:
        """Write the DRAM mirror back to the home locations; clear the flag.

        The write-back targets the original cachelines with ordinary
        cached stores (no flush — durability is already guaranteed by
        the committed log; the home copy is lazily persisted).
        Returns the applied records, mostly for tests.
        """
        applied = list(self._pending)
        for record in applied:
            self.core.store(record.target_addr, size=record.length)
        self.core.store(self._flag_addr, size=8)
        self.core.clwb(self._flag_addr)
        self.core.fence(fence)
        self._pending.clear()
        return applied

    def recover(self) -> list[LogRecord]:
        """Crash recovery: replay records of a committed, unapplied batch."""
        replayed = list(self._pending)
        for record in replayed:
            self.core.store(record.target_addr, size=record.length)
            self.core.clwb(record.target_addr)
        self.core.fence("sfence")
        self._pending.clear()
        return replayed
