"""Persistency models (paper Section 3.6).

The paper contrasts the two extremes of the persistency spectrum:

* **strict** — every write is immediately followed by a persistence
  barrier (flush + fence), totally ordering persists;
* **relaxed** — writes and flushes issue freely; one fence at the end
  of an epoch (here: one pass over the working set) orders everything
  at once.

:class:`Persister` wraps a core with a configured (model, flush
instruction, fence instruction) triple so that benchmark kernels can
be written once and swept over all combinations the paper measures:
clwb vs nt-store, sfence vs mfence, strict vs relaxed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.system.machine import Core


class PersistencyModel(enum.Enum):
    """How aggressively persists are ordered.

    STRICT and RELAXED are the paper's two measured extremes (§3.6);
    EPOCH is the intermediate model of Pelley et al. [24] the paper
    cites — writes within an epoch reorder freely, a fence closes each
    epoch.  Epoch length is configured on the :class:`Persister`.
    """

    STRICT = "strict"
    RELAXED = "relaxed"
    EPOCH = "epoch"


class FlushKind(enum.Enum):
    """Which instruction publishes a dirty line to the ADR domain."""

    CLWB = "clwb"
    CLFLUSHOPT = "clflushopt"
    NT_STORE = "nt-store"
    #: eADR programming model (paper §6): the caches are persistent,
    #: so no flush instruction is issued at all — fences only order.
    NONE = "none"


class FenceKind(enum.Enum):
    """Which fence orders the flushes."""

    SFENCE = "sfence"
    MFENCE = "mfence"


@dataclass(frozen=True)
class PersistConfig:
    """A (model, flush, fence) point in the persistency design space."""

    model: PersistencyModel = PersistencyModel.STRICT
    flush: FlushKind = FlushKind.CLWB
    fence: FenceKind = FenceKind.SFENCE
    #: Writes per epoch under the EPOCH model (ignored otherwise).
    epoch_size: int = 8

    @property
    def label(self) -> str:
        """Human-readable configuration name (used in report series)."""
        if self.model is PersistencyModel.EPOCH:
            return f"{self.flush.value}+{self.fence.value}/epoch{self.epoch_size}"
        return f"{self.flush.value}+{self.fence.value}/{self.model.value}"


class Persister:
    """Executes persistent writes on a core under one PersistConfig."""

    def __init__(self, core: Core, config: PersistConfig) -> None:
        """Wrap ``core`` so writes follow ``config``'s flush/fence rules."""
        self.core = core
        self.config = config
        self.persisted_writes = 0

    def write(self, addr: int, size: int = 8) -> None:
        """One persistent write of ``size`` bytes at ``addr``.

        Under nt-store the data bypasses the caches entirely; otherwise
        a regular store is followed by the configured flush.  Under the
        strict model a fence follows immediately; under the relaxed
        model the caller fences via :meth:`epoch_end`.
        """
        self.persisted_writes += 1
        if self.config.flush is FlushKind.NT_STORE:
            self.core.nt_store(addr, size)
        elif self.config.flush is FlushKind.NONE:
            self.core.store(addr, size)  # eADR: the store is enough
        else:
            self.core.store(addr, size)
            if self.config.flush is FlushKind.CLWB:
                self.core.clwb(addr, size)
            else:
                self.core.clflushopt(addr, size)
        if self.config.model is PersistencyModel.STRICT:
            self.fence()
        elif self.config.model is PersistencyModel.EPOCH:
            if self.persisted_writes % max(self.config.epoch_size, 1) == 0:
                self.fence()

    def fence(self) -> None:
        """Issue the configured fence."""
        self.core.fence(self.config.fence.value)

    def epoch_end(self) -> None:
        """Order everything issued so far (relaxed-model epoch boundary).

        Harmless (one extra fence) under the strict model.
        """
        self.fence()
