"""Persistence programming layer: allocation, persistency models, logging."""

from repro.persist.allocator import PmHeap, RegionAllocator
from repro.persist.crash import CrashReport, CrashSimulator, DurabilityChecker, FaultMode
from repro.persist.log import LogRecord, RedoLog
from repro.persist.persistency import (
    FenceKind,
    FlushKind,
    PersistConfig,
    PersistencyModel,
    Persister,
)

__all__ = [
    "PmHeap",
    "RegionAllocator",
    "CrashReport",
    "CrashSimulator",
    "DurabilityChecker",
    "FaultMode",
    "LogRecord",
    "RedoLog",
    "FenceKind",
    "FlushKind",
    "PersistConfig",
    "PersistencyModel",
    "Persister",
]
