"""Power-failure simulation over the ADR domain (paper Section 2.1).

The ADR (asynchronous DRAM refresh) guarantee: stores that have reached
the iMC's write pending queue or the on-DIMM write buffer are flushed
to the 3D-XPoint media on power failure; everything still in the CPU
caches is lost (the paper's testbeds run with eADR disabled, so this
holds for both generations).

:class:`CrashSimulator` applies exactly that, in ADR order: it first
drains every PM DIMM's write buffer to the media (reporting
``drained_xplines`` per DIMM), then discards the CPU caches (reporting
which *dirty PM lines* were lost), and finally clears pending iMC
WPQ/in-flight state.  Paired with :class:`DurabilityChecker`,
data-structure tests can assert the crash-consistency discipline the
paper's structures rely on: an address that was explicitly persisted
(flush accepted before a fence) is never among the lost lines.

Beyond the clean power loss, :class:`FaultMode` adds two transient
beyond-ADR faults used by :mod:`repro.faults`:

* ``torn-xpline`` — the drain is interrupted mid-write-buffer and one
  buffered XPLine's dirty slots never reach the media (a torn 256 B
  write);
* ``ait-miss`` — AIT-cache misses during the drain slow it down past
  the residual-power budget, so the tail of the buffer is lost.

Lines destroyed by either fault are reported separately in
``CrashReport.torn_pm_lines`` so recovery validators can distinguish a
datastore bug (a missing persistence barrier) from injected platform
damage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE, cacheline_index
from repro.common.errors import AddressError, ConfigError, RecoveryError
from repro.common.rng import DeterministicRng
from repro.system.machine import Machine

#: Cacheline slots per XPLine (4 with 64 B lines and 256 B XPLines).
_SLOTS_PER_XPLINE = XPLINE_SIZE // CACHELINE_SIZE


class FaultMode(enum.Enum):
    """How the power failure interacts with the ADR drain.

    ``CLEAN`` is the ADR contract working as specified.  The other two
    model transient platform faults *beyond* ADR: data the fence
    semantics promised durable can still be destroyed, and validators
    are expected to classify the resulting losses as injected damage
    rather than datastore bugs.
    """

    CLEAN = "power-loss"
    TORN_XPLINE = "torn-xpline"
    AIT_MISS = "ait-miss"

    @classmethod
    def parse(cls, value: "FaultMode | str") -> "FaultMode":
        """Normalize a mode given as an enum member or its string value."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ConfigError(
            f"unknown fault mode {value!r}; known: "
            + ", ".join(member.value for member in cls)
        )


def _xpline_cachelines(xpline: int, mask: int) -> set[int]:
    """Cacheline indexes of the slots selected by ``mask`` in ``xpline``."""
    return {
        xpline * _SLOTS_PER_XPLINE + slot
        for slot in range(_SLOTS_PER_XPLINE)
        if mask & (1 << slot)
    }


@dataclass(frozen=True)
class CrashReport:
    """What a power failure destroyed and preserved."""

    #: Dirty PM cachelines that existed only in the CPU caches — gone.
    lost_pm_lines: frozenset[int]
    #: Dirty DRAM lines also die, but DRAM content is volatile anyway.
    lost_dram_lines: frozenset[int]
    #: XPLines the ADR drain pushed from write buffers to the media,
    #: per PM DIMM (name, count) — includes eADR-flushed lines.
    drained_by_dimm: tuple[tuple[str, int], ...] = ()
    #: PM cachelines destroyed *inside* the ADR domain by an injected
    #: beyond-ADR fault (torn XPLine, exhausted drain budget).  These
    #: were accepted before a fence and are still lost.
    torn_pm_lines: frozenset[int] = frozenset()
    #: Dirty PM cachelines the eADR platform routine flushed (paper §6).
    eadr_flushed_lines: int = 0
    #: The fault mode that produced this report.
    mode: str = FaultMode.CLEAN.value

    @property
    def drained_xplines(self) -> int:
        """Total XPLines drained across every PM DIMM."""
        return sum(count for _, count in self.drained_by_dimm)

    def lost_addresses(self) -> set[int]:
        """Byte addresses (line bases) of lost PM lines."""
        return {line * CACHELINE_SIZE for line in self.lost_pm_lines}

    def destroyed_pm_lines(self) -> frozenset[int]:
        """Every PM line that did not survive: cache losses + torn lines."""
        return self.lost_pm_lines | self.torn_pm_lines


class CrashSimulator:
    """Injects power failures into a machine."""

    def __init__(self, machine: Machine) -> None:
        """Attach the simulator to ``machine`` (crashes count up)."""
        self.machine = machine
        self.crashes = 0

    def power_failure(
        self,
        now: float = 0.0,
        mode: FaultMode | str = FaultMode.CLEAN,
        rng: DeterministicRng | None = None,
    ) -> CrashReport:
        """Cut power: ADR drains the buffers, the caches evaporate.

        The drain follows ADR ordering — on-DIMM buffers are flushed to
        the media *before* the CPU caches are discarded — and pending
        iMC WPQ/in-flight state is cleared last, once everything the
        queues accepted has reached the device.

        ``mode`` selects a :class:`FaultMode`; the beyond-ADR modes use
        ``rng`` (victim choice for ``torn-xpline``) and report the
        destroyed lines in ``torn_pm_lines``.  With eADR enabled
        (paper §6), dirty PM cachelines are flushed by the platform
        instead of being lost, then drained like any buffered write.
        """
        self.crashes += 1
        mode = FaultMode.parse(mode)
        machine = self.machine
        torn: set[int] = set()

        pm_channels = [
            channel
            for region in machine._regions
            if region.spec.kind == "pm"
            for channel in region.channels
        ]

        # 1. Beyond-ADR fault injection happens against the pre-drain
        #    buffer state: pick the casualties before draining.
        if mode is FaultMode.TORN_XPLINE:
            torn |= self._tear_one_xpline(pm_channels, rng)
        elif mode is FaultMode.AIT_MISS:
            for channel in pm_channels:
                torn |= self._exhaust_drain_budget(channel)

        # 2. ADR drain: buffers reach the media before anything else is
        #    discarded.  Per-DIMM counts keyed by device name.
        drained: dict[str, int] = {}
        for channel in pm_channels:
            drained[channel.device.name] = channel.device.drain_for_power_failure(now)

        # 3. The CPU caches evaporate.  Under eADR the platform routine
        #    flushes dirty PM lines into the (already drained) write
        #    buffers first; everything else is lost.
        lost_pm: set[int] = set()
        lost_dram: set[int] = set()
        eadr_flushed = 0
        for line in machine.caches.dirty_lines():
            addr = line * CACHELINE_SIZE
            try:
                region = machine.region_of(addr)
            except AddressError:
                continue
            if region.spec.kind == "pm":
                if machine.config.eadr:
                    region.channel_for(addr).write(now, addr)
                    eadr_flushed += 1
                else:
                    lost_pm.add(line)
            else:
                lost_dram.add(line)
        machine.caches.clear()

        # 4. A second drain pass pushes whatever eADR just flushed.
        if eadr_flushed:
            for channel in pm_channels:
                drained[channel.device.name] = drained.get(
                    channel.device.name, 0
                ) + channel.device.drain_for_power_failure(now)

        # 5. The iMC queues lose power last: every accepted write has
        #    been pushed to the device above, so clearing the WPQ and
        #    the in-flight persist tracker loses nothing.
        for region in machine._regions:
            for channel in region.channels:
                channel.power_cycle()

        return CrashReport(
            lost_pm_lines=frozenset(lost_pm),
            lost_dram_lines=frozenset(lost_dram),
            drained_by_dimm=tuple(sorted(drained.items())),
            torn_pm_lines=frozenset(torn),
            eadr_flushed_lines=eadr_flushed,
            mode=mode.value,
        )

    # -- beyond-ADR fault helpers -----------------------------------------

    def _tear_one_xpline(self, pm_channels: list, rng: DeterministicRng | None) -> set[int]:
        """Discard one buffered XPLine mid-drain; returns its dead lines.

        Victim preference follows the physical story: a *partially*
        dirty XPLine is mid-write-combine and most plausibly torn; a
        fully dirty one is the fallback.  ``rng=None`` picks the most
        recently installed candidate deterministically.
        """
        candidates: list[tuple[object, int]] = []
        fallback: list[tuple[object, int]] = []
        for channel in pm_channels:
            buffer = channel.device.write_buffer
            for xpline in buffer.resident_xplines():
                entry = buffer.entry(xpline)
                (fallback if entry.fully_dirty else candidates).append((channel, xpline))
        pool = candidates or fallback
        if not pool:
            return set()
        index = rng.choice_index(len(pool)) if rng is not None else len(pool) - 1
        channel, xpline = pool[index]
        entry = channel.device.write_buffer.discard(xpline)
        return _xpline_cachelines(xpline, entry.dirty_mask)

    def _exhaust_drain_budget(self, channel) -> set[int]:
        """Model AIT-cache misses eating the residual-power drain budget.

        The ADR hold-up energy is sized for a clean drain: each
        buffered XPLine costs one media write (RMW-weighted when it
        needs an underfill read).  An XPLine whose AIT translation
        granule is *not* resident pays the miss penalty on top; once
        the cumulative cost exceeds the clean-drain budget, the rest of
        the buffer never reaches the media.  Returns the dead lines.
        """
        device = channel.device
        buffer = device.write_buffer
        media = device.media
        resident = buffer.resident_xplines()
        if not resident:
            return set()
        base_cost = []
        for xpline in resident:
            entry = buffer.entry(xpline)
            cost = media.config.write_latency
            if not entry.fully_present:
                cost *= media.config.rmw_factor
            base_cost.append(cost)
        budget = sum(base_cost)
        spent = 0.0
        dead: set[int] = set()
        for xpline, cost in zip(resident, base_cost):
            addr = xpline * XPLINE_SIZE
            if not media.ait.covers(addr):
                cost += media.config.ait.miss_penalty
            spent += cost
            if spent > budget:
                entry = buffer.discard(xpline)
                dead |= _xpline_cachelines(xpline, entry.dirty_mask)
        return dead


class DurabilityChecker:
    """Tracks addresses an application has *committed* as durable.

    A data structure calls :meth:`commit` after its persistence barrier
    returns for an address range.  After a crash,
    :meth:`verify_against` raises :class:`RecoveryError` if any
    committed line was among the lost dirty lines — i.e., the structure
    claimed durability it did not have.  :meth:`retract` withdraws a
    claim when the line is deliberately re-dirtied and its durability
    is guaranteed by other means (e.g. a committed redo-log entry).
    """

    def __init__(self) -> None:
        """Start with an empty ledger."""
        self._committed_lines: set[int] = set()

    def commit(self, addr: int, size: int = 8) -> None:
        """Mark [addr, addr+size) as claimed-durable."""
        first = cacheline_index(addr)
        last = cacheline_index(addr + max(size, 1) - 1)
        self._committed_lines.update(range(first, last + 1))

    def retract(self, addr: int, size: int = 8) -> None:
        """Withdraw the durability claim over [addr, addr+size).

        Used when a committed line is re-dirtied in place: the cached
        new version is legitimately volatile until the next barrier, so
        losing it in a crash is not a violation.
        """
        first = cacheline_index(addr)
        last = cacheline_index(addr + max(size, 1) - 1)
        self._committed_lines.difference_update(range(first, last + 1))

    @property
    def committed_count(self) -> int:
        """Number of cachelines claimed durable so far."""
        return len(self._committed_lines)

    def violations_against(self, report: CrashReport) -> frozenset[int]:
        """Committed cachelines the crash destroyed (cache-lost or torn)."""
        return frozenset(self._committed_lines & report.destroyed_pm_lines())

    def verify_against(self, report: CrashReport) -> None:
        """Raise if a committed line was lost in the crash."""
        violations = self.violations_against(report)
        if violations:
            torn = violations & report.torn_pm_lines
            detail = (
                f" ({len(torn)} destroyed by the injected {report.mode} fault)"
                if torn
                else " — a missing persistence barrier"
            )
            raise RecoveryError(
                f"{len(violations)} committed cachelines were lost in the "
                f"crash (first few: {sorted(violations)[:5]}){detail}"
            )
