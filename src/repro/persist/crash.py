"""Power-failure simulation over the ADR domain (paper Section 2.1).

The ADR (asynchronous DRAM refresh) guarantee: stores that have reached
the iMC's write pending queue or the on-DIMM write buffer are flushed
to the 3D-XPoint media on power failure; everything still in the CPU
caches is lost (the paper's testbeds run with eADR disabled, so this
holds for both generations).

:class:`CrashSimulator` applies exactly that: it drains every PM
DIMM's write buffer to the media, discards the CPU caches (reporting
which *dirty PM lines* were lost), and clears in-flight state.  Paired
with :class:`DurabilityChecker`, data-structure tests can assert the
crash-consistency discipline the paper's structures rely on: an
address that was explicitly persisted (flush accepted before a fence)
is never among the lost lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import cacheline_index
from repro.common.errors import RecoveryError
from repro.system.machine import Machine


@dataclass(frozen=True)
class CrashReport:
    """What a power failure destroyed and preserved."""

    #: Dirty PM cachelines that existed only in the CPU caches — gone.
    lost_pm_lines: frozenset[int]
    #: Dirty DRAM lines also die, but DRAM content is volatile anyway.
    lost_dram_lines: frozenset[int]
    #: XPLines the ADR drain pushed from write buffers to the media.
    drained_xplines: int

    def lost_addresses(self) -> set[int]:
        """Byte addresses (line bases) of lost PM lines."""
        return {line * 64 for line in self.lost_pm_lines}


class CrashSimulator:
    """Injects power failures into a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.crashes = 0

    def power_failure(self, now: float = 0.0) -> CrashReport:
        """Cut power: ADR drains the buffers, the caches evaporate.

        With eADR enabled (paper §6), dirty PM cachelines are flushed
        by the platform instead of being lost.
        """
        self.crashes += 1
        machine = self.machine
        lost_pm: set[int] = set()
        lost_dram: set[int] = set()
        eadr_flushed = 0
        for line in machine.caches.dirty_lines():
            addr = line * 64
            try:
                region = machine.region_of(addr)
            except Exception:
                continue
            if region.spec.kind == "pm":
                if machine.config.eadr:
                    # The eADR BIOS routine flushes the line to the
                    # DIMM before the residual power runs out.
                    channel = region.channel_for(addr)
                    channel.write(now, addr)
                    eadr_flushed += 1
                else:
                    lost_pm.add(line)
            else:
                lost_dram.add(line)
        machine.caches.clear()

        drained = eadr_flushed // 4  # rough XPLine count for reporting
        for region in machine._regions:
            if region.spec.kind != "pm":
                continue
            for channel in region.channels:
                drained += channel.device.drain_for_power_failure(now)
                channel.inflight.clear()
        return CrashReport(
            lost_pm_lines=frozenset(lost_pm),
            lost_dram_lines=frozenset(lost_dram),
            drained_xplines=drained,
        )


class DurabilityChecker:
    """Tracks addresses an application has *committed* as durable.

    A data structure calls :meth:`commit` after its persistence barrier
    returns for an address range.  After a crash,
    :meth:`verify_against` raises :class:`RecoveryError` if any
    committed line was among the lost dirty lines — i.e., the structure
    claimed durability it did not have.
    """

    def __init__(self) -> None:
        self._committed_lines: set[int] = set()

    def commit(self, addr: int, size: int = 8) -> None:
        """Mark [addr, addr+size) as claimed-durable."""
        first = cacheline_index(addr)
        last = cacheline_index(addr + max(size, 1) - 1)
        self._committed_lines.update(range(first, last + 1))

    @property
    def committed_count(self) -> int:
        """Number of cachelines claimed durable so far."""
        return len(self._committed_lines)

    def verify_against(self, report: CrashReport) -> None:
        """Raise if a committed line was lost in the crash."""
        violations = self._committed_lines & report.lost_pm_lines
        if violations:
            raise RecoveryError(
                f"{len(violations)} committed cachelines were lost in the "
                f"crash (first few: {sorted(violations)[:5]}) — a missing "
                "persistence barrier"
            )
