"""Size and frequency unit helpers.

All sizes in the simulator are plain integers in bytes; these helpers
exist so that configuration code reads like the paper ("16 KB write
buffer", "27.5 MB L3", "128 GB DIMM").
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(n: float) -> int:
    """``n`` kibibytes as an integer byte count."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` mebibytes as an integer byte count."""
    return int(n * MIB)


def gib(n: float) -> int:
    """``n`` gibibytes as an integer byte count."""
    return int(n * GIB)


def fmt_size(nbytes: float) -> str:
    """Render a byte count the way the paper's axes do (4KB, 256KB, 16MB, 1GB)."""
    if nbytes >= GIB:
        value, suffix = nbytes / GIB, "GB"
    elif nbytes >= MIB:
        value, suffix = nbytes / MIB, "MB"
    elif nbytes >= KIB:
        value, suffix = nbytes / KIB, "KB"
    else:
        return f"{int(nbytes)}B"
    if value == int(value):
        return f"{int(value)}{suffix}"
    return f"{value:.1f}{suffix}"


def parse_size(text: str) -> int:
    """Parse ``"16KB"``-style strings back into byte counts.

    Accepts an optional ``B`` suffix and is case-insensitive, so
    ``16k``, ``16KB``, ``16KiB`` all mean 16384 bytes.
    """
    s = text.strip().lower().replace("ib", "b")
    multiplier = 1
    for suffix, factor in (("gb", GIB), ("mb", MIB), ("kb", KIB), ("b", 1)):
        if s.endswith(suffix):
            s = s[: -len(suffix)]
            multiplier = factor
            break
    else:
        for suffix, factor in (("g", GIB), ("m", MIB), ("k", KIB)):
            if s.endswith(suffix):
                s = s[: -len(suffix)]
                multiplier = factor
                break
    if not s:
        raise ValueError(f"no numeric part in size string: {text!r}")
    return int(float(s) * multiplier)
