"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch simulator problems without
masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A device or machine configuration is internally inconsistent."""


class AddressError(ReproError):
    """An access targeted an address outside any mapped region."""


class AlignmentError(AddressError):
    """An access violated a required alignment (cacheline / XPLine)."""


class AllocationError(ReproError):
    """The persistent-memory allocator ran out of space or was misused."""


class SimulationError(ReproError):
    """The discrete-event engine detected an impossible state."""


class DataStoreError(ReproError):
    """A persistent data structure (CCEH, B+-tree, ...) was misused."""


class KeyNotFoundError(DataStoreError, KeyError):
    """Lookup for a key that is not present in a data store."""


class RecoveryError(DataStoreError):
    """Crash-recovery found an inconsistency it cannot repair."""
