"""Architectural constants shared across the whole simulator.

The two load-bearing numbers of the paper are the CPU cacheline size
(64 bytes — the granularity at which the processor and the iMC move
data) and the 3D-XPoint media access granularity (256 bytes — one
*XPLine*).  Their mismatch is the root cause of read and write
amplification (paper, Section 2.1).
"""

from __future__ import annotations

#: CPU cacheline size in bytes.  Loads, stores, clwb/clflush and the
#: DDR-T protocol all operate at this granularity.
CACHELINE_SIZE = 64

#: 3D-XPoint media access granularity in bytes (an "XPLine").  Every
#: physical media read or write moves a whole XPLine.
XPLINE_SIZE = 256

#: Number of cachelines per XPLine (= 4).  RA/WA are bounded by this.
CACHELINES_PER_XPLINE = XPLINE_SIZE // CACHELINE_SIZE

#: Upper bound of read/write amplification (paper, Section 2.4).
MAX_AMPLIFICATION = float(CACHELINES_PER_XPLINE)

#: Bitmask with one bit per cacheline of an XPLine, all set.
FULL_XPLINE_MASK = (1 << CACHELINES_PER_XPLINE) - 1


def cacheline_index(addr: int) -> int:
    """Return the global cacheline index containing byte address ``addr``."""
    return addr // CACHELINE_SIZE


def cacheline_base(addr: int) -> int:
    """Return the base byte address of the cacheline containing ``addr``."""
    return addr & ~(CACHELINE_SIZE - 1)


def xpline_index(addr: int) -> int:
    """Return the global XPLine index containing byte address ``addr``."""
    return addr // XPLINE_SIZE


def xpline_base(addr: int) -> int:
    """Return the base byte address of the XPLine containing ``addr``."""
    return addr & ~(XPLINE_SIZE - 1)


def cacheline_slot_in_xpline(addr: int) -> int:
    """Return which of the 4 cacheline slots of its XPLine ``addr`` is in."""
    return (addr % XPLINE_SIZE) // CACHELINE_SIZE


def is_cacheline_aligned(addr: int) -> bool:
    """True if ``addr`` is 64-byte aligned."""
    return addr % CACHELINE_SIZE == 0


def is_xpline_aligned(addr: int) -> bool:
    """True if ``addr`` is 256-byte aligned."""
    return addr % XPLINE_SIZE == 0
