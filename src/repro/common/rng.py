"""Deterministic random number utilities.

Everything random in the simulator (write-buffer eviction victims,
workload key draws, randomized linked-list layouts) flows through a
:class:`DeterministicRng` seeded explicitly, so that every experiment
is exactly reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Seed used when a component is not given one explicitly.
DEFAULT_SEED = 0x0E7A9E  # "OTANE"-ish; any fixed value works.


class DeterministicRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    The wrapper exists to (a) force a seed to be chosen, (b) give the
    simulator a single choke point for randomness, and (c) provide the
    handful of draw shapes the library needs with readable names.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, stream: int) -> "DeterministicRng":
        """Return an independent RNG derived from this seed.

        Components that must not perturb each other's sequences (e.g.
        the workload generator vs. the write buffer's eviction draws)
        take forks with distinct ``stream`` ids.
        """
        return DeterministicRng((self.seed * 1_000_003 + stream) & 0xFFFFFFFF)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def choice_index(self, n: int) -> int:
        """Uniform index in [0, n)."""
        if n <= 0:
            raise ValueError("choice_index needs a positive population")
        return self._random.randrange(n)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy, leaving the input untouched."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """k distinct elements drawn without replacement."""
        return self._random.sample(list(items), k)
