"""Mutation-smoke knobs: flip a design choice, expect the right breakage.

A fidelity oracle is only trustworthy if it *fails* when the simulator
stops behaving like the paper's hardware.  Each :class:`Mutation` here
flips exactly one inferred design choice (the same knobs the ablation
studies exercise) via :func:`repro.system.presets.preset_overrides`
and declares which claims that flip must break.  ``repro validate
--expect-fail knob=value`` then runs the affected experiments under
the mutation and exits 0 only when the observed failures are exactly
the expected ones — an unexpectedly passing claim means the oracle
has no teeth for that property, an unexpectedly failing one means the
mutation had collateral the declaration missed.

Mutations run serially and uncached: the ambient override is
process-local (pool workers would not see it), and a mutated report
must never land in the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.common.constants import XPLINE_SIZE
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Mutation:
    """One named design-choice flip.

    ``expected_failures`` are claim-id patterns (exact ids or
    ``fnmatch`` globs like ``E1/*``) resolved against the registered
    claims at validation time; ``overrides`` are the keyword arguments
    handed to :func:`~repro.system.presets.preset_overrides`.
    """

    knob: str
    value: str
    description: str
    overrides: dict
    expected_failures: tuple

    @property
    def spec(self) -> str:
        """The ``knob=value`` string the CLI accepts."""
        return f"{self.knob}={self.value}"


#: Every supported ``knob=value`` flip, keyed by its spec string.
MUTATIONS: dict[str, Mutation] = {
    mutation.spec: mutation
    for mutation in (
        Mutation(
            "read_buffer", "off",
            "shrink the read buffer to a single XPLine (effectively no buffer)",
            {"optane": {"read_buffer_bytes": XPLINE_SIZE}},
            ("E1/ra-plateau-*", "E1/knee-*"),
        ),
        Mutation(
            "write_buffer", "off",
            "shrink the write-combining buffer to a single XPLine",
            {"optane": {"write_buffer_bytes": XPLINE_SIZE}},
            # Kills absorption and both generations' capacity knees and
            # decay shapes (fig4's report carries the G2 series too).
            ("E3/absorbed-below-capacity", "E3/knee-g1", "E3/partial-wa-rises",
             "E4/full-hit-*", "E4/knee-*", "E4/graceful-decay*"),
        ),
        Mutation(
            "write_buffer_eviction", "fifo",
            "FIFO write-buffer eviction instead of the inferred random",
            # fig4's *random* write stream cannot tell the policies apart;
            # the cyclic ablation workload is the discriminating probe.
            {"optane": {"write_buffer_eviction": "fifo"}},
            ("ABL/wbuf-eviction-discriminates",),
        ),
        Mutation(
            "periodic_writeback", "off",
            "disable G1's periodic full-line write-back",
            {"optane": {"periodic_writeback": False}},
            ("E3/full-writes-wa-one",),
        ),
        Mutation(
            "transition", "off",
            "disable the read-to-write buffer transition (S3.3)",
            {"optane": {"enable_transition": False}},
            ("S33/rmw-avoided", "S33/media-below-imc"),
        ),
    )
}


def parse_mutation(spec: str) -> Mutation:
    """Resolve a ``knob=value`` string; ConfigError lists the knobs."""
    mutation = MUTATIONS.get(spec.strip())
    if mutation is None:
        known = ", ".join(sorted(MUTATIONS))
        raise ConfigError(f"unknown mutation {spec!r}; known: {known}")
    return mutation


def resolve_expected(mutation: Mutation, claim_ids: list[str]) -> list[str]:
    """Expand the mutation's failure patterns against concrete claim ids.

    Raises ``ConfigError`` when a pattern matches nothing — a silently
    unmatched expectation would make the smoke test vacuous.
    """
    resolved: list[str] = []
    for pattern in mutation.expected_failures:
        matches = [cid for cid in claim_ids if fnmatchcase(cid, pattern)]
        if not matches:
            raise ConfigError(
                f"mutation {mutation.spec}: expected-failure pattern {pattern!r} "
                f"matches no registered claim"
            )
        resolved.extend(m for m in matches if m not in resolved)
    return resolved
