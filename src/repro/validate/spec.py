"""Claim specifications: binding shape predicates to report series.

A :class:`Claim` is one EXPERIMENTS.md row made executable: it names
the experiment and generation whose reports it reads, carries the
paper citation and any documented deviation allowance, and holds a
check callable that selects curves out of the experiment's
:class:`~repro.experiments.common.ExperimentReport` list and evaluates
a predicate from :mod:`repro.validate.predicates` against them.

Checks receive a :class:`ReportSet` — a thin selector over the report
list — so claim modules stay declarative::

    Claim(
        id="E1/ra-floor",
        experiment="fig2", generation=1,
        claim="RA never drops below 1 (buffer exclusive to CPU caches)",
        citation="Fig. 2, S3.1",
        check=on_series("read 1 cacheline", never_below(1.0)),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.common import ExperimentReport
from repro.validate.predicates import Curve, PairPredicate, Predicate, PredicateResult


class ReportSet:
    """Selector over one experiment run's reports.

    Wraps the ``list[ExperimentReport]`` an experiment returned for one
    ``(generation, profile)`` and resolves (report, series) references
    to :class:`Curve` values.  Raises ``KeyError`` with the available
    names on a miss, so a claim broken by a renamed series fails with
    an actionable message rather than a silent pass.
    """

    def __init__(self, reports: list[ExperimentReport]):
        """Wrap ``reports`` (the experiment's full return value)."""
        self.reports = list(reports)

    def report(self, id_contains: str | None = None) -> ExperimentReport:
        """The report whose id contains ``id_contains`` (first if None)."""
        if not self.reports:
            raise KeyError("experiment produced no reports")
        if id_contains is None:
            return self.reports[0]
        for report in self.reports:
            if id_contains in report.experiment_id:
                return report
        known = ", ".join(r.experiment_id for r in self.reports)
        raise KeyError(f"no report id contains {id_contains!r}; have: {known}")

    def curve(self, series: str, report: str | None = None) -> Curve:
        """The named series of the selected report, as a :class:`Curve`."""
        selected = self.report(report)
        try:
            values = selected.get(series)
        except KeyError:
            known = ", ".join(s.name for s in selected.series)
            raise KeyError(
                f"{selected.experiment_id}: no series {series!r}; have: {known}"
            ) from None
        return Curve.of(selected.x_values, values)

    def value(self, series: str, x, report: str | None = None) -> float:
        """One point of a series, looked up by exact x value.

        For reports whose x axis is categorical (sec33's metric names,
        table1's thread/DIMM configurations, lock's memory regions).
        """
        curve = self.curve(series, report)
        for cx, cy in zip(curve.x, curve.y):
            if cx == x:
                return cy
        raise KeyError(f"series {series!r} has no x == {x!r}; have: {list(curve.x)}")


#: A claim check: ReportSet in, PredicateResult out.
Check = Callable[[ReportSet], PredicateResult]


@dataclass(frozen=True)
class Claim:
    """One machine-checkable paper claim.

    ``allowance`` documents a known, accepted deviation from the paper
    (EXPERIMENTS.md's "Deviations" rows); it is carried into the
    fidelity report so a loosened tolerance is always visible next to
    its justification.  ``profiles`` restricts evaluation to the
    profiles whose grids can resolve the claim (default: both).
    """

    id: str
    experiment: str
    generation: int
    claim: str
    citation: str
    check: Check
    allowance: str = ""
    profiles: tuple = ("fast", "full")
    tags: tuple = field(default=())

    def __post_init__(self) -> None:
        """Enforce the ``code/slug`` id shape and a known generation."""
        if not self.id or "/" not in self.id:
            raise ValueError(f"claim id {self.id!r} must look like 'E1/slug'")
        if self.generation not in (1, 2):
            raise ValueError(f"{self.id}: generation must be 1 or 2")

    def evaluate(self, reports: list[ExperimentReport]) -> PredicateResult:
        """Run the check; selector/evaluation errors become failures."""
        try:
            return self.check(ReportSet(reports))
        except Exception as error:  # a broken selector is a failed claim
            return PredicateResult(
                False, f"evaluation error: {type(error).__name__}: {error}", self.claim
            )


def on_series(series: str, predicate: Predicate, report: str | None = None) -> Check:
    """Check ``predicate`` against one named series."""

    def check(reports: ReportSet) -> PredicateResult:
        return predicate(reports.curve(series, report))

    return check


def on_pair(
    subject: str,
    reference: str,
    predicate: PairPredicate,
    report: str | None = None,
    reference_report: str | None = None,
) -> Check:
    """Check a two-curve predicate (subject vs reference series)."""

    def check(reports: ReportSet) -> PredicateResult:
        return predicate(
            reports.curve(subject, report),
            reports.curve(reference, reference_report if reference_report is not None else report),
        )

    return check


def on_reports(fn: Callable[[ReportSet], PredicateResult]) -> Check:
    """Escape hatch: a claim computed from the full report set."""
    return fn
