"""The claim registry: every EXPERIMENTS.md row as executable claims.

One module per experiment family, mirroring EXPERIMENTS.md's numbering
(E1 = Figure 2 ... E9b = Figure 14, plus the supplemental sweeps).
Each module exposes a ``CLAIMS`` tuple; :func:`all_claims` concatenates
them and enforces id uniqueness so two modules cannot silently shadow
one another.

Claim ids are stable API: the mutation-smoke expectations in
:mod:`repro.validate.mutations` and the CI fidelity gate both refer to
them by name.
"""

from __future__ import annotations

from repro.validate.claims import (
    fig02,
    fig03,
    fig04,
    fig06,
    fig07,
    fig08,
    fig10,
    fig12,
    fig13,
    fig14,
    sec33,
    supplemental,
    table1,
)
from repro.validate.spec import Claim

_MODULES = (
    fig02, fig03, fig04, sec33, fig06, fig07, fig08,
    table1, fig10, fig12, fig13, fig14, supplemental,
)


def all_claims() -> list[Claim]:
    """Every registered claim, in EXPERIMENTS.md order."""
    claims: list[Claim] = []
    seen: dict[str, str] = {}
    for module in _MODULES:
        for claim in module.CLAIMS:
            if claim.id in seen:
                raise ValueError(
                    f"duplicate claim id {claim.id!r} in {module.__name__} "
                    f"(first defined in {seen[claim.id]})"
                )
            seen[claim.id] = module.__name__
            claims.append(claim)
    return claims
