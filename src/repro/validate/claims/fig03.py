"""E3 — Figure 3: write amplification of nt-store partial writes.

Paper claims (S3.2): the write-combining buffer absorbs partial
writes completely while the working set fits (WA = 0 at the media),
then WA climbs toward the theoretical 4/k for k/4-line writes as
evictions increasingly ship underfilled XPLines.  Full-line (100%)
writes stay near WA = 1 on G1 thanks to the periodic write-back; on
G2 (no periodic write-back, 16 KB buffer) even full lines are absorbed
until eviction begins past 16 KB.

Known deviation: the G1 knee lands at 14 KB on the fast grid, not at
the 12 KB capacity — in-flight lines keep a freshly-installed XPLine
unevictable, adding ~2 KB of effective headroom.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.validate.predicates import (
    PredicateResult,
    knee_between,
    monotone_rise,
    ordering,
    plateau,
    within,
)
from repro.validate.spec import Claim, ReportSet, on_pair, on_reports, on_series

_CITE = "Fig. 3, S3.2"

_PARTIAL = ("25% write", "50% write", "75% write")


def _absorbed(series: tuple, x_max: int):
    """WA pinned at 0 for every listed series up to ``x_max``."""
    check = plateau(0.0, 0.01, x_max=x_max)

    def evaluate(reports: ReportSet) -> PredicateResult:
        last = None
        for name in series:
            last = check(reports.curve(name))
            if not last.passed:
                return PredicateResult(False, f"{name}: {last.measured}", last.expected)
        return last

    return evaluate


def _converges(reports: ReportSet) -> PredicateResult:
    """WA at 32 KB approaches the theoretical 4/k for each fraction."""
    windows = {"25% write": (2.75, 4.2), "50% write": (1.35, 2.1), "75% write": (0.9, 1.4)}
    for name, (lo, hi) in windows.items():
        result = within(lo, hi, at_x=kib(32))(reports.curve(name))
        if not result.passed:
            return PredicateResult(False, f"{name}: {result.measured}", result.expected)
    return PredicateResult(
        True, "all three fractions near 4/k at 32 KB",
        "WA(32 KB) in the 4/k window for 25/50/75% writes",
    )



def _ordered_fractions(reports: ReportSet) -> PredicateResult:
    """25% > 50% > 75% everywhere past the knee, by a clear margin."""
    check = ordering(margin=0.15, higher_is_better=True, x_min=kib(16))
    first = check(reports.curve("25% write"), reports.curve("50% write"))
    if not first.passed:
        return PredicateResult(False, f"25% vs 50%: {first.measured}", first.expected)
    second = check(reports.curve("50% write"), reports.curve("75% write"))
    if not second.passed:
        return PredicateResult(False, f"50% vs 75%: {second.measured}", second.expected)
    return PredicateResult(
        True, "25% > 50% > 75% at every point past 16 KB", first.expected
    )


CLAIMS = (
    Claim(
        id="E3/absorbed-below-capacity",
        experiment="fig3", generation=1,
        claim="partial-write WA is exactly 0 while WSS fits the 12 KB buffer",
        citation=_CITE,
        check=on_reports(_absorbed(_PARTIAL, kib(12))),
    ),
    Claim(
        id="E3/knee-g1",
        experiment="fig3", generation=1,
        claim="G1 WA departs from 0 just past the 12 KB buffer capacity",
        citation=_CITE,
        allowance="knee at ~14 KB, not 12 KB: in-flight lines add ~2 KB of "
                  "effective headroom (EXPERIMENTS.md deviation)",
        check=on_series("25% write", knee_between(kib(13), kib(14), baseline=0.0)),
    ),
    Claim(
        id="E3/partial-wa-rises",
        experiment="fig3", generation=1,
        claim="past capacity, 25%-write WA climbs steadily toward 4",
        citation=_CITE,
        check=on_series(
            "25% write", monotone_rise(x_min=kib(14), tol=0.02, min_gain=1.5)
        ),
    ),
    Claim(
        id="E3/partial-wa-converges",
        experiment="fig3", generation=1,
        claim="WA at 32 KB approaches the theoretical 4/k per write fraction",
        citation=_CITE,
        allowance="reaches ~86% of 4/k at the 32 KB grid edge, still climbing",
        check=on_reports(_converges),
    ),
    Claim(
        id="E3/inverse-fraction-ordering",
        experiment="fig3", generation=1,
        claim="smaller write fractions amplify more: WA(25%) > WA(50%) > WA(75%)",
        citation=_CITE,
        check=on_reports(_ordered_fractions),
    ),
    Claim(
        id="E3/full-writes-wa-one",
        experiment="fig3", generation=1,
        claim="full-line writes hold WA ~= 1 at every WSS (periodic write-back)",
        citation=_CITE,
        check=on_series("100% write", within(0.75, 1.05)),
    ),
    Claim(
        id="E3/absorbed-g2",
        experiment="fig3", generation=2,
        claim="G2's 16 KB buffer (no periodic write-back) absorbs ALL writes, "
              "including full lines, until 16 KB",
        citation=_CITE,
        check=on_reports(_absorbed(_PARTIAL + ("100% write",), kib(16))),
    ),
    Claim(
        id="E3/knee-g2",
        experiment="fig3", generation=2,
        claim="G2 WA departs from 0 just past the 16 KB buffer capacity",
        citation=_CITE,
        allowance="same in-flight-line headroom as G1's knee",
        check=on_series("25% write", knee_between(kib(17), kib(18), baseline=0.0)),
    ),
    Claim(
        id="E3/partial-wa-rises-g2",
        experiment="fig3", generation=2,
        claim="past capacity, G2's 25%-write WA climbs steadily",
        citation=_CITE,
        check=on_series(
            "25% write", monotone_rise(x_min=kib(18), tol=0.02, min_gain=1.5)
        ),
    ),
)

