"""E7b — Figure 10: helper-thread prefetching for CCEH on PM vs DRAM.

Paper claims (S4.1): dedicating helper threads to prefetch segment
metadata cuts single-worker insert latency by ~35% and lifts
throughput by ~55% on PM, because the helper's reads hit the on-DIMM
read buffer.  On DRAM the same trick only adds coherence traffic —
latency degrades at every worker count.  The PM win fades as worker
count saturates the DIMM.
"""

from __future__ import annotations

from repro.validate.predicates import PredicateResult, ordering, ratio_approx
from repro.validate.spec import Claim, ReportSet, on_pair, on_reports

_CITE = "Fig. 10, S4.1"


def _fades(reports: ReportSet) -> PredicateResult:
    """At 10 workers the prefetch advantage is gone (ratio >= 1)."""
    helped = reports.curve("latency CCEH+prefetch", "-pm").y_at(10)
    base = reports.curve("latency CCEH", "-pm").y_at(10)
    ratio = helped / base
    return PredicateResult(
        ratio >= 1.0,
        f"{helped:.0f}/{base:.0f} = {ratio:.2f} at 10 workers",
        "prefetch latency >= baseline once the DIMM saturates",
    )


CLAIMS = (
    Claim(
        id="E7B/pm-latency-win",
        experiment="fig10", generation=1,
        claim="helper prefetching cuts single-worker PM latency by ~35%",
        citation=_CITE,
        check=on_pair(
            "latency CCEH+prefetch", "latency CCEH",
            ratio_approx(0.65, 0.1, at_x=1), report="-pm",
        ),
    ),
    Claim(
        id="E7B/pm-tput-win",
        experiment="fig10", generation=1,
        claim="helper prefetching lifts single-worker PM throughput by ~55%",
        citation=_CITE,
        check=on_pair(
            "tput CCEH+prefetch", "tput CCEH",
            ratio_approx(1.55, 0.1, at_x=1), report="-pm",
        ),
    ),
    Claim(
        id="E7B/win-fades-at-saturation",
        experiment="fig10", generation=1,
        claim="the PM win evaporates once workers saturate the DIMM",
        citation=_CITE,
        allowance="at 8-10 workers the helper turns net-negative here; the "
                  "paper still shows a small residual win",
        check=on_reports(_fades),
    ),
    Claim(
        id="E7B/dram-never-helps",
        experiment="fig10", generation=1,
        claim="on DRAM the helper only hurts: latency higher at every count",
        citation=_CITE,
        check=on_pair(
            "latency CCEH+prefetch", "latency CCEH",
            ordering(margin=0.0, higher_is_better=True), report="-dram",
        ),
    ),
    Claim(
        id="E7B/pm-latency-win-g2",
        experiment="fig10", generation=2,
        claim="the single-worker PM latency win carries over to G2",
        citation=_CITE,
        check=on_pair(
            "latency CCEH+prefetch", "latency CCEH",
            ratio_approx(0.65, 0.1, at_x=1), report="-pm",
        ),
    ),
    Claim(
        id="E7B/dram-never-helps-g2",
        experiment="fig10", generation=2,
        claim="DRAM degradation from the helper holds on G2 as well",
        citation=_CITE,
        check=on_pair(
            "latency CCEH+prefetch", "latency CCEH",
            ordering(margin=0.0, higher_is_better=True), report="-dram",
        ),
    ),
)
