"""E1 — Figure 2: read amplification of strided reads.

Paper claims (S3.1): RA sits exactly at 4/CpX while the working set
fits the on-DIMM read buffer, then jumps sharply to 4 once it spills —
the sharpness being the FIFO-eviction signature.  The step lands
between 16 and 18 KB on G1 (16 KB buffer) and between 22 and 24 KB on
G2 (22 KB buffer).  RA never dips below 1: the read buffer serves
repeat XPLine accesses but never batches across misses.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.validate.predicates import (
    PredicateResult,
    knee_between,
    never_below,
    plateau,
)
from repro.validate.spec import Claim, ReportSet, on_reports, on_series

_CITE = "Fig. 2, S3.1"


def _ra_floor(reports: ReportSet) -> PredicateResult:
    """RA >= 1 on every CpX curve (buffer exclusive to CPU caches)."""
    check = never_below(1.0)
    worst = None
    for cpx in (1, 2, 3, 4):
        name = f"read {cpx} cacheline" + ("s" if cpx > 1 else "")
        result = check(reports.curve(name))
        if worst is None or not result.passed:
            worst = result
        if not result.passed:
            return PredicateResult(False, f"{name}: {result.measured}", result.expected)
    return worst


CLAIMS = (
    Claim(
        id="E1/ra-plateau-cpx4",
        experiment="fig2", generation=1,
        claim="RA = 1 while WSS fits the 16 KB read buffer (CpX = 4)",
        citation=_CITE,
        check=on_series("read 4 cachelines", plateau(1.0, 0.02, x_max=kib(16))),
    ),
    Claim(
        id="E1/ra-plateau-cpx3",
        experiment="fig2", generation=1,
        claim="RA = 4/3 while WSS fits the buffer (CpX = 3)",
        citation=_CITE,
        check=on_series("read 3 cachelines", plateau(4 / 3, 0.02, x_max=kib(16))),
    ),
    Claim(
        id="E1/ra-plateau-cpx2",
        experiment="fig2", generation=1,
        claim="RA = 2 while WSS fits the buffer (CpX = 2)",
        citation=_CITE,
        check=on_series("read 2 cachelines", plateau(2.0, 0.02, x_max=kib(16))),
    ),
    Claim(
        id="E1/ra-cpx1-worstcase",
        experiment="fig2", generation=1,
        claim="CpX = 1 pays the full 4x amplification at every WSS",
        citation=_CITE,
        check=on_series("read 1 cacheline", plateau(4.0, 0.02)),
    ),
    Claim(
        id="E1/knee-g1",
        experiment="fig2", generation=1,
        claim="G1 RA steps up between 16 and 18 KB (read-buffer capacity)",
        citation=_CITE,
        check=on_series(
            "read 4 cachelines",
            knee_between(kib(17), kib(18), baseline=1.0),
        ),
    ),
    Claim(
        id="E1/fifo-step",
        experiment="fig2", generation=1,
        claim="past capacity the step is sharp: RA = 4 immediately (FIFO eviction)",
        citation=_CITE,
        check=on_series("read 4 cachelines", plateau(4.0, 0.02, x_min=kib(18))),
    ),
    Claim(
        id="E1/ra-floor",
        experiment="fig2", generation=1,
        claim="RA never drops below 1 (buffer does not batch across misses)",
        citation=_CITE,
        check=on_reports(_ra_floor),
    ),
    Claim(
        id="E1/ra-plateau-g2",
        experiment="fig2", generation=2,
        claim="G2's larger buffer holds RA = 1 through 22 KB (CpX = 4)",
        citation=_CITE,
        check=on_series("read 4 cachelines", plateau(1.0, 0.02, x_max=kib(22))),
    ),
    Claim(
        id="E1/knee-g2",
        experiment="fig2", generation=2,
        claim="G2 RA steps up between 22 and 24 KB (22 KB read buffer)",
        citation=_CITE,
        check=on_series(
            "read 4 cachelines",
            knee_between(kib(23), kib(24), baseline=1.0),
        ),
    ),
)
