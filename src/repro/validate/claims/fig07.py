"""E5 — Figure 7: the read-after-persist (RAP) penalty.

Paper claims (S3.5): reading a cacheline right after persisting it
costs ~2500 cycles on G1 PM under clwb+mfence, decaying by halves with
reuse distance toward the ~350-cycle baseline (~7-10x peak/floor).
sfence defers the cost for a ~2-flush window; nt-stores behave like
clwb+mfence; the remote-socket peak is ~1.5x higher; DRAM shows the
same shape at only ~2x.  On G2 (eADR) the clwb RAP penalty is gone —
flat latency at every distance — while nt-stores still pay it.
"""

from __future__ import annotations

from repro.validate.predicates import (
    all_of,
    flat_wrt_wss,
    peak_over_floor,
    ratio_approx,
    span_ratio,
    within,
)
from repro.validate.spec import Claim, on_pair, on_series

_CITE = "Fig. 7, S3.5"

CLAIMS = (
    Claim(
        id="E5/mfence-peak",
        experiment="fig7", generation=1,
        claim="clwb+mfence distance-0 RAP costs ~2500 cycles on PM",
        citation=_CITE,
        check=on_series("clwb+mfence", within(2200, 2750, at_x=0), report="-pm"),
    ),
    Claim(
        id="E5/rap-decay",
        experiment="fig7", generation=1,
        claim="the RAP peak sits ~7-10x above the settled latency",
        citation=_CITE,
        check=on_series("clwb+mfence", peak_over_floor(5, 12), report="-pm"),
    ),
    Claim(
        id="E5/amortizes-by-halves",
        experiment="fig7", generation=1,
        claim="doubling reuse distance halves the per-iteration penalty",
        citation=_CITE,
        check=on_series("clwb+mfence", span_ratio(0, 1, 0.45, 0.55), report="-pm"),
    ),
    Claim(
        id="E5/sfence-window",
        experiment="fig7", generation=1,
        claim="sfence hides the penalty for a ~2-flush window, then pays it",
        citation=_CITE,
        check=on_series(
            "clwb+sfence",
            all_of(within(0, 300, at_x=0), within(650, 900, at_x=2)),
            report="-pm",
        ),
    ),
    Claim(
        id="E5/sfence-converges",
        experiment="fig7", generation=1,
        claim="by distance ~4-8 sfence and mfence costs converge",
        citation=_CITE,
        check=on_pair(
            "clwb+sfence", "clwb+mfence", ratio_approx(1.0, 0.01, at_x=8),
            report="-pm",
        ),
    ),
    Claim(
        id="E5/nt-matches-clwb",
        experiment="fig7", generation=1,
        claim="nt-store+mfence pays the same RAP peak as clwb+mfence",
        citation=_CITE,
        check=on_pair(
            "nt-store+mfence", "clwb+mfence", ratio_approx(1.0, 0.02, at_x=0),
            report="-pm",
        ),
    ),
    Claim(
        id="E5/remote-elevated",
        experiment="fig7", generation=1,
        claim="the remote-socket RAP peak is ~1.5x the local one",
        citation=_CITE,
        check=on_pair(
            "clwb+mfence", "clwb+mfence", ratio_approx(1.49, 0.1, at_x=0),
            report="-pm_remote", reference_report="-pm",
        ),
    ),
    Claim(
        id="E5/dram-decay-shallower",
        experiment="fig7", generation=1,
        claim="DRAM shows the same RAP shape at only ~2-3x peak/floor",
        citation=_CITE,
        check=on_series("clwb+mfence", peak_over_floor(2.0, 3.2), report="-dram"),
    ),
    Claim(
        id="E5/g2-clwb-flat",
        experiment="fig7", generation=2,
        claim="eADR removes the clwb RAP penalty on G2: latency is flat",
        citation=_CITE,
        check=on_series("clwb+mfence", flat_wrt_wss(0.05), report="-pm"),
    ),
    Claim(
        id="E5/g2-nt-still-pays",
        experiment="fig7", generation=2,
        claim="G2 nt-stores still pay a ~2300-cycle RAP peak, ~6x the floor",
        citation=_CITE,
        check=on_series(
            "nt-store+mfence",
            all_of(within(2100, 2550, at_x=0), peak_over_floor(5, 7)),
            report="-pm",
        ),
    ),
    Claim(
        id="E5/g2-sfence-equals-mfence",
        experiment="fig7", generation=2,
        claim="with eADR the fence choice stops mattering for clwb",
        citation=_CITE,
        check=on_pair(
            "clwb+sfence", "clwb+mfence", ratio_approx(1.0, 0.001, at_x=0),
            report="-pm",
        ),
    ),
)
