"""E6 — Figure 8: persistency-mode write costs across working sets.

Paper claims (S4.2): under strict persistency every store pays the
full persist path (~220 cycles/element on G1) regardless of WSS, then
climbs several-fold once the working set spills the on-DIMM buffers.
Relaxed persistency is markedly cheaper while data fits the CPU
caches and converges toward the strict cost beyond them.  Pure
(non-persistent) random writes stay flat — the write buffer absorbs
them — while reads dominate the cost beyond the caches.
"""

from __future__ import annotations

from repro.common.units import kib, mib
from repro.validate.predicates import (
    PredicateResult,
    flat_wrt_wss,
    ratio_approx,
    span_ratio,
    within,
)
from repro.validate.spec import Claim, ReportSet, on_pair, on_series, on_reports

_CITE = "Fig. 8, S4.2"

_BIG = mib(64)


def _cross_report_ratio(series: str, subject_report: str, reference_report: str,
                        at_x, lo: float, hi: float):
    """Ratio of the same series across two reports, bounded to [lo, hi]."""

    def check(reports: ReportSet) -> PredicateResult:
        a = reports.curve(series, subject_report).y_at(at_x)
        b = reports.curve(series, reference_report).y_at(at_x)
        ratio = a / b if b else float("inf")
        return PredicateResult(
            lo <= ratio <= hi,
            f"{a:.4g}/{b:.4g} = {ratio:.3f} at x={at_x}",
            f"{subject_report}/{reference_report} ratio in [{lo}, {hi}]",
        )

    return check


CLAIMS = (
    Claim(
        id="E6/strict-floor",
        experiment="fig8", generation=1,
        claim="strict persistency costs ~220 cycles/element even in-cache",
        citation=_CITE,
        check=on_series("rand_clwb", within(200, 260, at_x=kib(4)), report="fig8a"),
    ),
    Claim(
        id="E6/strict-climb",
        experiment="fig8", generation=1,
        claim="random strict writes climb several-fold once WSS spills the buffers",
        citation=_CITE,
        allowance="~4.6x climb vs the paper's ~10x: the port model saturates lower",
        check=on_series("rand_clwb", span_ratio(kib(4), _BIG, 3.5, 6.0), report="fig8a"),
    ),
    Claim(
        id="E6/relaxed-helps-small",
        experiment="fig8", generation=1,
        claim="relaxed persistency is >3x cheaper while data fits the caches",
        citation=_CITE,
        check=on_reports(
            _cross_report_ratio("seq_clwb", "fig8b", "fig8a", kib(4), 0.1, 0.35)
        ),
    ),
    Claim(
        id="E6/relaxed-fades-large",
        experiment="fig8", generation=1,
        claim="the relaxed advantage fades beyond the caches",
        citation=_CITE,
        check=on_reports(
            _cross_report_ratio("rand_clwb", "fig8b", "fig8a", mib(16), 0.6, 0.9)
        ),
    ),
    Claim(
        id="E6/pure-writes-flat",
        experiment="fig8", generation=1,
        claim="pure random writes cost the same at every WSS (buffer absorbs them)",
        citation=_CITE,
        check=on_series("rand_wr", flat_wrt_wss(0.05), report="fig8c"),
    ),
    Claim(
        id="E6/reads-dominate-beyond-caches",
        experiment="fig8", generation=1,
        claim="beyond the caches random reads cost ~1.9x sequential reads",
        citation=_CITE,
        check=on_pair(
            "rand_rd", "seq_rd",
            ratio_approx(1.86, 0.15, at_x=_BIG),
            report="fig8c",
        ),
    ),
    Claim(
        id="E6/reads-cheap-in-cache",
        experiment="fig8", generation=1,
        claim="reads are nearly free while the working set fits the caches",
        citation=_CITE,
        check=on_series("rand_rd", within(0, 50, x_max=mib(4)), report="fig8c"),
        allowance="checked through 4 MB; beyond that reads hit the media",
    ),
    Claim(
        id="E6/g2-nt-relaxed-fast",
        experiment="fig8", generation=2,
        claim="G2 relaxed nt-stores are ~5x cheaper than strict in-cache",
        citation=_CITE,
        check=on_reports(
            _cross_report_ratio("seq_nt-store", "fig8b", "fig8a", kib(4), 0.1, 0.25)
        ),
    ),
    Claim(
        id="E6/g2-clwb-relaxed-no-gain",
        experiment="fig8", generation=2,
        claim="with eADR, relaxed clwb matches strict clwb beyond the caches",
        citation=_CITE,
        check=on_reports(
            _cross_report_ratio("seq_clwb", "fig8b", "fig8a", mib(1), 0.98, 1.02)
        ),
    ),
)
