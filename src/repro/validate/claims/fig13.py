"""E9a — Figure 13: eliminating misprefetched PM reads.

Paper claims (S4.3): with hardware prefetching on, the PM read ratio
inflates toward ~1.9x beyond the caches (iMC trailing at ~1.7x); the
software-prefetch rewrite that avoids misprefetching holds the PM
ratio at exactly 1.0 across the whole sweep.
"""

from __future__ import annotations

from repro.common.units import mib
from repro.validate.predicates import (
    all_of,
    monotone_rise,
    ordering,
    plateau,
    within,
)
from repro.validate.spec import Claim, on_pair, on_series

_CITE = "Fig. 13, S4.3"

CLAIMS = (
    Claim(
        id="E9A/baseline-overfetch",
        experiment="fig13", generation=1,
        claim="prefetching inflates PM reads to ~1.9x beyond the caches",
        citation=_CITE,
        check=on_series(
            "PM with prefetching",
            all_of(
                within(1.8, 2.05, at_x=mib(64)),
                monotone_rise(tol=0.005, min_gain=0.8),
            ),
        ),
    ),
    Claim(
        id="E9A/optimized-flat-one",
        experiment="fig13", generation=1,
        claim="the misprefetch-free rewrite pins the PM read ratio at 1.0",
        citation=_CITE,
        check=on_series("Optimized PM", plateau(1.0, 0.005)),
    ),
    Claim(
        id="E9A/imc-below-pm",
        experiment="fig13", generation=1,
        claim="iMC inflation trails PM inflation (some prefetches die in-cache)",
        citation=_CITE,
        check=on_pair(
            "iMC with prefetching", "PM with prefetching", ordering(margin=-0.005)
        ),
    ),
    Claim(
        id="E9A/optimized-flat-one-g2",
        experiment="fig13", generation=2,
        claim="the rewrite holds the ratio at 1.0 on G2 too",
        citation=_CITE,
        check=on_series("Optimized PM", plateau(1.0, 0.005)),
    ),
)
