"""SUP/ABL — supplemental sweeps: bandwidth, interleaving, locks, ablations.

These cover the paper's framing results (single-DIMM bandwidth
asymmetry, interleaving behaviour, the persistent-lock RAP case study)
and the simulator's own ablation studies — each ablation claim pins
the *discrimination* between the inferred design choice and its
alternative, which is exactly what the mutation-smoke mode flips.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.validate.predicates import (
    PredicateResult,
    all_of,
    flat_wrt_wss,
    monotone_rise,
    span_ratio,
    within,
)
from repro.validate.spec import Claim, ReportSet, on_reports, on_series

_CITE_BW = "Fig. 1, S2"
_CITE_LOCK = "S3.5 case study"
_CITE_ABL = "simulator ablations (EXPERIMENTS.md supplemental)"


def _lock_rap_g1(reports: ReportSet) -> PredicateResult:
    """G1 lock handover pays the RAP: pm >> dram, remote higher still."""
    pm = reports.value("G1", "pm")
    remote = reports.value("G1", "pm_remote")
    dram = reports.value("G1", "dram")
    ok = 2200 <= pm <= 2700 and remote > pm * 1.3 and dram < pm * 0.5
    return PredicateResult(
        ok,
        f"pm {pm:.0f}, remote {remote:.0f}, dram {dram:.0f}",
        "pm in [2200, 2700], remote > 1.3x pm, dram < 0.5x pm",
    )


def _lock_g2_fixes(reports: ReportSet) -> PredicateResult:
    """G2's eADR removes the handover penalty (>5x cheaper than G1)."""
    g1 = reports.value("G1", "pm")
    g2 = reports.value("G2", "pm")
    ok = 300 <= g2 <= 500 and g1 / g2 >= 5
    return PredicateResult(
        ok,
        f"G1 {g1:.0f} vs G2 {g2:.0f} ({g1 / g2:.1f}x)",
        "G2 pm in [300, 500] and G1/G2 >= 5x",
    )


def _wbuf_eviction(reports: ReportSet) -> PredicateResult:
    """Random eviction decays gracefully where FIFO collapses to 0."""
    random_curve = reports.curve("random eviction", "wbuf-eviction").clip(x_min=kib(14))
    fifo_curve = reports.curve("fifo eviction", "wbuf-eviction").clip(x_min=kib(14))
    ok = all(y <= 0.01 for y in fifo_curve.y) and all(y >= 0.15 for y in random_curve.y)
    return PredicateResult(
        ok,
        f"past 14 KB fifo max {max(fifo_curve.y):.3f}, random min {min(random_curve.y):.3f}",
        "fifo hit ratio == 0 past capacity while random stays >= 0.15",
    )


def _periodic_writeback(reports: ReportSet) -> PredicateResult:
    """Periodic write-back keeps full-line WA ~1 at small WSS; off -> 0."""
    on = reports.curve("periodic write-back", "periodic-writeback").y_at(kib(4))
    off = reports.curve("no write-back", "periodic-writeback").y_at(kib(4))
    ok = on >= 0.8 and off <= 0.05
    return PredicateResult(
        ok,
        f"WA at 4 KB: {on:.3f} with write-back, {off:.3f} without",
        "WA >= 0.8 with periodic write-back, ~0 without (at 4 KB)",
    )


def _transition(reports: ReportSet) -> PredicateResult:
    """The transition halves media traffic and avoids RMWs; off does not."""
    with_rmw = reports.value("with transition", "rmw_avoided", "transition")
    with_ratio = reports.value("with transition", "media/iMC traffic", "transition")
    wo_rmw = reports.value("without transition", "rmw_avoided", "transition")
    wo_ratio = reports.value("without transition", "media/iMC traffic", "transition")
    ok = with_rmw >= 1 and with_ratio <= 0.35 and wo_rmw == 0 and wo_ratio >= 0.45
    return PredicateResult(
        ok,
        f"with: {with_rmw:.0f} avoided, media/iMC {with_ratio:.2f}; "
        f"without: {wo_rmw:.0f}, {wo_ratio:.2f}",
        "transition avoids RMWs (media/iMC <= 0.35); disabling it restores them",
    )


def _sfence_window(reports: ReportSet) -> PredicateResult:
    """The 2-flush sfence window hides the distance-0 RAP peak."""
    windowed = reports.curve("window=2", "sfence-window").y_at(0)
    unwindowed = reports.curve("no window (mfence-like)", "sfence-window").y_at(0)
    ok = windowed <= 300 and unwindowed >= 2000
    return PredicateResult(
        ok,
        f"distance 0: {windowed:.0f} windowed vs {unwindowed:.0f} mfence-like",
        "windowed distance-0 cost <= 300 cycles, mfence-like >= 2000",
    )



def _g2_bandwidth(reports: ReportSet) -> PredicateResult:
    """G2's published specs: faster reads and ~1.5x nt-write bandwidth."""
    nt = reports.curve("nt-write").y_at(1)
    seq = reports.curve("seq-read").y_at(8)
    ok = 3.3 <= nt <= 4.6 and 4.5 <= seq <= 5.5
    return PredicateResult(
        ok,
        f"nt-write {nt:.2f} GB/s at 1 thread, seq-read {seq:.2f} GB/s at 8",
        "nt-write in [3.3, 4.6] and seq-read(8) in [4.5, 5.5]",
    )


CLAIMS = (
    Claim(
        id="SUP/bw-seq-read-scales",
        experiment="bandwidth", generation=1,
        claim="sequential read bandwidth scales with threads to ~3.5 GB/s",
        citation=_CITE_BW,
        check=on_series(
            "seq-read",
            all_of(monotone_rise(tol=0.0, min_gain=2.5), within(3.0, 4.0, at_x=8)),
        ),
    ),
    Claim(
        id="SUP/bw-rand-read-caps",
        experiment="bandwidth", generation=1,
        claim="random read bandwidth caps far below sequential (~0.7 GB/s)",
        citation=_CITE_BW,
        check=on_series("rand-read", within(0.55, 0.9, at_x=8)),
    ),
    Claim(
        id="SUP/bw-nt-write-flat",
        experiment="bandwidth", generation=1,
        claim="nt-write bandwidth is thread-insensitive at ~2.8 GB/s",
        citation=_CITE_BW,
        check=on_series(
            "nt-write", all_of(flat_wrt_wss(0.05), within(2.5, 3.0, at_x=1))
        ),
    ),
    Claim(
        id="SUP/bw-g2-higher",
        experiment="bandwidth", generation=2,
        claim="G2 outpaces G1 on every bandwidth axis",
        citation=_CITE_BW,
        check=on_reports(_g2_bandwidth),
    ),
    Claim(
        id="SUP/interleave-read-latency-flat",
        experiment="interleave", generation=1,
        claim="interleaving does not change single-read latency",
        citation="S2, Fig. 1",
        check=on_series("random read latency (cycles)", flat_wrt_wss(0.01)),
    ),
    Claim(
        id="SUP/interleave-write-scales",
        experiment="interleave", generation=1,
        claim="6-DIMM interleaving multiplies nt-store bandwidth ~4-5.5x",
        citation="S2, Fig. 1",
        check=on_series(
            "nt-store bandwidth (GB/s, 8 threads)", span_ratio(1, 6, 4.0, 5.6)
        ),
    ),
    Claim(
        id="SUP/lock-rap-penalty-g1",
        experiment="lock", generation=1,
        claim="G1 persistent-lock handover pays the full RAP penalty",
        citation=_CITE_LOCK,
        check=on_reports(_lock_rap_g1),
    ),
    Claim(
        id="SUP/lock-g2-fixes-rap",
        experiment="lock", generation=1,
        claim="G2's eADR makes the handover >5x cheaper",
        citation=_CITE_LOCK,
        check=on_reports(_lock_g2_fixes),
    ),
    Claim(
        id="ABL/wbuf-eviction-discriminates",
        experiment="ablations", generation=1,
        claim="random vs FIFO write-buffer eviction is observable: FIFO cliffs",
        citation=_CITE_ABL,
        check=on_reports(_wbuf_eviction),
    ),
    Claim(
        id="ABL/periodic-writeback-discriminates",
        experiment="ablations", generation=1,
        claim="G1's periodic write-back is observable in full-line WA",
        citation=_CITE_ABL,
        check=on_reports(_periodic_writeback),
    ),
    Claim(
        id="ABL/transition-discriminates",
        experiment="ablations", generation=1,
        claim="the read-to-write transition is observable in media traffic",
        citation=_CITE_ABL,
        check=on_reports(_transition),
    ),
    Claim(
        id="ABL/sfence-window-discriminates",
        experiment="ablations", generation=1,
        claim="the 2-flush sfence window is observable at reuse distance 0",
        citation=_CITE_ABL,
        check=on_reports(_sfence_window),
    ),
)

