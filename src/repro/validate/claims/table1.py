"""E7a — Table 1: where CCEH insertion time goes.

Paper claims (S4.1): segment-metadata reads dominate key insertion at
~55% of the time, persists take ~18%, and the split is stable across
thread counts and DIMM counts — which is what motivates the software
read-buffer optimisation of Figure 10.
"""

from __future__ import annotations

from repro.validate.predicates import flat_wrt_wss, ordering, within
from repro.validate.spec import Claim, on_pair, on_series

_CITE = "Table 1, S4.1"

CLAIMS = (
    Claim(
        id="E7A/segment-dominates",
        experiment="table1", generation=1,
        claim="segment-metadata reads take >2x the time persists do",
        citation=_CITE,
        check=on_pair(
            "Segment metadata", "Persists", ordering(margin=1.0, higher_is_better=True)
        ),
    ),
    Claim(
        id="E7A/segment-level",
        experiment="table1", generation=1,
        claim="segment metadata sits at ~55% of insertion time",
        citation=_CITE,
        check=on_series("Segment metadata", within(45, 65)),
    ),
    Claim(
        id="E7A/persists-minor",
        experiment="table1", generation=1,
        claim="persists account for only ~18% of insertion time",
        citation=_CITE,
        check=on_series("Persists", within(12, 25)),
    ),
    Claim(
        id="E7A/stable-across-configs",
        experiment="table1", generation=1,
        claim="the breakdown barely moves across thread/DIMM configurations",
        citation=_CITE,
        check=on_series("Segment metadata", flat_wrt_wss(0.05)),
    ),
    Claim(
        id="E7A/segment-dominates-g2",
        experiment="table1", generation=2,
        claim="the same dominance holds on G2",
        citation=_CITE,
        check=on_pair(
            "Segment metadata", "Persists", ordering(margin=1.0, higher_is_better=True)
        ),
    ),
)
