"""E8 — Figure 12: in-place vs out-of-place (redo) FAST&FAIR inserts.

Paper claims (S4.2): on G1, out-of-place (redo-log) inserts convert
scattered small persists into sequential full-line writes the write
buffer coalesces — ~37% lower latency and ~1.6x throughput at every
thread count.  On G2, whose buffering absorbs the small persists
anyway, redo's extra writes make it a slight net loss (~12% slower).
"""

from __future__ import annotations

from repro.validate.predicates import ordering, ratio_approx
from repro.validate.spec import Claim, on_pair

_CITE = "Fig. 12, S4.2"

CLAIMS = (
    Claim(
        id="E8/redo-wins-g1",
        experiment="fig12", generation=1,
        claim="redo beats in-place by >=30% latency at every thread count on G1",
        citation=_CITE,
        check=on_pair(
            "latency out-of-place", "latency in-place", ordering(margin=0.3)
        ),
    ),
    Claim(
        id="E8/redo-latency-factor",
        experiment="fig12", generation=1,
        claim="single-thread redo latency is ~62% of in-place (37.6% lower)",
        citation=_CITE,
        check=on_pair(
            "latency out-of-place", "latency in-place",
            ratio_approx(0.62, 0.08, at_x=1),
        ),
    ),
    Claim(
        id="E8/redo-tput-factor",
        experiment="fig12", generation=1,
        claim="single-thread redo throughput is ~1.6x in-place",
        citation=_CITE,
        check=on_pair(
            "tput out-of-place", "tput in-place", ratio_approx(1.6, 0.1, at_x=1)
        ),
    ),
    Claim(
        id="E8/redo-no-win-g2",
        experiment="fig12", generation=2,
        claim="on G2 redo never wins: latency higher at every thread count",
        citation=_CITE,
        check=on_pair(
            "latency out-of-place", "latency in-place",
            ordering(margin=0.0, higher_is_better=True),
        ),
    ),
    Claim(
        id="E8/redo-penalty-g2",
        experiment="fig12", generation=2,
        claim="G2 redo costs ~12% extra latency single-threaded",
        citation=_CITE,
        check=on_pair(
            "latency out-of-place", "latency in-place",
            ratio_approx(1.12, 0.08, at_x=1),
        ),
    ),
)
