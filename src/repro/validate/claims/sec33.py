"""S33 — Section 3.3 probes: buffer separation and XPLine transition.

Paper claims (S3.3): the read and write buffers are physically
separate — interleaving reads into a write stream neither amplifies
reads nor causes media writes — and a write landing on a read-buffered
XPLine *transitions* the line into the write buffer, avoiding the
read-modify-write: media traffic is a quarter of iMC traffic for
quarter-line writes, and every transitioned line is one RMW avoided.
"""

from __future__ import annotations

from repro.validate.predicates import PredicateResult
from repro.validate.spec import Claim, ReportSet, on_reports

_CITE = "S3.3"


def _separation(reports: ReportSet) -> PredicateResult:
    """Interleaved reads behave exactly like the read-only baseline."""
    interleaved = reports.value("value", "interleaved RA")
    baseline = reports.value("value", "baseline RA")
    media = reports.value("value", "interleaved media writes (B)")
    ok = abs(interleaved - 1.0) <= 0.01 and abs(interleaved - baseline) <= 0.01 and media == 0
    return PredicateResult(
        ok,
        f"interleaved RA {interleaved:.3f} vs baseline {baseline:.3f}, "
        f"{media:.0f} B media writes",
        "interleaved RA == baseline RA == 1 and zero media writes",
    )


def _media_ratio(reports: ReportSet) -> PredicateResult:
    """Quarter-line writes cost a quarter of iMC traffic at the media."""
    ratio = reports.value("value", "transition media/iMC traffic")
    return PredicateResult(
        0.05 <= ratio <= 0.35,
        f"media/iMC = {ratio:.3f}",
        "media/iMC traffic in [0.05, 0.35] (0.25 ideal; 0.5 = RMW per write)",
    )


def _rmw_avoided(reports: ReportSet) -> PredicateResult:
    """Writes adopt read-buffered lines instead of re-reading the media."""
    avoided = reports.value("value", "transition RMW avoided")
    return PredicateResult(
        avoided >= 1,
        f"{avoided:.0f} RMWs avoided",
        "at least one read-to-write transition observed",
    )


CLAIMS = (
    Claim(
        id="S33/separation",
        experiment="sec33", generation=1,
        claim="read and write buffers are separate: interleaved reads match "
              "the read-only baseline and cause no media writes",
        citation=_CITE,
        check=on_reports(_separation),
    ),
    Claim(
        id="S33/media-below-imc",
        experiment="sec33", generation=1,
        claim="transitions keep media traffic at ~1/4 of iMC traffic for "
              "quarter-line writes",
        citation=_CITE,
        check=on_reports(_media_ratio),
    ),
    Claim(
        id="S33/rmw-avoided",
        experiment="sec33", generation=1,
        claim="writes to read-buffered XPLines transition without an RMW",
        citation=_CITE,
        check=on_reports(_rmw_avoided),
    ),
    Claim(
        id="S33/separation-g2",
        experiment="sec33", generation=2,
        claim="buffer separation holds on G2 as well",
        citation=_CITE,
        check=on_reports(_separation),
    ),
)
