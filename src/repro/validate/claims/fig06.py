"""E2 — Figure 6: prefetcher-induced read overfetch.

Paper claims (S4.1): with prefetching off, PM and iMC read ratios both
stay at 1.0.  Adjacent-line and DCU-streamer prefetching inflate PM
traffic toward ~2x once the working set exceeds the caches; the DCU
streamer discards its prefetches before the iMC, so iMC traffic stays
near 1 while PM traffic doubles.  The L2 hardware streamer inflates PM
and iMC together.
"""

from __future__ import annotations

from repro.common.units import mib
from repro.validate.predicates import (
    all_of,
    monotone_rise,
    ordering,
    plateau,
    ratio_approx,
    within,
)
from repro.validate.spec import Claim, on_pair, on_series

_CITE = "Fig. 6, S4.1"

_BIG = mib(64)


def _no_prefetch_flat(gen: int):
    """Both ratios pinned at 1.0 with prefetching off."""
    from repro.validate.predicates import PredicateResult
    from repro.validate.spec import ReportSet

    def check(reports: ReportSet) -> PredicateResult:
        flat = plateau(1.0, 0.01)
        for name in (f"PM (G{gen})", f"iMC (G{gen})"):
            result = flat(reports.curve(name, report="-no"))
            if not result.passed:
                return PredicateResult(False, f"{name}: {result.measured}", result.expected)
        return PredicateResult(True, "PM and iMC ratios both 1.0 everywhere",
                               "ratio 1.0 at every WSS with prefetching off")

    return check


CLAIMS = (
    Claim(
        id="E2/no-prefetch-flat",
        experiment="fig6", generation=1,
        claim="with prefetching off, PM and iMC read ratios stay at 1.0",
        citation=_CITE,
        check=_no_prefetch_flat(1),
    ),
    Claim(
        id="E2/adjacent-pm-overfetch",
        experiment="fig6", generation=1,
        claim="adjacent-line prefetch inflates PM reads toward ~2x beyond the caches",
        citation=_CITE,
        check=on_series(
            "PM (G1)",
            all_of(
                within(1.75, 2.05, at_x=_BIG),
                monotone_rise(tol=0.01, min_gain=0.7),
            ),
            report="-adjacent",
        ),
    ),
    Claim(
        id="E2/adjacent-imc-below-pm",
        experiment="fig6", generation=1,
        claim="some adjacent-line prefetches die in-cache: iMC ratio trails PM",
        citation=_CITE,
        check=on_pair(
            "PM (G1)", "iMC (G1)",
            ordering(margin=0.1, higher_is_better=True, x_min=mib(1)),
            report="-adjacent",
        ),
    ),
    Claim(
        id="E2/dcu-discards-before-imc",
        experiment="fig6", generation=1,
        claim="DCU streamer: PM ratio ~2x while iMC stays near 1 "
              "(prefetches discarded before the iMC)",
        citation=_CITE,
        allowance="iMC drifts to ~1.23, a touch above the paper's ~1.1",
        check=on_pair(
            "PM (G1)", "iMC (G1)",
            ordering(margin=0.3, higher_is_better=True, x_min=mib(1)),
            report="-DCU",
        ),
    ),
    Claim(
        id="E2/dcu-imc-near-one",
        experiment="fig6", generation=1,
        claim="DCU streamer keeps the iMC read ratio below ~1.35",
        citation=_CITE,
        check=on_series("iMC (G1)", within(0.95, 1.35), report="-DCU"),
    ),
    Claim(
        id="E2/hardware-tracks-imc",
        experiment="fig6", generation=1,
        claim="the L2 streamer inflates PM and iMC together (ratio 1:1)",
        citation=_CITE,
        allowance="level climbs to ~1.48 at 64 MB vs the paper's flatter ~1.25",
        check=on_pair(
            "PM (G1)", "iMC (G1)", ratio_approx(1.0, 0.02, at_x=_BIG),
            report="-hardware",
        ),
    ),
    Claim(
        id="E2/no-prefetch-flat-g2",
        experiment="fig6", generation=2,
        claim="prefetch-off ratios stay at 1.0 on G2 too",
        citation=_CITE,
        check=_no_prefetch_flat(2),
    ),
    Claim(
        id="E2/adjacent-pm-overfetch-g2",
        experiment="fig6", generation=2,
        claim="adjacent-line prefetch approaches 2x PM overfetch on G2",
        citation=_CITE,
        check=on_series(
            "PM (G2)", within(1.75, 2.05, at_x=_BIG), report="-adjacent"
        ),
    ),
)
