"""E9b — Figure 14: access-size redirection tradeoff.

Paper claims (S4.3): redirecting small writes through a
sequential-log layout loses single-threaded (extra instructions) but
wins once enough threads contend for the DIMM's limited random-write
capacity — latency and throughput both cross over, and at saturation
the optimized layout sustains ~2.4x the baseline throughput.

Known deviation: our crossover lands at ~4 threads rather than the
paper's ~12 — the simulator's port model saturates the DIMM earlier.
"""

from __future__ import annotations

from repro.validate.predicates import crossover_at, ratio_approx
from repro.validate.spec import Claim, on_pair

_CITE = "Fig. 14, S4.3"

_DEVIATION = "crossover at ~4 threads vs the paper's ~12 (earlier saturation)"

CLAIMS = (
    Claim(
        id="E9B/latency-crossover",
        experiment="fig14", generation=1,
        claim="redirection loses single-threaded, wins for good by ~4 threads",
        citation=_CITE,
        allowance=_DEVIATION,
        check=on_pair(
            "latency optimized", "latency baseline", crossover_at(2, 8)
        ),
    ),
    Claim(
        id="E9B/tput-crossover",
        experiment="fig14", generation=1,
        claim="throughput crosses over at the same point",
        citation=_CITE,
        allowance=_DEVIATION,
        check=on_pair(
            "tput optimized", "tput baseline",
            crossover_at(2, 8, higher_is_better=True),
        ),
    ),
    Claim(
        id="E9B/saturated-win",
        experiment="fig14", generation=1,
        claim="at 16 threads the optimized layout cuts latency to ~42%",
        citation=_CITE,
        check=on_pair(
            "latency optimized", "latency baseline",
            ratio_approx(0.42, 0.15, at_x=16),
        ),
    ),
    Claim(
        id="E9B/latency-crossover-g2",
        experiment="fig14", generation=2,
        claim="the crossover shape carries over to G2",
        citation=_CITE,
        allowance=_DEVIATION,
        check=on_pair(
            "latency optimized", "latency baseline", crossover_at(2, 8)
        ),
    ),
)
