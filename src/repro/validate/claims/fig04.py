"""E4 — Figure 4: write-buffer hit ratio under random partial writes.

Paper claims (S3.2): the hit ratio is 1.0 while the working set fits
the write buffer (12 KB on G1, 16 KB on G2), then decays *gracefully*
— random eviction spreads the misses, unlike a FIFO cliff — and G2's
larger buffer keeps it higher at every working-set size.

The fig4 experiment sweeps both generations into one report ("G1
Optane" / "G2 Optane" series), so every claim here registers under
generation 1; the G2-flavoured claims simply select the G2 series.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.validate.predicates import (
    all_of,
    knee_between,
    monotone_decay,
    ordering,
    plateau,
    within,
)
from repro.validate.spec import Claim, on_pair, on_series

_CITE = "Fig. 4, S3.2"

CLAIMS = (
    Claim(
        id="E4/full-hit-below-capacity",
        experiment="fig4", generation=1,
        claim="G1 hit ratio is 1.0 while WSS fits the 12 KB write buffer",
        citation=_CITE,
        check=on_series("G1 Optane", plateau(1.0, 0.005, x_max=kib(12))),
    ),
    Claim(
        id="E4/full-hit-g2",
        experiment="fig4", generation=1,
        claim="G2 hit ratio is 1.0 while WSS fits its 16 KB write buffer",
        citation=_CITE,
        check=on_series("G2 Optane", plateau(1.0, 0.005, x_max=kib(16))),
    ),
    Claim(
        id="E4/knee-g1",
        experiment="fig4", generation=1,
        claim="G1 hit ratio departs from 1.0 just past 12 KB",
        citation=_CITE,
        allowance="knee at ~14 KB on the fast grid (in-flight-line headroom)",
        check=on_series("G1 Optane", knee_between(kib(13), kib(14), baseline=1.0)),
    ),
    Claim(
        id="E4/knee-g2",
        experiment="fig4", generation=1,
        claim="G2 hit ratio departs from 1.0 just past 16 KB",
        citation=_CITE,
        allowance="knee at ~18 KB on the fast grid (in-flight-line headroom)",
        check=on_series("G2 Optane", knee_between(kib(17), kib(18), baseline=1.0)),
    ),
    Claim(
        id="E4/graceful-decay",
        experiment="fig4", generation=1,
        claim="past capacity G1 decays gracefully (random eviction), no cliff",
        citation=_CITE,
        check=on_series(
            "G1 Optane",
            all_of(
                monotone_decay(x_min=kib(12), tol=0.02, min_drop=0.25),
                within(0.25, 0.75, at_x=kib(32)),
            ),
        ),
    ),
    Claim(
        id="E4/graceful-decay-g2",
        experiment="fig4", generation=1,
        claim="past capacity G2 decays gracefully as well",
        citation=_CITE,
        check=on_series(
            "G2 Optane",
            all_of(
                monotone_decay(x_min=kib(16), tol=0.02, min_drop=0.25),
                within(0.35, 0.8, at_x=kib(32)),
            ),
        ),
    ),
    Claim(
        id="E4/g2-capacity-larger",
        experiment="fig4", generation=1,
        claim="G2's larger buffer keeps its hit ratio >= G1's at every WSS",
        citation=_CITE,
        check=on_pair(
            "G2 Optane", "G1 Optane", ordering(margin=0.0, higher_is_better=True)
        ),
    ),
)
