"""Differential determinism checks for the sweep machinery.

Claim checking is only as trustworthy as the reports it reads, so the
fidelity gate also verifies the machinery's core invariants
differentially:

* **serial vs parallel** — a ``--jobs N`` sweep must produce
  byte-identical report JSON to a serial sweep (the engine merges
  shards in declaration order precisely to guarantee this);
* **cached vs fresh** — replaying a sweep from the on-disk cache must
  reproduce the freshly computed reports byte-for-byte (and cached
  entries must stay untraced: ``timeseries`` is never cached);
* **seed shift** — shape claims must hold under a different machine
  seed: the paper's conclusions cannot hinge on one lucky RNG stream
  (the write buffer's random eviction is the only stochastic piece);
* **grid refinement** — shape claims must hold on the full profile's
  finer grid: a knee that only exists between coarse grid points is
  an artifact, not a finding.

Each check returns a :class:`DeterminismResult`; ``repro validate
--determinism`` runs the suite and folds failures into the exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.runner import ResultCache, RunRequest, run_sweep
from repro.system.presets import preset_overrides


@dataclass(frozen=True)
class DeterminismResult:
    """One differential check's outcome."""

    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        """JSON-friendly form (appended to the fidelity artifact)."""
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


def _sweep_json(requests: list[RunRequest], **kwargs) -> tuple[str, object]:
    """Canonical JSON of a sweep's reports, plus its metrics."""
    results, metrics = run_sweep(requests, **kwargs)
    for result in results:
        if result.error is not None:
            raise RuntimeError(f"{result.request.experiment}: {result.error}")
    payload = [
        [report.to_dict() for report in result.reports] for result in results
    ]
    return json.dumps(payload, sort_keys=True), metrics


def check_parallel_determinism(
    experiments: tuple = ("fig2", "fig7"),
    generation: int = 1,
    profile: str = "fast",
    jobs: int = 4,
) -> DeterminismResult:
    """Serial and process-pool sweeps produce byte-identical reports.

    When no pool can be created (sandboxes without semaphores) the
    engine falls back to serial execution; the check then passes
    trivially but says so in its detail.
    """
    requests = [RunRequest.make(name, generation=generation, profile=profile)
                for name in experiments]
    serial, _ = _sweep_json(requests, jobs=1, cache=None)
    pooled, metrics = _sweep_json(requests, jobs=jobs, cache=None)
    identical = serial == pooled
    detail = f"{', '.join(experiments)} @ jobs=1 vs jobs={jobs}: " + (
        "byte-identical" if identical else "REPORTS DIFFER"
    )
    if metrics.pool_fallback:
        detail += " (pool unavailable; parallel leg ran serially)"
    return DeterminismResult("serial-vs-parallel", identical, detail)


def check_cache_determinism(
    cache_dir,
    experiment: str = "fig2",
    generation: int = 1,
    profile: str = "fast",
) -> DeterminismResult:
    """A cache replay reproduces the fresh reports byte-for-byte."""
    cache = ResultCache(cache_dir)
    requests = [RunRequest.make(experiment, generation=generation, profile=profile)]
    fresh, first = _sweep_json(requests, jobs=1, cache=cache, force=True)
    replay, second = _sweep_json(requests, jobs=1, cache=cache)
    if second.cache_hits != len(requests):
        return DeterminismResult(
            "cached-vs-fresh", False,
            f"{experiment}: replay was not served from cache "
            f"({second.cache_hits} hits / {second.cache_misses} misses)",
        )
    identical = fresh == replay
    return DeterminismResult(
        "cached-vs-fresh", identical,
        f"{experiment}: fresh vs cache replay " +
        ("byte-identical" if identical else "DIFFER"),
    )


def check_seed_stability(
    experiments: tuple = ("fig3", "fig4"),
    generations: tuple = (1, 2),
    profile: str = "fast",
    seed: int = 4242,
) -> DeterminismResult:
    """Shape claims still pass with the machine RNG seeded differently.

    Runs the named experiments' claims under an ambient seed override
    (serial and uncached — the override is process-local and mutated
    results must not be cached) and requires every claim to pass.
    """
    from repro.validate.oracle import validate

    with preset_overrides(seed=seed):
        fidelity = validate(experiments=list(experiments), generations=generations,
                            profile=profile, jobs=1, cache=None)
    failed = [v.claim_id for v in fidelity.failed]
    return DeterminismResult(
        "seed-stability",
        not failed and not fidelity.run_errors,
        f"seed={seed}, {len(fidelity.passed)}/{len(fidelity.verdicts)} claims pass"
        + (f"; failing: {', '.join(failed)}" if failed else ""),
    )


def check_grid_refinement(
    experiments: tuple = ("fig2", "fig3"),
    generations: tuple = (1, 2),
    cache: ResultCache | None = None,
) -> DeterminismResult:
    """Shape claims hold on the full profile's finer sweep grid.

    Claims are written grid-independent (knee windows, plateaus,
    orderings), so the same claim set must pass when the fast
    profile's 2 KB steps refine to the full profile's 1 KB steps.
    """
    from repro.validate.oracle import validate

    fidelity = validate(experiments=list(experiments), generations=generations,
                        profile="full", jobs=1, cache=cache)
    failed = [v.claim_id for v in fidelity.failed]
    return DeterminismResult(
        "grid-refinement",
        not failed and not fidelity.run_errors,
        f"full-profile grid, {len(fidelity.passed)}/{len(fidelity.verdicts)} claims pass"
        + (f"; failing: {', '.join(failed)}" if failed else ""),
    )


def run_determinism_suite(cache_dir=None, jobs: int = 4) -> list[DeterminismResult]:
    """The full differential suite, cheapest checks first."""
    import tempfile

    results = [
        check_cache_determinism(cache_dir or tempfile.mkdtemp(prefix="repro-det-")),
        check_parallel_determinism(jobs=jobs),
        check_seed_stability(),
        check_grid_refinement(),
    ]
    return results
