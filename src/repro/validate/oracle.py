"""The validation engine: run experiments, evaluate claims, aggregate.

:func:`validate` is the one entry point (the ``repro validate`` CLI
and the CI gate are thin layers over it).  It derives the minimal set
of ``(experiment, generation)`` sweep requests from the selected
claims, executes them through the PR-1 runner — so a repeat
validation on an unchanged tree is one cached sweep — and evaluates
every claim against the resulting reports into a
:class:`~repro.validate.report.FidelityReport`.

In mutation-smoke mode (``mutation="knob=value"``) the run is scoped
to the experiments the mutation's expected failures touch, executed
serially, uncached, inside
:func:`repro.system.presets.preset_overrides` — mutated results must
never pollute the cache, and pool workers would not see the ambient
override.
"""

from __future__ import annotations

from typing import Callable

from repro.runner import ResultCache, RunRequest, run_sweep
from repro.system.presets import preset_overrides
from repro.validate.claims import all_claims
from repro.validate.mutations import parse_mutation, resolve_expected
from repro.validate.report import ClaimVerdict, FidelityReport
from repro.validate.spec import Claim


def select_claims(
    experiments: list[str] | None = None,
    generations: tuple = (1, 2),
    profile: str = "fast",
) -> list[Claim]:
    """The registered claims in scope for one validation run."""
    claims = [
        claim
        for claim in all_claims()
        if claim.generation in generations
        and profile in claim.profiles
        and (experiments is None or claim.experiment in experiments)
    ]
    return claims


def _requests_for(claims: list[Claim], profile: str) -> list[RunRequest]:
    """Deduplicated sweep requests covering every selected claim."""
    seen: dict[tuple, RunRequest] = {}
    for claim in claims:
        key = (claim.experiment, claim.generation)
        if key not in seen:
            seen[key] = RunRequest.make(claim.experiment, generation=claim.generation,
                                        profile=profile)
    return list(seen.values())


def validate(
    experiments: list[str] | None = None,
    generations: tuple = (1, 2),
    profile: str = "fast",
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    mutation: str | None = None,
    progress: Callable[[ClaimVerdict], None] | None = None,
    shard_timeout: float | None = None,
    max_retries: int = 2,
) -> FidelityReport:
    """Evaluate the selected paper claims; returns the fidelity report.

    ``experiments=None`` means every experiment with registered
    claims.  ``mutation`` switches to mutation-smoke mode: the named
    knob is flipped, scope narrows to the experiments the mutation's
    expected failures belong to (their other claims ride along as
    collateral-damage controls), and the report's ``ok()`` demands the
    failure set match the expectation exactly.  ``progress`` is called
    once per verdict as claims are evaluated.
    """
    claims = select_claims(experiments, generations, profile)
    fidelity = FidelityReport(profile=profile, generations=tuple(generations))

    overrides = None
    if mutation is not None:
        resolved = parse_mutation(mutation)
        expected = resolve_expected(resolved, [claim.id for claim in claims])
        affected = {claim.experiment for claim in claims if claim.id in set(expected)}
        claims = [claim for claim in claims if claim.experiment in affected]
        fidelity.mutation = resolved.spec
        fidelity.expected_failures = expected
        overrides = resolved.overrides
        jobs, cache, force = 1, None, False  # serial, uncached, by construction

    requests = _requests_for(claims, profile)

    def sweep():
        return run_sweep(requests, jobs=jobs, cache=cache, force=force,
                         shard_timeout=shard_timeout, max_retries=max_retries)

    if overrides is not None:
        with preset_overrides(**overrides):
            results, metrics = sweep()
    else:
        results, metrics = sweep()
    fidelity.sweep_summary = metrics.summary()

    reports_by_key: dict[tuple, list] = {}
    for result in results:
        key = (result.request.experiment, result.request.generation)
        if result.error is not None:
            fidelity.run_errors[f"{key[0]}:g{key[1]}"] = result.error
        else:
            reports_by_key[key] = result.reports

    for claim in claims:
        key = (claim.experiment, claim.generation)
        if key in reports_by_key:
            verdict = ClaimVerdict.from_result(claim, claim.evaluate(reports_by_key[key]))
        else:
            error = fidelity.run_errors.get(f"{key[0]}:g{key[1]}", "experiment did not run")
            verdict = ClaimVerdict(
                claim_id=claim.id, experiment=claim.experiment,
                generation=claim.generation, claim=claim.claim,
                citation=claim.citation, passed=False,
                measured=f"sweep error: {error}", expected=claim.claim,
                allowance=claim.allowance,
            )
        fidelity.verdicts.append(verdict)
        if progress is not None:
            progress(verdict)
    return fidelity
