"""Composable shape predicates over experiment curves.

The fidelity oracle (:mod:`repro.validate`) checks *shape fidelity*,
not absolute nanoseconds: who wins, by what factor, where knees and
crossovers sit.  Each factory here returns a predicate — a callable
taking a :class:`Curve` (or a pair of curves) and returning a
:class:`PredicateResult` — that one EXPERIMENTS.md claim binds to one
or more report series via :mod:`repro.validate.spec`.

Predicates are deliberately grid-independent: they speak about levels,
windows and orderings rather than exact grid points, so the same claim
passes on the fast profile's coarse grid and the full profile's fine
one (the grid-refinement determinism check in
:mod:`repro.validate.determinism` relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True)
class PredicateResult:
    """Outcome of one predicate evaluation.

    ``measured`` states what the curve actually showed and ``expected``
    what the predicate wanted, so a failing claim prints the numbers
    that drove the verdict without re-running anything.
    """

    passed: bool
    measured: str
    expected: str
    details: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Curve:
    """One report series paired with its x-axis."""

    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        """Reject mismatched axis lengths at construction."""
        if len(self.x) != len(self.y):
            raise ValueError(f"curve length mismatch: {len(self.x)} x vs {len(self.y)} y")

    @classmethod
    def of(cls, x: Sequence, y: Sequence[float]) -> "Curve":
        """Build a curve from any sequences (normalized to tuples)."""
        return cls(tuple(x), tuple(y))

    def clip(self, x_min=None, x_max=None) -> "Curve":
        """The sub-curve with ``x_min <= x <= x_max`` (None = open end)."""
        pairs = [
            (x, y)
            for x, y in zip(self.x, self.y)
            if (x_min is None or x >= x_min) and (x_max is None or x <= x_max)
        ]
        return Curve(tuple(p[0] for p in pairs), tuple(p[1] for p in pairs))

    def y_at(self, x) -> float:
        """The y value at the grid point nearest to ``x``."""
        if not self.x:
            raise ValueError("empty curve")
        index = min(range(len(self.x)), key=lambda i: abs(self.x[i] - x))
        return self.y[index]

    def first_x_where(self, condition: Callable[[float], bool]):
        """Smallest x whose y satisfies ``condition`` (None if none does)."""
        for x, y in zip(self.x, self.y):
            if condition(y):
                return x
        return None


#: A single-curve predicate.
Predicate = Callable[[Curve], PredicateResult]
#: A two-curve predicate (first curve is the claim's subject).
PairPredicate = Callable[[Curve, Curve], PredicateResult]


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _span(curve: Curve) -> str:
    return f"[{_fmt(min(curve.y))}, {_fmt(max(curve.y))}] over {len(curve.y)} points"


def plateau(value: float, tol: float, x_min=None, x_max=None) -> Predicate:
    """Every point in the window sits within ``tol`` of ``value``.

    ``tol`` is absolute.  The paper's plateaus (RA = 4/CpX below the
    read-buffer capacity, WA = 0 below the write-buffer capacity) are
    exact in the simulator, so tolerances can be tight.
    """

    def check(curve: Curve) -> PredicateResult:
        window = curve.clip(x_min, x_max)
        expected = f"plateau at {_fmt(value)} +/- {_fmt(tol)}"
        if not window.y:
            return PredicateResult(False, "empty window", expected)
        worst = max(window.y, key=lambda y: abs(y - value))
        return PredicateResult(
            abs(worst - value) <= tol,
            f"{_span(window)}, worst {_fmt(worst)}",
            expected,
            {"worst": worst, "value": value, "tol": tol},
        )

    return check


def knee_between(lo, hi, *, baseline: float | None = None, departure: float = 0.05) -> Predicate:
    """The curve first departs from its baseline inside ``[lo, hi]``.

    The knee is the first x where ``|y - baseline| > departure``
    (baseline defaults to the curve's first point).  This is how the
    12 KB / 16 KB write-buffer capacities and the 16 KB / 22 KB
    read-buffer capacities are asserted without pinning a grid point.
    """

    def check(curve: Curve) -> PredicateResult:
        base = curve.y[0] if baseline is None else baseline
        knee = curve.first_x_where(lambda y: abs(y - base) > departure)
        expected = f"first departure from {_fmt(base)} (+/-{_fmt(departure)}) in [{lo}, {hi}]"
        if knee is None:
            return PredicateResult(False, "no departure anywhere on the grid", expected)
        return PredicateResult(
            lo <= knee <= hi,
            f"knee at x={knee}",
            expected,
            {"knee": knee, "baseline": base},
        )

    return check


def monotone_rise(x_min=None, x_max=None, tol: float = 0.0, min_gain: float = 0.0) -> Predicate:
    """Non-decreasing (within ``tol``) and gaining at least ``min_gain``.

    ``tol`` forgives simulator jitter between adjacent grid points;
    ``min_gain`` requires the window to actually climb (last - first),
    so a flat line cannot pass as a "rise".
    """

    def check(curve: Curve) -> PredicateResult:
        window = curve.clip(x_min, x_max)
        expected = f"monotone rise (tol {_fmt(tol)}), gain >= {_fmt(min_gain)}"
        if len(window.y) < 2:
            return PredicateResult(False, "fewer than 2 points in window", expected)
        dips = [
            (window.x[i + 1], window.y[i] - window.y[i + 1])
            for i in range(len(window.y) - 1)
            if window.y[i + 1] < window.y[i] - tol
        ]
        gain = window.y[-1] - window.y[0]
        return PredicateResult(
            not dips and gain >= min_gain,
            f"gain {_fmt(gain)}, {len(dips)} dip(s) beyond tol",
            expected,
            {"gain": gain, "dips": dips},
        )

    return check


def monotone_decay(x_min=None, x_max=None, tol: float = 0.0, min_drop: float = 0.0) -> Predicate:
    """Non-increasing (within ``tol``) and dropping at least ``min_drop``."""

    def check(curve: Curve) -> PredicateResult:
        inverted = Curve(curve.x, tuple(-y for y in curve.y))
        result = monotone_rise(x_min, x_max, tol=tol, min_gain=min_drop)(inverted)
        return PredicateResult(
            result.passed,
            result.measured.replace("gain", "drop"),
            f"monotone decay (tol {_fmt(tol)}), drop >= {_fmt(min_drop)}",
            result.details,
        )

    return check


def never_below(floor: float, tol: float = 0.0) -> Predicate:
    """No point dips below ``floor - tol`` (e.g. RA >= 1, exclusivity)."""

    def check(curve: Curve) -> PredicateResult:
        low = min(curve.y)
        return PredicateResult(
            low >= floor - tol,
            f"minimum {_fmt(low)}",
            f"never below {_fmt(floor)}",
            {"min": low},
        )

    return check


def within(lo: float, hi: float, at_x=None, x_min=None, x_max=None) -> Predicate:
    """The value at ``at_x`` (or every point in the window) is in ``[lo, hi]``."""

    def check(curve: Curve) -> PredicateResult:
        expected = f"in [{_fmt(lo)}, {_fmt(hi)}]" + (f" at x={at_x}" if at_x is not None else "")
        if at_x is not None:
            value = curve.y_at(at_x)
            return PredicateResult(lo <= value <= hi, _fmt(value), expected, {"value": value})
        window = curve.clip(x_min, x_max)
        if not window.y:
            return PredicateResult(False, "empty window", expected)
        bad = [(x, y) for x, y in zip(window.x, window.y) if not lo <= y <= hi]
        return PredicateResult(
            not bad, f"{_span(window)}, {len(bad)} point(s) outside", expected, {"outside": bad}
        )

    return check


def value_approx(at_x, target: float, rel: float = 0.1) -> Predicate:
    """The value at ``at_x`` is within ``rel`` (relative) of ``target``."""

    def check(curve: Curve) -> PredicateResult:
        value = curve.y_at(at_x)
        bound = abs(target) * rel
        return PredicateResult(
            abs(value - target) <= bound,
            f"{_fmt(value)} at x={at_x}",
            f"{_fmt(target)} +/- {rel:.0%}",
            {"value": value, "target": target},
        )

    return check


def flat_wrt_wss(rel_tol: float = 0.15, x_min=None, x_max=None) -> Predicate:
    """The curve's spread stays within ``rel_tol`` of its mean.

    "Flat with respect to working-set size" — e.g. pure-write latency
    at every WSS, or fig13's optimized read ratio pinned at 1.
    """

    def check(curve: Curve) -> PredicateResult:
        window = curve.clip(x_min, x_max)
        expected = f"flat within {rel_tol:.0%} of the mean"
        if not window.y:
            return PredicateResult(False, "empty window", expected)
        mean = sum(window.y) / len(window.y)
        if mean == 0:
            spread = max(abs(y) for y in window.y)
            return PredicateResult(spread == 0, f"mean 0, spread {_fmt(spread)}", expected)
        spread = max(abs(y - mean) for y in window.y) / abs(mean)
        return PredicateResult(
            spread <= rel_tol,
            f"mean {_fmt(mean)}, spread {spread:.1%}",
            expected,
            {"mean": mean, "spread": spread},
        )

    return check


def ratio_approx(target: float, rel: float = 0.2, at_x=None) -> PairPredicate:
    """subject/reference ~= ``target`` (at ``at_x``, or curve maxima).

    With ``at_x=None`` the ratio of the curve maxima is compared —
    robust for "peaks at ~N x the settled level" claims where the two
    curves peak at slightly different grid points.
    """

    def check(subject: Curve, reference: Curve) -> PredicateResult:
        if at_x is not None:
            a, b = subject.y_at(at_x), reference.y_at(at_x)
        else:
            a, b = max(subject.y), max(reference.y)
        expected = f"ratio {_fmt(target)} +/- {rel:.0%}" + (
            f" at x={at_x}" if at_x is not None else " (of maxima)"
        )
        if b == 0:
            return PredicateResult(False, f"reference is 0 ({_fmt(a)}/0)", expected)
        ratio = a / b
        return PredicateResult(
            abs(ratio - target) <= abs(target) * rel,
            f"{_fmt(a)}/{_fmt(b)} = {_fmt(ratio)}",
            expected,
            {"ratio": ratio, "target": target},
        )

    return check


def span_ratio(x_from, x_to, lo: float, hi: float) -> Predicate:
    """``y(x_to) / y(x_from)`` lies in ``[lo, hi]``.

    Scaling-factor claims over one curve: interleaving's 6-DIMM
    bandwidth gain over 1 DIMM, or fig8's climb from the in-buffer
    floor to the media-bound level.
    """

    def check(curve: Curve) -> PredicateResult:
        a, b = curve.y_at(x_from), curve.y_at(x_to)
        expected = f"y({x_to})/y({x_from}) in [{_fmt(lo)}, {_fmt(hi)}]"
        if a == 0:
            return PredicateResult(False, f"y({x_from}) is 0", expected)
        ratio = b / a
        return PredicateResult(
            lo <= ratio <= hi,
            f"{_fmt(b)}/{_fmt(a)} = {_fmt(ratio)}",
            expected,
            {"ratio": ratio},
        )

    return check


def peak_over_floor(lo: float, hi: float) -> Predicate:
    """``max(y) / min(y)`` lies in ``[lo, hi]``.

    The read-after-persist decay claims: the distance-0 peak sits at
    ~N x the settled floor, without pinning where either lands on the
    grid.
    """

    def check(curve: Curve) -> PredicateResult:
        peak, floor = max(curve.y), min(curve.y)
        expected = f"peak/floor in [{_fmt(lo)}, {_fmt(hi)}]"
        if floor == 0:
            return PredicateResult(False, f"floor is 0 (peak {_fmt(peak)})", expected)
        ratio = peak / floor
        return PredicateResult(
            lo <= ratio <= hi,
            f"{_fmt(peak)}/{_fmt(floor)} = {_fmt(ratio)}",
            expected,
            {"ratio": ratio},
        )

    return check


def ordering(margin: float = 0.0, higher_is_better: bool = False, x_min=None, x_max=None) -> PairPredicate:
    """The subject beats the reference at every point in the window.

    "Beats" means lower by at least ``margin`` (relative), or higher
    when ``higher_is_better`` — the paper's who-wins claims (redo
    beats in-place on G1, helper threads beat baseline on PM).
    """

    def check(subject: Curve, reference: Curve) -> PredicateResult:
        a, b = subject.clip(x_min, x_max), reference.clip(x_min, x_max)
        expected = (
            f"subject {'>' if higher_is_better else '<'} reference by >= {margin:.0%} everywhere"
        )
        if len(a.y) != len(b.y) or not a.y:
            return PredicateResult(False, f"window mismatch ({len(a.y)} vs {len(b.y)})", expected)
        losses = []
        for x, ya, yb in zip(a.x, a.y, b.y):
            wins = ya >= yb * (1 + margin) if higher_is_better else ya <= yb * (1 - margin)
            if not wins:
                losses.append((x, ya, yb))
        return PredicateResult(
            not losses,
            f"{len(a.y) - len(losses)}/{len(a.y)} points won",
            expected,
            {"losses": losses},
        )

    return check


def crossover_at(lo, hi, higher_is_better: bool = False) -> PairPredicate:
    """The subject starts losing and is winning for good by ``[lo, hi]``.

    Finds the first x from which the subject beats the reference at
    every later point (fig14: redirection loses at 1 thread, wins from
    ~4 on).  Passes when that x lies in ``[lo, hi]`` and the subject
    genuinely loses somewhere before it.
    """

    def check(subject: Curve, reference: Curve) -> PredicateResult:
        expected = f"crossover in [{lo}, {hi}] (losing before, winning after)"
        if len(subject.y) != len(reference.y) or len(subject.y) < 2:
            return PredicateResult(False, "curve length mismatch or too short", expected)

        def wins(index: int) -> bool:
            a, b = subject.y[index], reference.y[index]
            return a > b if higher_is_better else a < b

        crossover = None
        for start in range(len(subject.x)):
            if all(wins(i) for i in range(start, len(subject.x))):
                crossover = subject.x[start]
                loses_before = any(not wins(i) for i in range(start))
                break
        if crossover is None:
            return PredicateResult(False, "subject never wins for good", expected)
        if crossover == subject.x[0]:
            return PredicateResult(False, "subject wins everywhere (no crossover)", expected)
        return PredicateResult(
            lo <= crossover <= hi and loses_before,
            f"wins for good from x={crossover}",
            expected,
            {"crossover": crossover},
        )

    return check


def all_of(*predicates: Predicate) -> Predicate:
    """Conjunction: every sub-predicate must pass (details are joined)."""

    def check(curve: Curve) -> PredicateResult:
        results = [predicate(curve) for predicate in predicates]
        failed = [r for r in results if not r.passed]
        return PredicateResult(
            not failed,
            "; ".join(r.measured for r in (failed or results)),
            " AND ".join(r.expected for r in results),
            {"parts": [r.details for r in results]},
        )

    return check
