"""``repro.validate`` — the executable-paper-claim fidelity oracle.

Turns every EXPERIMENTS.md row into a machine-checkable
:class:`~repro.validate.spec.Claim` over experiment report curves and
aggregates the verdicts into a
:class:`~repro.validate.report.FidelityReport`:

* :mod:`repro.validate.predicates` — composable, grid-independent
  shape predicates (plateaus, knees, orderings, crossovers);
* :mod:`repro.validate.claims` — the declarative registry, one module
  per experiment, each claim carrying its paper citation and any
  documented deviation allowance;
* :mod:`repro.validate.oracle` — :func:`validate`, the engine that
  runs the minimal sweep set (through the cached parallel runner) and
  evaluates the claims;
* :mod:`repro.validate.mutations` — mutation-smoke mode: flip one
  inferred design knob, require exactly the right claims to break;
* :mod:`repro.validate.determinism` — differential checks (serial vs
  parallel, cached vs fresh, seed shift, grid refinement).

CLI: ``repro validate [--profile fast|full] [--experiments ...]
[--json out] [--expect-fail knob=value] [--determinism]``.
"""

from repro.validate.determinism import DeterminismResult, run_determinism_suite
from repro.validate.mutations import MUTATIONS, Mutation, parse_mutation
from repro.validate.oracle import select_claims, validate
from repro.validate.predicates import Curve, PredicateResult
from repro.validate.report import ClaimVerdict, FidelityReport
from repro.validate.spec import Claim, ReportSet

__all__ = [
    "Claim",
    "ClaimVerdict",
    "Curve",
    "DeterminismResult",
    "FidelityReport",
    "MUTATIONS",
    "Mutation",
    "PredicateResult",
    "ReportSet",
    "parse_mutation",
    "run_determinism_suite",
    "select_claims",
    "validate",
]
