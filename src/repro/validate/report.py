"""The fidelity report: aggregated claim verdicts, JSON + human table.

A :class:`FidelityReport` is what ``repro validate`` produces: one
:class:`ClaimVerdict` per evaluated claim (pass/fail plus the measured
values that drove the verdict), the run configuration that produced
it, and — in mutation-smoke mode — the expected-vs-observed failure
bookkeeping that decides the exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.validate.predicates import PredicateResult
from repro.validate.spec import Claim


@dataclass(frozen=True)
class ClaimVerdict:
    """One claim's outcome, self-describing for the JSON artifact."""

    claim_id: str
    experiment: str
    generation: int
    claim: str
    citation: str
    passed: bool
    measured: str
    expected: str
    allowance: str = ""

    @classmethod
    def from_result(cls, claim: Claim, result: PredicateResult) -> "ClaimVerdict":
        """Fuse a claim's metadata with its predicate result."""
        return cls(
            claim_id=claim.id,
            experiment=claim.experiment,
            generation=claim.generation,
            claim=claim.claim,
            citation=claim.citation,
            passed=result.passed,
            measured=result.measured,
            expected=result.expected,
            allowance=claim.allowance,
        )

    def to_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "claim_id": self.claim_id,
            "experiment": self.experiment,
            "generation": self.generation,
            "claim": self.claim,
            "citation": self.citation,
            "passed": self.passed,
            "measured": self.measured,
            "expected": self.expected,
            "allowance": self.allowance,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClaimVerdict":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class FidelityReport:
    """Every claim verdict of one validation run, plus its context.

    ``mutation`` is the ``knob=value`` string when the run executed in
    mutation-smoke mode (None otherwise); ``expected_failures`` then
    lists the claim ids the mutation was expected to break.  ``ok()``
    encodes the CI gate: a normal run passes iff every claim passed; a
    mutation run passes iff the failing claims are exactly the
    expected ones — an unexpectedly passing claim means the oracle
    lost its teeth, an unexpectedly failing one means collateral
    damage, and both exit nonzero.
    """

    profile: str = "fast"
    generations: tuple = (1, 2)
    verdicts: list = field(default_factory=list)
    mutation: str | None = None
    expected_failures: list = field(default_factory=list)
    #: Experiments whose sweep failed outright (quarantined runs):
    #: their claims are recorded as failed with the runner's error.
    run_errors: dict = field(default_factory=dict)
    sweep_summary: str = ""

    # -- accounting --------------------------------------------------------

    @property
    def passed(self) -> list:
        """Verdicts that passed."""
        return [v for v in self.verdicts if v.passed]

    @property
    def failed(self) -> list:
        """Verdicts that failed."""
        return [v for v in self.verdicts if not v.passed]

    def unexpected_failures(self) -> list:
        """Failing claims a mutation run did not predict."""
        expected = set(self.expected_failures)
        return [v for v in self.failed if v.claim_id not in expected]

    def unexpected_passes(self) -> list:
        """Claims a mutation was expected to break but that passed."""
        expected = set(self.expected_failures)
        return [v for v in self.passed if v.claim_id in expected]

    def missing_expected(self) -> list:
        """Expected-to-fail claim ids that were never evaluated."""
        seen = {v.claim_id for v in self.verdicts}
        return [claim_id for claim_id in self.expected_failures if claim_id not in seen]

    def ok(self) -> bool:
        """The gate verdict (see class docstring)."""
        if self.run_errors:
            return False
        if self.mutation is None:
            return not self.failed
        return (
            not self.unexpected_failures()
            and not self.unexpected_passes()
            and not self.missing_expected()
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly form (the CI artifact schema)."""
        return {
            "schema": "repro-fidelity-report/1",
            "profile": self.profile,
            "generations": list(self.generations),
            "mutation": self.mutation,
            "expected_failures": list(self.expected_failures),
            "run_errors": dict(self.run_errors),
            "sweep_summary": self.sweep_summary,
            "ok": self.ok(),
            "counts": {
                "claims": len(self.verdicts),
                "passed": len(self.passed),
                "failed": len(self.failed),
            },
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialize for ``--json`` / the CI artifact."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FidelityReport":
        """Rebuild a report from :meth:`to_json` output."""
        data = json.loads(text)
        return cls(
            profile=data["profile"],
            generations=tuple(data["generations"]),
            verdicts=[ClaimVerdict.from_dict(v) for v in data["verdicts"]],
            mutation=data.get("mutation"),
            expected_failures=list(data.get("expected_failures", [])),
            run_errors=dict(data.get("run_errors", {})),
            sweep_summary=data.get("sweep_summary", ""),
        )

    # -- rendering ---------------------------------------------------------

    def render(self, verbose: bool = False) -> str:
        """Human table: one row per claim, failures always expanded."""
        lines = [
            f"== fidelity: {len(self.passed)}/{len(self.verdicts)} claims pass "
            f"(profile={self.profile}, generations={','.join(map(str, self.generations))}"
            + (f", mutation={self.mutation}" if self.mutation else "")
            + ") =="
        ]
        width = max((len(v.claim_id) for v in self.verdicts), default=8)
        for verdict in self.verdicts:
            status = "PASS" if verdict.passed else "FAIL"
            if self.mutation is not None and verdict.claim_id in set(self.expected_failures):
                status += " (expected FAIL)" if not verdict.passed else " (!! expected to FAIL)"
            lines.append(f"{status:<6} {verdict.claim_id.ljust(width)}  {verdict.claim}")
            if verbose or not verdict.passed:
                lines.append(f"       {' ' * width}  measured: {verdict.measured}")
                lines.append(f"       {' ' * width}  expected: {verdict.expected}")
                if verdict.allowance:
                    lines.append(f"       {' ' * width}  allowance: {verdict.allowance}")
        for experiment, error in self.run_errors.items():
            lines.append(f"ERROR  {experiment}: {error}")
        if self.mutation is not None:
            missing = self.missing_expected()
            if missing:
                lines.append(f"expected-to-fail claims never evaluated: {', '.join(missing)}")
            lines.append(
                "mutation verdict: "
                + ("expected breakage observed" if self.ok() else "MISMATCH with expectation")
            )
        if self.sweep_summary:
            lines.append(f"[sweep: {self.sweep_summary}]")
        return "\n".join(lines)
