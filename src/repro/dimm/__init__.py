"""DIMM front-ends (Optane and DRAM) and their configurations."""

from repro.dimm.config import DramDimmConfig, OptaneDimmConfig
from repro.dimm.dram import DramDimm
from repro.dimm.optane import OptaneDimm, ReadResponse, WriteResponse

__all__ = [
    "DramDimmConfig",
    "OptaneDimmConfig",
    "DramDimm",
    "OptaneDimm",
    "ReadResponse",
    "WriteResponse",
]
