"""Optane DIMM front-end: buffers + AIT + media behind a DDR-T interface.

This is the component the iMC talks to.  It owns the read buffer, the
write-combining buffer, and the 3D-XPoint media, and implements the
paper's inferred behaviours:

* reads probe the write buffer, then the read buffer, then the media
  (installing the fetched XPLine into the read buffer);
* writes merge into the write buffer; a write that hits a read-buffer
  XPLine *adopts* it into the write buffer, skipping the
  read-modify-write (§3.3);
* capacity evictions apply back-pressure to the WPQ (this is what
  limits write bandwidth), while periodic write-backs drain
  asynchronously;
* every interaction is counted in the DIMM's telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import (
    CACHELINE_SIZE,
    cacheline_slot_in_xpline,
    xpline_index,
)
from repro.common.rng import DeterministicRng
from repro.buffers.read_buffer import ReadBuffer
from repro.buffers.write_buffer import WriteBuffer, Writeback
from repro.dimm.config import OptaneDimmConfig
from repro.media.xpoint import XPointMedia
from repro.sim.clock import Cycles
from repro.stats.counters import TelemetryCounters


@dataclass(frozen=True)
class ReadResponse:
    """Timing and provenance of one 64 B read."""

    finish: Cycles
    #: Where the data came from: "write-buffer", "read-buffer", "media".
    source: str


@dataclass(frozen=True)
class WriteResponse:
    """Timing of one 64 B write ingested through the WPQ."""

    #: When the DIMM accepted the line (WPQ slot freed; store "done").
    ingest_finish: Cycles
    #: When the flush is complete on the DIMM (read-after-persist gate).
    persist_completion: Cycles


class OptaneDimm:
    """One simulated Optane DCPMM module."""

    def __init__(
        self,
        config: OptaneDimmConfig,
        counters: TelemetryCounters,
        rng: DeterministicRng,
        name: str = "pm0",
    ) -> None:
        config.validate()
        self.config = config
        self.name = name
        self.counters = counters
        #: Tracer handle + track label, installed by an ambient trace
        #: session (None ⇒ tracing off, see repro.trace.session).
        self.tracer = None
        self.trace_track: str | None = None
        self.media = XPointMedia(config.media, counters, name=f"{name}.media")
        self.read_buffer = ReadBuffer(
            config.read_buffer_bytes,
            name=f"{name}.rbuf",
            policy=config.read_buffer_policy,
        )
        self.write_buffer = WriteBuffer(
            config.write_buffer_bytes,
            rng=rng,
            periodic_writeback=config.periodic_writeback,
            writeback_period=config.writeback_period,
            name=f"{name}.wbuf",
            eviction=config.write_buffer_eviction,
        )

    # -- read path ---------------------------------------------------------

    def read_line(self, now: Cycles, addr: int, demand: bool = True) -> ReadResponse:
        """Serve one cacheline read arriving at the DIMM at ``now``."""
        self.counters.imc_read_bytes += CACHELINE_SIZE
        if demand:
            self.counters.demand_read_bytes += CACHELINE_SIZE
        self._drain_periodic(now)

        xpline = xpline_index(addr)
        slot = cacheline_slot_in_xpline(addr)
        tracer = self.tracer
        track = self.trace_track or self.name

        if self.write_buffer.servable(xpline, slot):
            self.counters.read_buffer_hits += 1
            if tracer is not None and tracer.wants("wbuf"):
                tracer.instant("wbuf", "read-hit", now, track, addr=addr)
            return ReadResponse(now + self.config.buffer_read_latency, "write-buffer")

        if self.write_buffer.contains(xpline):
            # The XPLine is buffered but this slot's data is not held:
            # one media read completes the entry (read-side RMW fill),
            # after which every slot is servable from the write buffer.
            self.counters.read_buffer_misses += 1
            self.counters.underfill_reads += 1
            grant = self.media.read_xpline(now, addr)
            self.write_buffer.fill_from_media(xpline)
            if tracer is not None:
                if tracer.wants("wbuf"):
                    tracer.instant("wbuf", "underfill-fill", now, track, addr=addr)
                if tracer.wants("media"):
                    tracer.span("media", "read-xpline", now, grant.finish,
                                track, addr=addr)
            return ReadResponse(grant.finish + self.config.transfer_latency, "write-buffer-fill")

        if self.read_buffer.deliver(xpline, slot):
            self.counters.read_buffer_hits += 1
            if tracer is not None and tracer.wants("rbuf"):
                tracer.instant("rbuf", "hit", now, track, addr=addr)
            return ReadResponse(now + self.config.buffer_read_latency, "read-buffer")

        self.counters.read_buffer_misses += 1
        grant = self.media.read_xpline(now, addr)
        self.read_buffer.install(xpline, consumed_slots=(slot,))
        if tracer is not None:
            if tracer.wants("rbuf"):
                tracer.instant("rbuf", "miss", now, track, addr=addr)
            if tracer.wants("media"):
                tracer.span("media", "read-xpline", now, grant.finish,
                            track, addr=addr)
        return ReadResponse(grant.finish + self.config.transfer_latency, "media")

    # -- write path ----------------------------------------------------------

    def ingest_write(self, now: Cycles, addr: int) -> WriteResponse:
        """Ingest one cacheline write drained from the WPQ at ``now``."""
        self.counters.imc_write_bytes += CACHELINE_SIZE
        xpline = xpline_index(addr)
        slot = cacheline_slot_in_xpline(addr)

        tracer = self.tracer
        wants_wbuf = tracer is not None and tracer.wants("wbuf")
        track = self.trace_track or self.name
        if self.write_buffer.contains(xpline):
            outcome = self.write_buffer.write(now, xpline, slot)
            self.counters.write_buffer_hits += 1
            if wants_wbuf:
                tracer.instant("wbuf", "hit", now, track, addr=addr)
        elif self.config.enable_transition and self.read_buffer.contains(xpline):
            # §3.3: the XPLine transitions from the read buffer to the
            # write buffer; its media contents come along, so no
            # read-modify-write will be needed at eviction time.
            self.read_buffer.take(xpline)
            outcome = self.write_buffer.adopt_from_read_buffer(now, xpline, slot)
            self.counters.write_buffer_misses += 1
            self.counters.rmw_avoided += 1
            if wants_wbuf:
                tracer.instant("wbuf", "transition", now, track, addr=addr)
        else:
            outcome = self.write_buffer.write(now, xpline, slot)
            self.counters.write_buffer_misses += 1
            if wants_wbuf:
                tracer.instant("wbuf", "miss", now, track, addr=addr)

        ingest_finish = now + self.config.ingest_latency
        for writeback in outcome.writebacks:
            write_start = self._schedule_writeback(now, writeback)
            # Buffer space is not actually free until the write-back has
            # been issued to the media: when the write port is backlogged
            # the ingest waits — the back-pressure that bounds sustained
            # write bandwidth (of any pattern) to the media drain rate.
            ingest_finish = max(ingest_finish, write_start + self.config.ingest_latency)

        persist_completion = ingest_finish + self.config.persist_drain_latency
        return WriteResponse(ingest_finish, persist_completion)

    def idle_tick(self, now: Cycles) -> None:
        """Let time-driven machinery (periodic write-back) advance."""
        self._drain_periodic(now)

    def drain_for_power_failure(self, now: Cycles) -> int:
        """ADR drain: flush the whole write buffer to the media.

        Returns the number of XPLines written.  Used by crash-recovery
        tests to model the ADR guarantee that data accepted by the
        write buffer is durable.
        """
        writebacks = self.write_buffer.drain_all()
        for writeback in writebacks:
            self._schedule_writeback(now, writeback)
        return len(writebacks)

    # -- internals -------------------------------------------------------------

    def _drain_periodic(self, now: Cycles) -> None:
        for writeback in self.write_buffer.poll(now):
            self._schedule_writeback(now, writeback)

    def _schedule_writeback(self, now: Cycles, writeback: Writeback) -> Cycles:
        """Issue the media work for one write-back; returns write start time."""
        addr = writeback.xpline * 256
        if writeback.needs_underfill_read:
            self.counters.underfill_reads += 1
        grant = self.media.write_xpline(now, addr, rmw=writeback.needs_underfill_read)
        if writeback.reason in ("periodic", "rewrite"):
            self.counters.periodic_writebacks += 1
        else:
            self.counters.write_buffer_evictions += 1
        if self.tracer is not None and self.tracer.wants("media"):
            self.tracer.span("media", "write-xpline", grant.start, grant.finish,
                             self.trace_track or self.name,
                             reason=writeback.reason,
                             rmw=writeback.needs_underfill_read)
        return grant.start

    def reset(self) -> None:
        """Clear all buffering and media state (counters untouched)."""
        self.read_buffer.clear()
        self.write_buffer.clear()
        self.media.reset()
