"""DRAM DIMM front-end.

DRAM has no on-DIMM buffering and no access-granularity mismatch; the
front-end exists so the iMC can treat both device types uniformly and
so the paper's DRAM-baseline experiments (Figure 7 b/d/f/h, Figure 10
c/d) run through the same code path.
"""

from __future__ import annotations

from repro.common.constants import CACHELINE_SIZE
from repro.dimm.config import DramDimmConfig
from repro.dimm.optane import ReadResponse, WriteResponse
from repro.media.dram import DramMedia
from repro.sim.clock import Cycles
from repro.stats.counters import TelemetryCounters


class DramDimm:
    """One simulated DRAM channel."""

    def __init__(self, config: DramDimmConfig, counters: TelemetryCounters, name: str = "dram0") -> None:
        config.validate()
        self.config = config
        self.name = name
        self.counters = counters
        self.media = DramMedia(config.media, counters, name=f"{name}.media")

    def read_line(self, now: Cycles, addr: int, demand: bool = True) -> ReadResponse:
        """Serve one cacheline read (synchronous)."""
        self.counters.imc_read_bytes += CACHELINE_SIZE
        if demand:
            self.counters.demand_read_bytes += CACHELINE_SIZE
        grant = self.media.read_line(now, addr)
        return ReadResponse(grant.finish, "media")

    def ingest_write(self, now: Cycles, addr: int) -> WriteResponse:
        """Ingest one cacheline write drained from the WPQ."""
        self.counters.imc_write_bytes += CACHELINE_SIZE
        grant = self.media.write_line(now, addr)
        ingest_finish = now + self.config.ingest_latency
        return WriteResponse(
            ingest_finish=ingest_finish,
            persist_completion=max(grant.finish, ingest_finish) + self.config.persist_drain_latency,
        )

    def idle_tick(self, now: Cycles) -> None:
        """No time-driven machinery in DRAM."""

    def reset(self) -> None:
        """Clear media port state."""
        self.media.reset()
