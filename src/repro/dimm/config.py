"""Configuration of Optane and DRAM DIMM front-ends, with G1/G2 presets.

The presets encode the generational differences the paper measured:

==============================  ==============  ==============
Property                        G1 (100-series) G2 (200-series)
==============================  ==============  ==============
Read buffer                     16 KB           22 KB
Write-combining buffer          12 KB           16 KB
Periodic full-line write-back   yes (~5000 cyc) no
On-DIMM buffer hit latency      lower           higher (§3.5)
clwb semantics (CPU side)       invalidate      retain
==============================  ==============  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.common.units import kib
from repro.media.dram import DramConfig
from repro.media.xpoint import XPointConfig


@dataclass(frozen=True)
class OptaneDimmConfig:
    """Everything needed to instantiate one Optane DIMM front-end."""

    generation: int = 1
    read_buffer_bytes: int = kib(16)
    write_buffer_bytes: int = kib(12)
    #: Latency of serving a 64 B read from an on-DIMM buffer.
    buffer_read_latency: float = 120.0
    #: Latency for the write buffer to accept one cacheline.
    ingest_latency: float = 40.0
    #: DDR-T burst transfer to the iMC after the media read completes.
    transfer_latency: float = 30.0
    #: G1 flushes fully-dirty XPLines every ~5000 cycles (§3.2).
    periodic_writeback: bool = True
    writeback_period: float = 5000.0
    #: Eviction policies — the hardware values are "fifo" (read buffer,
    #: §3.1) and "random" (write buffer, §3.2); the alternatives exist
    #: for ablation studies.
    read_buffer_policy: str = "fifo"
    write_buffer_eviction: str = "random"
    #: Whether writes adopt read-buffered XPLines (§3.3); ablation knob.
    enable_transition: bool = True
    #: Cycles from WPQ ingest until a flush is *complete* on the DIMM —
    #: the read-after-persist window of Section 3.5.
    persist_drain_latency: float = 2100.0
    media: XPointConfig = field(default_factory=XPointConfig)

    def validate(self) -> None:
        """Raise ConfigError on any inconsistent field."""
        if self.generation not in (1, 2):
            raise ConfigError(f"unknown Optane generation {self.generation}")
        if self.read_buffer_bytes <= 0 or self.write_buffer_bytes <= 0:
            raise ConfigError("buffer sizes must be positive")
        for attr in ("buffer_read_latency", "ingest_latency", "transfer_latency"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} cannot be negative")
        if self.read_buffer_policy not in ("fifo", "lru"):
            raise ConfigError(f"unknown read buffer policy {self.read_buffer_policy!r}")
        if self.write_buffer_eviction not in ("random", "fifo"):
            raise ConfigError(f"unknown write buffer eviction {self.write_buffer_eviction!r}")
        if self.persist_drain_latency < 0:
            raise ConfigError("persist_drain_latency cannot be negative")
        self.media.validate()

    @staticmethod
    def g1(**overrides) -> "OptaneDimmConfig":
        """1st-generation (100-series) Optane DCPMM."""
        return replace(OptaneDimmConfig(), **overrides)

    @staticmethod
    def g2(**overrides) -> "OptaneDimmConfig":
        """2nd-generation (200-series) Optane DCPMM.

        Larger buffers, no periodic full-line write-back, and a higher
        buffer-hit latency (the paper attributes the latter to the cost
        of cache-coherence maintenance on the new platform).
        """
        base = OptaneDimmConfig(
            generation=2,
            read_buffer_bytes=kib(22),
            write_buffer_bytes=kib(16),
            buffer_read_latency=180.0,
            periodic_writeback=False,
            persist_drain_latency=1900.0,
        )
        return replace(base, **overrides)


@dataclass(frozen=True)
class DramDimmConfig:
    """Configuration of a DRAM channel front-end."""

    #: Cycles for the iMC to accept one store into the WPQ.
    ingest_latency: float = 30.0
    #: Flush-completion lag: small for DRAM, giving the paper's ~2x
    #: (rather than ~10x) read-after-persist gap on DRAM (Figure 7).
    persist_drain_latency: float = 420.0
    media: DramConfig = field(default_factory=DramConfig)

    def validate(self) -> None:
        """Raise ConfigError on negative latencies."""
        if self.ingest_latency < 0 or self.persist_drain_latency < 0:
            raise ConfigError("DRAM DIMM latencies cannot be negative")
        self.media.validate()
