"""Black-box inference of on-DIMM parameters — the paper's methodology
as a reusable library.

The paper never opens the DIMM: it *infers* the internal design from
telemetry signatures (RA steps, WA departures, hit-ratio slopes, RAP
stalls).  This module packages those inferences as functions that take
a machine *factory* (so each probe point runs on a pristine device)
and return the deduced parameter — the same way one would characterize
an unknown PM device.  Tests validate them against ablated
configurations: feed a simulator with a 24 KB LRU read buffer and the
probes report exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.units import kib
from repro.core.microbench.strided_read import run_strided_read
from repro.core.microbench.write_amp import run_write_amplification
from repro.system.machine import Machine

MachineFactory = Callable[[], Machine]


def infer_read_buffer_capacity(
    factory: MachineFactory,
    lo: int = kib(2),
    hi: int = kib(64),
    resolution: int = kib(1),
) -> int:
    """Deduce the read-buffer capacity from the Figure 2 RA step.

    Binary-searches the largest working set whose CpX=4 strided read
    still shows RA ≈ 1 (every grid point past the capacity jumps to 4
    under FIFO eviction).  Returns the capacity rounded to
    ``resolution``.
    """
    def fits(wss: int) -> bool:
        result = run_strided_read(factory(), wss, cachelines_per_xpline=4, cycles_over_region=4)
        return result.read_amplification < 2.0

    if not fits(lo):
        return 0
    low, high = lo, hi
    while high - low > resolution:
        mid = (low + high) // 2 // resolution * resolution
        if mid <= low:
            break
        if fits(mid):
            low = mid
        else:
            high = mid
    return low


def infer_write_buffer_capacity(
    factory: MachineFactory,
    lo: int = kib(2),
    hi: int = kib(64),
    resolution: int = kib(1),
) -> int:
    """Deduce the write-buffer capacity from the Figure 3 WA departure.

    The largest working set for which 25% partial writes still show
    WA ≈ 0 (fully absorbed).
    """
    def fits(wss: int) -> bool:
        result = run_write_amplification(factory(), wss, written_cachelines=1, passes=6)
        return result.write_amplification < 0.05

    if not fits(lo):
        return 0
    low, high = lo, hi
    while high - low > resolution:
        mid = (low + high) // 2 // resolution * resolution
        if mid <= low:
            break
        if fits(mid):
            low = mid
        else:
            high = mid
    return low


def infer_write_buffer_eviction(factory: MachineFactory, overshoot: float = 1.5) -> str:
    """Classify the eviction policy from the Figure 4 decay shape.

    Cyclic sequential partial writes at ~1.5x capacity: FIFO evicts
    every line right before reuse (hit ratio ~0), random eviction keeps
    a healthy share of survivors.  Returns "fifo" or "random".
    """
    capacity = infer_write_buffer_capacity(factory)
    machine = factory()
    core = machine.new_core()
    base = machine.region_spec("pm").base
    n_xplines = max(int(capacity * overshoot) // XPLINE_SIZE, 2)
    snapshot = machine.pm_counters().snapshot()
    for _ in range(8):
        for index in range(n_xplines):
            core.nt_store(base + index * XPLINE_SIZE, CACHELINE_SIZE)
    delta = machine.pm_counters().delta(snapshot)
    return "fifo" if delta.write_buffer_hit_ratio < 0.02 else "random"


def infer_periodic_writeback(factory: MachineFactory) -> bool:
    """Detect G1-style periodic write-back of fully dirty XPLines.

    Full (100%) writes over a tiny working set: WA ≈ 1 means every
    completed XPLine drained to the media; WA ≈ 0 means it was
    coalesced in the buffer (the G2 design).
    """
    result = run_write_amplification(factory(), kib(4), written_cachelines=4, passes=8)
    return result.write_amplification > 0.5


@dataclass(frozen=True)
class RapProfile:
    """Summary of the device's read-after-persist behaviour."""

    peak_cycles: float
    settled_cycles: float

    @property
    def ratio(self) -> float:
        """Peak over settled latency."""
        return self.peak_cycles / self.settled_cycles if self.settled_cycles else 0.0

    @property
    def suffers_rap(self) -> bool:
        """True when reading a just-persisted line costs >= 3x settled."""
        return self.ratio >= 3.0


def profile_rap(factory: MachineFactory, flush: str = "clwb") -> RapProfile:
    """Measure the Algorithm-1 peak (distance 0) vs settled (distance 32)."""
    from repro.core.microbench.rap import run_rap_iterations
    from repro.persist.persistency import FenceKind, FlushKind

    kind = FlushKind.CLWB if flush == "clwb" else FlushKind.NT_STORE
    peak = run_rap_iterations(factory(), "pm", kind, FenceKind.MFENCE, 0, passes=12)
    settled = run_rap_iterations(factory(), "pm", kind, FenceKind.MFENCE, 32, passes=12)
    return RapProfile(peak_cycles=peak, settled_cycles=settled)


@dataclass(frozen=True)
class DeviceProfile:
    """Everything the black-box probes can tell about a PM device."""

    read_buffer_bytes: int
    write_buffer_bytes: int
    write_buffer_eviction: str
    periodic_writeback: bool
    rap: RapProfile

    def describe(self) -> str:
        """Human-readable multi-line summary of the probe results."""
        lines = [
            f"read buffer   : ~{self.read_buffer_bytes // 1024} KB",
            f"write buffer  : ~{self.write_buffer_bytes // 1024} KB, "
            f"{self.write_buffer_eviction} eviction",
            f"full-line write-back: {'periodic' if self.periodic_writeback else 'none'}",
            f"read-after-persist  : peak {self.rap.peak_cycles:.0f} vs settled "
            f"{self.rap.settled_cycles:.0f} cycles "
            f"({'suffers RAP' if self.rap.suffers_rap else 'no RAP issue'})",
        ]
        return "\n".join(lines)


def characterize(factory: MachineFactory) -> DeviceProfile:
    """Run the full probe battery against an unknown device."""
    return DeviceProfile(
        read_buffer_bytes=infer_read_buffer_capacity(factory),
        write_buffer_bytes=infer_write_buffer_capacity(factory),
        write_buffer_eviction=infer_write_buffer_eviction(factory),
        periodic_writeback=infer_periodic_writeback(factory),
        rap=profile_rap(factory),
    )


def quiet_factory(generation: int, **overrides) -> MachineFactory:
    """Factory for a prefetcher-less preset machine (probe hygiene)."""
    from repro.system.presets import machine_for

    def build() -> Machine:
        return machine_for(generation, prefetchers=PrefetcherConfig.none(), **overrides)

    return build
