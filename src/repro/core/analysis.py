"""Read/write decoupling analysis (the paper's central proposition).

The paper argues performance work on persistent programs should
*decouple* reads from writes: loads from the media are synchronous and
expensive; persists are asynchronous with flat latency; fences gate on
acceptance only.  :class:`InstrumentedCore` makes that decomposition
measurable for any workload written against the Core API: every
operation's cycles are charged to a named bucket, optionally scoped to
a phase label (how Table 1's "segment metadata vs persists vs misc"
columns are produced).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.stats.latency import TimeBreakdown
from repro.system.machine import Core


class InstrumentedCore:
    """A Core proxy that attributes every cycle to a breakdown bucket.

    Buckets default to the operation kind (``load``, ``store``,
    ``flush``, ``fence``, ``nt_store``, ``stream_load``, ``compute``);
    inside a ``with instrumented.phase("segment-metadata"):`` block the
    phase label is used instead, so data structures can mark their
    semantically interesting regions.
    """

    def __init__(self, core: Core) -> None:
        self.core = core
        self.breakdown = TimeBreakdown()
        self._phase: str | None = None

    @property
    def now(self) -> float:
        return self.core.now

    @contextmanager
    def phase(self, label: str):
        """Attribute cycles spent inside the block to ``label``."""
        previous = self._phase
        self._phase = label
        try:
            yield self
        finally:
            self._phase = previous

    def _charge(self, default_bucket: str, cycles: float) -> None:
        self.breakdown.charge(self._phase or default_bucket, cycles)

    # -- proxied operations -------------------------------------------------

    def load(self, addr: int, size: int = 8) -> float:
        cycles = self.core.load(addr, size)
        self._charge("load", cycles)
        return cycles

    def store(self, addr: int, size: int = 8) -> float:
        cycles = self.core.store(addr, size)
        self._charge("store", cycles)
        return cycles

    def nt_store(self, addr: int, size: int = 64) -> float:
        cycles = self.core.nt_store(addr, size)
        self._charge("nt_store", cycles)
        return cycles

    def stream_load(self, addr: int, size: int = 64) -> float:
        cycles = self.core.stream_load(addr, size)
        self._charge("stream_load", cycles)
        return cycles

    def clwb(self, addr: int, size: int = 64) -> float:
        cycles = self.core.clwb(addr, size)
        self._charge("flush", cycles)
        return cycles

    def clflushopt(self, addr: int, size: int = 64) -> float:
        cycles = self.core.clflushopt(addr, size)
        self._charge("flush", cycles)
        return cycles

    def clflush(self, addr: int, size: int = 64) -> float:
        cycles = self.core.clflush(addr, size)
        self._charge("flush", cycles)
        return cycles

    def sfence(self) -> float:
        cycles = self.core.sfence()
        self._charge("fence", cycles)
        return cycles

    def mfence(self) -> float:
        cycles = self.core.mfence()
        self._charge("fence", cycles)
        return cycles

    def fence(self, kind: str = "sfence") -> float:
        cycles = self.core.fence(kind)
        self._charge("fence", cycles)
        return cycles

    def persist(self, addr: int, size: int = 64, fence: str = "sfence") -> float:
        start = self.core.now
        self.core.clwb(addr, size)
        self.core.fence(fence)
        cycles = self.core.now - start
        self._charge("persist", cycles)
        return cycles

    def tick(self, cycles: float) -> None:
        self.core.tick(cycles)
        self._charge("compute", cycles)


def read_write_summary(breakdown: TimeBreakdown) -> dict[str, float]:
    """Fold fine-grained buckets into the paper's read/write/order view.

    * ``read``  — synchronous data loads (load, stream_load),
    * ``write`` — stores and nt-stores,
    * ``order`` — flushes, fences and persist barriers,
    * ``other`` — everything else (compute, custom phases).
    """
    mapping = {
        "load": "read",
        "stream_load": "read",
        "store": "write",
        "nt_store": "write",
        "flush": "order",
        "fence": "order",
        "persist": "order",
    }
    folded = breakdown.merged(mapping)
    fractions = folded.fractions()
    out = {"read": 0.0, "write": 0.0, "order": 0.0, "other": 0.0}
    for name, value in fractions.items():
        out[name if name in out else "other"] += value
    return out
