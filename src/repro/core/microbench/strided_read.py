"""Read-buffer probe: strided reads with per-XPLine cacheline counts.

Reproduces the paper's Section 3.1 benchmark (Figure 1 pattern,
Figure 2 results): read CpX cachelines from every XPLine of a region,
one pass per cacheline slot, invalidating each line with clflushopt
right after the read so every access is served by the DIMM.  Read
amplification then reveals the read buffer's capacity (where RA jumps
to 4) and its exclusivity (RA never below 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE
from repro.system.machine import Machine
from repro.system.presets import machine_for
from repro.workloads.patterns import strided_read_addresses


@dataclass(frozen=True)
class StridedReadResult:
    """One (WSS, CpX) measurement."""

    wss: int
    cachelines_per_xpline: int
    read_amplification: float
    buffer_hit_ratio: float


def run_strided_read(
    machine: Machine,
    wss: int,
    cachelines_per_xpline: int,
    cycles_over_region: int = 6,
    region: str = "pm",
) -> StridedReadResult:
    """Run the strided-read kernel on an existing machine.

    ``cycles_over_region`` repeats the full CpX-pass pattern to reach
    steady state; the first cycle warms the buffer and is included
    (its effect washes out, matching the paper's long-running loops).
    """
    core = machine.new_core()
    base = machine.region_spec(region).base
    counters = machine.counters(region)
    snapshot = counters.snapshot()
    for _ in range(cycles_over_region):
        for addr in strided_read_addresses(base, wss, cachelines_per_xpline):
            core.load(addr, 8)
            core.clflushopt(addr)
    delta = machine.counters(region).delta(snapshot)
    return StridedReadResult(
        wss=wss,
        cachelines_per_xpline=cachelines_per_xpline,
        read_amplification=delta.read_amplification,
        buffer_hit_ratio=delta.read_buffer_hit_ratio,
    )


def strided_read_sweep(
    generation: int,
    wss_points: list[int],
    cpx_values: tuple[int, ...] = (1, 2, 3, 4),
    cycles_over_region: int = 6,
) -> list[StridedReadResult]:
    """Full Figure 2 sweep: fresh machine per point, prefetchers off.

    Prefetchers are disabled because the probe measures the *DIMM's*
    buffering; the paper's testbeds toggle CPU prefetchers via BIOS
    for exactly this reason.
    """
    results = []
    for cpx in cpx_values:
        for wss in wss_points:
            machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
            results.append(run_strided_read(machine, wss, cpx, cycles_over_region))
    return results


def default_wss_points(max_kib: int = 36, step_kib: int = 2) -> list[int]:
    """The paper's Figure 2 x-axis: 2 KB .. 36 KB."""
    return [k * 1024 for k in range(step_kib, max_kib + 1, step_kib) if k * 1024 >= XPLINE_SIZE]
