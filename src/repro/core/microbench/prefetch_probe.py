"""On-DIMM prefetch interaction probe (paper Section 3.4, Figure 6).

The benchmark accesses uniformly random 256-byte blocks (aligned to
XPLines, so there is no intrinsic read amplification).  Within each
block all four cachelines are read sequentially ``repeats`` times —
enough sequentiality to trigger every CPU prefetcher — and the block is
then flushed from the CPU caches so its next visit must reach the DIMM
again.

Two read ratios are reported against the *program-demanded* bytes
(4 lines × 64 B per block visit):

* ``pm_read_ratio``   — bytes loaded from the 3D-XPoint media,
* ``imc_read_ratio``  — bytes the iMC loaded from the DIMM.

The same kernel, with ``redirect=True``, implements the paper's
Algorithm 2 optimization (Figures 13/14): the block is copied to a
DRAM staging buffer with SIMD streaming loads (which neither trigger
prefetching nor fill the caches) and the repeated accesses hit the
DRAM buffer instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE, CACHELINES_PER_XPLINE, XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.system.machine import Core, Machine


@dataclass(frozen=True)
class PrefetchProbeResult:
    """Read ratios for one (machine config, WSS) point."""

    wss: int
    demanded_bytes: int
    pm_read_ratio: float
    imc_read_ratio: float
    visits: int


def _visit_block(core: Core, block_base: int, repeats: int) -> None:
    """Read all 4 cachelines of the block ``repeats`` times, then flush."""
    for _ in range(repeats):
        for slot in range(CACHELINES_PER_XPLINE):
            core.load(block_base + slot * CACHELINE_SIZE, 8)
    for slot in range(CACHELINES_PER_XPLINE):
        core.clflushopt(block_base + slot * CACHELINE_SIZE)
    core.sfence()


def _visit_block_redirected(core: Core, block_base: int, staging: int, repeats: int) -> None:
    """Algorithm 2: stream-copy the XPLine to DRAM, then work there."""
    for slot in range(CACHELINES_PER_XPLINE):
        core.stream_load(block_base + slot * CACHELINE_SIZE, CACHELINE_SIZE)
        core.store(staging + slot * CACHELINE_SIZE, CACHELINE_SIZE)
    for _ in range(repeats):
        for slot in range(CACHELINES_PER_XPLINE):
            core.load(staging + slot * CACHELINE_SIZE, 8)


def run_prefetch_probe(
    machine: Machine,
    wss: int,
    visits: int = 20_000,
    repeats: int = 16,
    redirect: bool = False,
    region: str = "pm",
    warmup_fraction: float = 0.25,
    core: Core | None = None,
) -> PrefetchProbeResult:
    """Run the Figure 6 / Figure 13 kernel on an existing machine.

    ``visits`` random block visits are performed; the first
    ``warmup_fraction`` of them warm the caches and buffers before
    counters are sampled.  Passing ``core`` lets multi-thread harnesses
    (Figure 14) reuse the kernel per thread.
    """
    if core is None:
        core = machine.new_core()
    base = machine.region_spec(region).base
    n_blocks = max(1, wss // XPLINE_SIZE)
    rng = DeterministicRng(machine.config.seed).fork(17)
    staging = machine.region_spec("dram").base  # one XPLine of DRAM scratch

    warmup = int(visits * warmup_fraction)
    for _ in range(warmup):
        block = base + rng.choice_index(n_blocks) * XPLINE_SIZE
        if redirect:
            _visit_block_redirected(core, block, staging, repeats)
        else:
            _visit_block(core, block, repeats)

    counters = machine.counters(region)
    snapshot = counters.snapshot()
    measured = visits - warmup
    for _ in range(measured):
        block = base + rng.choice_index(n_blocks) * XPLINE_SIZE
        if redirect:
            _visit_block_redirected(core, block, staging, repeats)
        else:
            _visit_block(core, block, repeats)
    delta = machine.counters(region).delta(snapshot)

    demanded = measured * XPLINE_SIZE  # 4 × 64 B of unique data per visit
    return PrefetchProbeResult(
        wss=wss,
        demanded_bytes=demanded,
        pm_read_ratio=delta.media_read_bytes / demanded if demanded else 0.0,
        imc_read_ratio=delta.imc_read_bytes / demanded if demanded else 0.0,
        visits=measured,
    )
