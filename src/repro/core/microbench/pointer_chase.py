"""Pointer-chase latency benchmark (paper Section 3.6, Figure 8).

The working set is a circular linked list of 256-byte, XPLine-aligned
elements (the paper's ``working_set_unit``: a ``next`` pointer in the
first cacheline, a pad area in the rest).  Per element the benchmark:

* follows ``next`` (a dependent load — the read side),
* updates one pad cacheline and persists it (the write side),

under a configurable persist type (clwb / nt-store), persistency model
(strict / relaxed) and chain order (sequential / random).  Pure-read
and pure-write variants isolate the two sides: pure reads only chase
pointers; pure writes take the element addresses from a DRAM array and
never read PM.

Because full passes over gigabyte working sets are too slow to repeat,
measurement is capped at ``max_ops`` chain steps after a warm-up of
``warmup_ops`` steps — the chain is uniformly random, so a partial
traversal is statistically equivalent to a full pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.persist.persistency import PersistencyModel
from repro.system.machine import Machine
from repro.workloads.patterns import circular_chain


@dataclass(frozen=True)
class ChaseResult:
    """Average per-element latency for one configuration."""

    wss: int
    mode: str  # clwb | nt-store | read | write
    sequential: bool
    persistency: PersistencyModel
    cycles_per_element: float
    elements: int

    @property
    def label(self) -> str:
        """Figure-8 series name (e.g. \"rand_clwb\")."""
        order = "seq" if self.sequential else "rand"
        return f"{order}_{self.mode}"


#: Relaxed-model epoch length when a pass boundary is not reached
#: (the paper fences once per pass over the list).
_RELAXED_EPOCH = 256


class PointerChaseBench:
    """Reusable pointer-chase kernel over one machine."""

    def __init__(
        self,
        machine: Machine,
        wss: int,
        sequential: bool,
        region: str = "pm",
        seed: int = 1234,
    ) -> None:
        self.machine = machine
        self.wss = wss
        self.sequential = sequential
        self.element_count = wss // XPLINE_SIZE
        base = machine.region_spec(region).base
        self._element_addrs = [base + i * XPLINE_SIZE for i in range(self.element_count)]
        rng = DeterministicRng(seed)
        self._next = circular_chain(self.element_count, sequential, rng)
        # Pure-write variants use a randomized DRAM-held address array.
        self._write_order = rng.shuffled(range(self.element_count)) if not sequential else list(
            range(self.element_count)
        )

    def _run(self, step, count: int, warmup: int) -> float:
        core = self.machine.new_core()
        cursor = 0
        position = 0
        for i in range(warmup):
            cursor, position = step(core, cursor, position, i)
        start = core.now
        for i in range(count):
            cursor, position = step(core, cursor, position, i)
        return (core.now - start) / count

    def run(
        self,
        mode: str,
        persistency: PersistencyModel = PersistencyModel.STRICT,
        max_ops: int = 50_000,
        warmup_cap: int = 120_000,
    ) -> ChaseResult:
        """Measure one configuration; returns average cycles/element.

        Warm-up covers one full pass over the chain (so steady-state
        cache contents are established) up to ``warmup_cap`` steps; for
        working sets past the cap, cold behaviour *is* the steady state
        of interest (hit probability is negligible either way).
        """
        count = min(max_ops, max(self.element_count * 4, 2_000))
        warmup = min(self.element_count, warmup_cap)
        epoch = self.element_count if self.element_count < _RELAXED_EPOCH else _RELAXED_EPOCH

        addrs = self._element_addrs
        nxt = self._next
        order = self._write_order
        n = self.element_count

        if mode == "read":

            def step(core, cursor, position, i):
                core.load(addrs[cursor], 8)
                return nxt[cursor], position

        elif mode == "write":

            def step(core, cursor, position, i):
                element = order[position]
                core.store(addrs[element] + CACHELINE_SIZE, 8)
                core.clwb(addrs[element] + CACHELINE_SIZE)
                if persistency is PersistencyModel.STRICT:
                    core.sfence()
                elif i % epoch == epoch - 1:
                    core.sfence()
                return cursor, (position + 1) % n

        elif mode == "clwb":

            def step(core, cursor, position, i):
                core.load(addrs[cursor], 8)
                pad = addrs[cursor] + CACHELINE_SIZE
                core.store(pad, 8)
                core.clwb(pad)
                if persistency is PersistencyModel.STRICT:
                    core.sfence()
                elif i % epoch == epoch - 1:
                    core.sfence()
                return nxt[cursor], position

        elif mode == "nt-store":

            def step(core, cursor, position, i):
                core.load(addrs[cursor], 8)
                core.nt_store(addrs[cursor] + CACHELINE_SIZE, CACHELINE_SIZE)
                if persistency is PersistencyModel.STRICT:
                    core.sfence()
                elif i % epoch == epoch - 1:
                    core.sfence()
                return nxt[cursor], position

        else:
            raise ValueError(f"unknown pointer-chase mode {mode!r}")

        cycles = self._run(step, count, warmup)
        return ChaseResult(
            wss=self.wss,
            mode=mode,
            sequential=self.sequential,
            persistency=persistency,
            cycles_per_element=cycles,
            elements=count,
        )
