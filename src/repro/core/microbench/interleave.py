"""Read/write buffer separation probes (paper Section 3.3, Figure 5).

Two kernels establish that the read and write buffers are *separate*
spaces and that XPLines can *transition* between them:

* :func:`run_separation_probe` — interleaves reads over a 16 KB region
  with nt-store writes over a disjoint 8 KB region.  If the buffers
  were one shared 16 KB space, the 24 KB aggregate would thrash it;
  because they are separate, the probe sees RA = 1 and zero media
  writes, identical to running the two halves alone.
* :func:`run_transition_probe` — nt-stores the first cacheline of each
  XPLine, then reads the remaining three (flushing them from the CPU
  cache).  The write hits the write buffer path while the reads are
  served without re-reading the media for every line; a write landing
  on a read-buffered XPLine adopts it (``rmw_avoided``), skipping the
  read-modify-write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.units import kib
from repro.system.machine import Machine
from repro.system.presets import machine_for


@dataclass(frozen=True)
class SeparationResult:
    """Interleaved read/write vs the isolated baselines."""

    interleaved_read_amplification: float
    interleaved_media_write_bytes: int
    baseline_read_amplification: float
    baseline_media_write_bytes: int

    @property
    def buffers_are_separate(self) -> bool:
        """True when interleaving behaves like the isolated baselines."""
        return (
            abs(self.interleaved_read_amplification - self.baseline_read_amplification) < 0.05
            and self.interleaved_media_write_bytes == self.baseline_media_write_bytes
        )


def _read_region(core, base: int, size: int) -> None:
    for offset in range(0, size, CACHELINE_SIZE):
        core.load(base + offset, 8)
        core.clflushopt(base + offset)


def _write_region(core, base: int, size: int) -> None:
    # Partial (one-line-per-XPLine) writes: fully-written XPLines would
    # trigger G1's periodic write-back and put media writes into the
    # measurement, which is not what the separation question is about.
    for offset in range(0, size, XPLINE_SIZE):
        core.nt_store(base + offset, CACHELINE_SIZE)


def run_separation_probe(
    generation: int,
    read_bytes: int = kib(16),
    write_bytes: int = kib(8),
    passes: int = 6,
) -> SeparationResult:
    """Section 3.3 separation experiment on a fresh machine."""
    # Interleaved: alternate one read-region line and one write-region line.
    machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
    core = machine.new_core()
    read_base = machine.region_spec("pm").base
    write_base = read_base + kib(64)  # disjoint, same DIMM
    snapshot = machine.counters("pm").snapshot()
    read_lines = read_bytes // CACHELINE_SIZE
    write_xplines = write_bytes // XPLINE_SIZE
    for _ in range(passes):
        for index in range(max(read_lines, write_xplines)):
            if index < read_lines:
                addr = read_base + index * CACHELINE_SIZE
                core.load(addr, 8)
                core.clflushopt(addr)
            if index < write_xplines:
                core.nt_store(write_base + index * XPLINE_SIZE, CACHELINE_SIZE)
    interleaved = machine.counters("pm").delta(snapshot)

    # Baselines: the same traffic, regions accessed separately.
    machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
    core = machine.new_core()
    read_base = machine.region_spec("pm").base
    write_base = read_base + kib(64)
    snapshot = machine.counters("pm").snapshot()
    for _ in range(passes):
        _read_region(core, read_base, read_bytes)
    for _ in range(passes):
        _write_region(core, write_base, write_bytes)
    baseline = machine.counters("pm").delta(snapshot)

    return SeparationResult(
        interleaved_read_amplification=interleaved.read_amplification,
        interleaved_media_write_bytes=interleaved.media_write_bytes,
        baseline_read_amplification=baseline.read_amplification,
        baseline_media_write_bytes=baseline.media_write_bytes,
    )


@dataclass(frozen=True)
class TransitionResult:
    """Write-then-read-same-XPLine experiment."""

    media_read_bytes: int
    media_write_bytes: int
    imc_read_bytes: int
    imc_write_bytes: int
    rmw_avoided: int

    @property
    def media_traffic_fraction(self) -> float:
        """Media bytes moved per iMC byte moved (≪ 1 ⇒ buffers work)."""
        imc_total = self.imc_read_bytes + self.imc_write_bytes
        if imc_total == 0:
            return 0.0
        return (self.media_read_bytes + self.media_write_bytes) / imc_total


def run_transition_probe(
    generation: int,
    wss: int = kib(8),
    passes: int = 4,
    write_first: bool = True,
) -> TransitionResult:
    """Section 3.3 transition experiment on a fresh machine.

    ``write_first=True`` reproduces the paper's ordering (one nt-store
    to the first cacheline of each XPLine followed by three reads);
    ``False`` reads first, making the subsequent write land on a
    read-buffered XPLine and exercising the adoption path.
    """
    machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
    core = machine.new_core()
    base = machine.region_spec("pm").base
    n_xplines = wss // XPLINE_SIZE
    snapshot = machine.counters("pm").snapshot()
    for _ in range(passes):
        for index in range(n_xplines):
            xpline_base = base + index * XPLINE_SIZE
            if write_first:
                core.nt_store(xpline_base, CACHELINE_SIZE)
            for slot in (1, 2, 3):
                addr = xpline_base + slot * CACHELINE_SIZE
                core.load(addr, 8)
                core.clflushopt(addr)
            if not write_first:
                core.nt_store(xpline_base, CACHELINE_SIZE)
    delta = machine.counters("pm").delta(snapshot)
    return TransitionResult(
        media_read_bytes=delta.media_read_bytes,
        media_write_bytes=delta.media_write_bytes,
        imc_read_bytes=delta.imc_read_bytes,
        imc_write_bytes=delta.imc_write_bytes,
        rmw_avoided=delta.rmw_avoided,
    )
