"""Write-buffer probes: amplification and hit ratio (Figures 3 and 4).

Two kernels:

* :func:`run_write_amplification` — the Figure 3 benchmark: nt-store
  the first k of 4 cachelines of every XPLine (k/4 = 25..100 %),
  sweeping the working set.  Reveals the buffer capacity (WA leaves 0)
  and G1's periodic write-back of fully-dirty lines (100 % writes have
  WA ≈ 1 at any WSS).
* :func:`run_write_hit_ratio` — the Figure 4 benchmark: uniformly
  random single-cacheline nt-stores; the buffer hit ratio's graceful
  decay past capacity is the signature of random eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.system.machine import Machine
from repro.system.presets import machine_for
from repro.workloads.patterns import partial_write_addresses


@dataclass(frozen=True)
class WriteAmplificationResult:
    """One (WSS, write fraction) measurement."""

    wss: int
    written_cachelines: int
    write_amplification: float
    theoretical_max: float

    @property
    def write_percent(self) -> int:
        """Written fraction as the paper labels it (25/50/75/100)."""
        return self.written_cachelines * 25


def run_write_amplification(
    machine: Machine,
    wss: int,
    written_cachelines: int,
    passes: int = 8,
    random_across_xplines: bool = False,
    region: str = "pm",
) -> WriteAmplificationResult:
    """Figure 3 kernel on an existing machine.

    ``random_across_xplines`` shuffles the XPLine visit order; the
    paper observed (and our tests assert) that WA is independent of
    this choice.
    """
    core = machine.new_core()
    base = machine.region_spec(region).base
    rng = DeterministicRng(machine.config.seed).fork(7) if random_across_xplines else None
    snapshot = machine.counters(region).snapshot()
    for _ in range(passes):
        for addr in partial_write_addresses(base, wss, written_cachelines, rng):
            core.nt_store(addr, 64)
    delta = machine.counters(region).delta(snapshot)
    return WriteAmplificationResult(
        wss=wss,
        written_cachelines=written_cachelines,
        write_amplification=delta.write_amplification,
        theoretical_max=4.0 / written_cachelines,
    )


def write_amplification_sweep(
    generation: int,
    wss_points: list[int],
    fractions: tuple[int, ...] = (1, 2, 3, 4),
    passes: int = 8,
) -> list[WriteAmplificationResult]:
    """Full Figure 3 sweep (fresh machine per point, prefetchers off)."""
    results = []
    for written in fractions:
        for wss in wss_points:
            machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
            results.append(run_write_amplification(machine, wss, written, passes))
    return results


@dataclass(frozen=True)
class WriteHitResult:
    """One Figure 4 point."""

    wss: int
    hit_ratio: float
    #: The paper's inferred metric: 1 - media writes / (4 × issued writes),
    #: i.e. the fraction of program writes absorbed relative to the
    #: theoretical WA of this (1-of-4) pattern.
    inferred_hit_ratio: float


def run_write_hit_ratio(
    machine: Machine,
    wss: int,
    writes_per_xpline_avg: int = 10,
    region: str = "pm",
) -> WriteHitResult:
    """Figure 4 kernel: random partial (single-line) writes."""
    core = machine.new_core()
    base = machine.region_spec(region).base
    n_xplines = wss // XPLINE_SIZE
    rng = DeterministicRng(machine.config.seed).fork(11)
    snapshot = machine.counters(region).snapshot()
    for _ in range(n_xplines * writes_per_xpline_avg):
        addr = base + rng.choice_index(n_xplines) * XPLINE_SIZE
        core.nt_store(addr, 64)
    delta = machine.counters(region).delta(snapshot)
    inferred = 1.0 - delta.media_write_bytes / (4.0 * delta.imc_write_bytes)
    return WriteHitResult(
        wss=wss,
        hit_ratio=delta.write_buffer_hit_ratio,
        inferred_hit_ratio=max(0.0, inferred),
    )


def write_hit_sweep(generation: int, wss_points: list[int]) -> list[WriteHitResult]:
    """Full Figure 4 sweep (fresh machine per point, prefetchers off)."""
    results = []
    for wss in wss_points:
        machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
        results.append(run_write_hit_ratio(machine, wss))
    return results
