"""Read-after-persist latency probe (paper Section 3.5, Algorithm 1).

The kernel is a line-for-line transcription of the paper's Algorithm 1:
walk a small (4 KB) region cacheline by cacheline; at each step persist
the current line (store+clwb or nt-store, then a fence) and immediately
load the line ``distance`` cachelines *behind* the persist cursor.  The
average per-iteration latency as a function of distance exposes how
long flushes remain incomplete after the fence returned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE
from repro.common.units import kib
from repro.persist.persistency import FenceKind, FlushKind
from repro.system.machine import Machine
from repro.system.presets import machine_for


@dataclass(frozen=True)
class RapPoint:
    """Average per-iteration cycles at one RAP distance."""

    distance: int
    cycles_per_iteration: float


@dataclass(frozen=True)
class RapCurve:
    """One configuration's latency-vs-distance curve."""

    generation: int
    region: str
    flush: FlushKind
    fence: FenceKind
    points: tuple[RapPoint, ...]

    @property
    def label(self) -> str:
        """Legend label as the paper prints it."""
        memory = "PM" if self.region.startswith("pm") else "DRAM"
        locality = "remote" if self.region.endswith("remote") else "local"
        return f"{locality} {memory} {self.flush.value}+{self.fence.value}"

    def at(self, distance: int) -> float:
        """Cycles/iteration at ``distance`` (KeyError if not measured)."""
        for point in self.points:
            if point.distance == distance:
                return point.cycles_per_iteration
        raise KeyError(distance)


def run_rap_iterations(
    machine: Machine,
    region: str,
    flush: FlushKind,
    fence: FenceKind,
    distance: int,
    wss: int = kib(4),
    passes: int = 40,
) -> float:
    """Algorithm 1 at one distance; returns avg cycles per iteration."""
    core = machine.new_core()
    base = machine.region_spec(region).base
    n_lines = wss // CACHELINE_SIZE
    iterations = 0
    start = core.now
    for _ in range(passes):
        for offset in range(n_lines):
            addr = base + offset * CACHELINE_SIZE
            if flush is FlushKind.NT_STORE:
                core.nt_store(addr, CACHELINE_SIZE)
            else:
                core.store(addr, 8)
                if flush is FlushKind.CLWB:
                    core.clwb(addr)
                else:
                    core.clflushopt(addr)
            core.fence(fence.value)
            read_offset = (offset + n_lines - distance) % n_lines
            core.load(base + read_offset * CACHELINE_SIZE, 8)
            iterations += 1
    return (core.now - start) / iterations


def rap_curve(
    generation: int,
    region: str,
    flush: FlushKind,
    fence: FenceKind,
    distances: tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40),
    wss: int = kib(4),
    passes: int = 40,
) -> RapCurve:
    """Measure one full curve, fresh machine per distance point."""
    points = []
    for distance in distances:
        machine = machine_for(
            generation,
            prefetchers=PrefetcherConfig.none(),
            remote_pm=True,
            remote_dram=True,
        )
        cycles = run_rap_iterations(machine, region, flush, fence, distance, wss, passes)
        points.append(RapPoint(distance, cycles))
    return RapCurve(generation, region, flush, fence, tuple(points))


#: The eight panels of Figure 7: (region, [(flush, fence), ...]).
FIGURE7_PANELS: tuple[tuple[str, tuple[tuple[FlushKind, FenceKind], ...]], ...] = (
    (
        "pm",
        (
            (FlushKind.CLWB, FenceKind.MFENCE),
            (FlushKind.CLWB, FenceKind.SFENCE),
            (FlushKind.NT_STORE, FenceKind.MFENCE),
        ),
    ),
    (
        "dram",
        (
            (FlushKind.CLWB, FenceKind.MFENCE),
            (FlushKind.CLWB, FenceKind.SFENCE),
        ),
    ),
    (
        "pm_remote",
        (
            (FlushKind.CLWB, FenceKind.MFENCE),
            (FlushKind.CLWB, FenceKind.SFENCE),
            (FlushKind.NT_STORE, FenceKind.MFENCE),
        ),
    ),
    (
        "dram_remote",
        (
            (FlushKind.CLWB, FenceKind.MFENCE),
            (FlushKind.CLWB, FenceKind.SFENCE),
        ),
    ),
)


def figure7_curves(
    generation: int,
    distances: tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40),
    passes: int = 30,
) -> list[RapCurve]:
    """All curves of one Figure 7 row (one generation)."""
    curves = []
    for region, combos in FIGURE7_PANELS:
        for flush, fence in combos:
            curves.append(rap_curve(generation, region, flush, fence, distances, passes=passes))
    return curves
