"""The paper's Section 3 microbenchmark kernels."""

from repro.core.microbench.interleave import (
    SeparationResult,
    TransitionResult,
    run_separation_probe,
    run_transition_probe,
)
from repro.core.microbench.pointer_chase import ChaseResult, PointerChaseBench
from repro.core.microbench.prefetch_probe import PrefetchProbeResult, run_prefetch_probe
from repro.core.microbench.rap import (
    FIGURE7_PANELS,
    RapCurve,
    RapPoint,
    figure7_curves,
    rap_curve,
    run_rap_iterations,
)
from repro.core.microbench.strided_read import (
    StridedReadResult,
    default_wss_points,
    run_strided_read,
    strided_read_sweep,
)
from repro.core.microbench.write_amp import (
    WriteAmplificationResult,
    WriteHitResult,
    run_write_amplification,
    run_write_hit_ratio,
    write_amplification_sweep,
    write_hit_sweep,
)

__all__ = [
    "SeparationResult",
    "TransitionResult",
    "run_separation_probe",
    "run_transition_probe",
    "ChaseResult",
    "PointerChaseBench",
    "PrefetchProbeResult",
    "run_prefetch_probe",
    "FIGURE7_PANELS",
    "RapCurve",
    "RapPoint",
    "figure7_curves",
    "rap_curve",
    "run_rap_iterations",
    "StridedReadResult",
    "default_wss_points",
    "run_strided_read",
    "strided_read_sweep",
    "WriteAmplificationResult",
    "WriteHitResult",
    "run_write_amplification",
    "run_write_hit_ratio",
    "write_amplification_sweep",
    "write_hit_sweep",
]
