"""XPLine access redirection (paper Section 4.3, Algorithm 2).

For XPLine-aligned workloads without cross-block sequentiality, CPU
prefetchers mispredict at every block boundary, and each mispredicted
cacheline costs the DIMM an entire XPLine — up to half the PM
bandwidth.  The optimization copies each 256-byte block into a
cacheline-sized DRAM staging buffer using SIMD streaming loads (which
do not train the prefetchers and bypass the caches) and serves all
further accesses from the DRAM copy.

The tradeoff the paper measures (Figure 14): the extra copy costs
latency at low thread counts, but reclaiming the wasted media reads
wins once enough threads contend for PM bandwidth (crossover around
12 threads on their testbeds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE, CACHELINES_PER_XPLINE, XPLINE_SIZE
from repro.common.errors import ConfigError
from repro.system.machine import Core


@dataclass(frozen=True)
class RedirectionBuffer:
    """A per-thread DRAM staging area of one XPLine."""

    dram_addr: int

    def line_addr(self, slot: int) -> int:
        """Address of staging cacheline ``slot`` (0..3)."""
        return self.dram_addr + slot * CACHELINE_SIZE


def redirect_block(core: Core, block_addr: int, staging: RedirectionBuffer) -> None:
    """Algorithm 2: stream-copy one XPLine from PM into DRAM.

    After this call the caller reads/writes ``staging`` instead of the
    PM block; no prefetcher has been trained on the PM addresses.
    """
    if block_addr % XPLINE_SIZE:
        raise ConfigError(f"block address {block_addr:#x} is not XPLine-aligned")
    for slot in range(CACHELINES_PER_XPLINE):
        core.stream_load(block_addr + slot * CACHELINE_SIZE, CACHELINE_SIZE)
        core.store(staging.line_addr(slot), CACHELINE_SIZE)


def writeback_block(core: Core, block_addr: int, staging: RedirectionBuffer, fence: str = "sfence") -> None:
    """Persist a modified staging buffer back to its PM block.

    The paper notes Algorithm 2 "can be extended to enforce
    crash-consistency using undo or redo logging"; this is the direct
    write-back variant using nt-stores (no logging) for read-mostly
    workloads that occasionally update a block.
    """
    for slot in range(CACHELINES_PER_XPLINE):
        core.load(staging.line_addr(slot), 8)
        core.nt_store(block_addr + slot * CACHELINE_SIZE, CACHELINE_SIZE)
    core.fence(fence)
