"""Automatic helper-thread construction (the paper's §4.1 future work).

The paper builds its CCEH helper thread *manually*, "retaining data
loads and instructions necessary for indexing", and leaves automatic
construction "using compiler techniques" as future work.  This module
implements the dynamic-analysis equivalent: record the loads a worker
operation performs on a shadow (zero-cost) run, then replay exactly
those loads as the helper's trace.

The extraction is sound by construction — the helper touches precisely
the addresses the worker will touch (100% accuracy, like the paper's
hand-built helper) — as long as the operation's address stream is
deterministic in its input, which holds for index lookups/inserts.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.datastores.base import NullCore
from repro.system.machine import Core

WorkItem = TypeVar("WorkItem")


class RecordingCore(NullCore):
    """A zero-cost core that records the addresses of loads.

    Stores, flushes and fences are swallowed (they must not run ahead
    of the worker), matching the paper's rule for building the helper.
    """

    def __init__(self) -> None:
        super().__init__()
        self.load_trace: list[tuple[int, int]] = []

    def load(self, addr: int, size: int = 8) -> float:
        self.load_trace.append((addr, size))
        return 0.0

    def stream_load(self, addr: int, size: int = 64) -> float:
        self.load_trace.append((addr, size))
        return 0.0


class ExtractedTrace(Generic[WorkItem]):
    """A load-only trace function extracted from a worker operation.

    Wraps ``operation(core, item)``: on each call it shadow-runs the
    operation with a :class:`RecordingCore` (mutation-free operations
    only — use :func:`extract_lookup_trace` for a safe wrapper) and
    replays the recorded loads on the helper core.

    For operations that *mutate* state (inserts), shadow-running would
    perturb the structure; :class:`ExtractedTrace` therefore accepts a
    ``probe`` — a read-only stand-in with the same indexing loads
    (e.g. a lookup for the key about to be inserted), which is exactly
    what the paper's helper does: it "speculatively visits the
    directory entries, segments, and buckets for key-value pairs that
    have not yet been inserted".
    """

    def __init__(self, probe: Callable[[RecordingCore, WorkItem], None], prefix_loads: int | None = None) -> None:
        self._probe = probe
        self._prefix_loads = prefix_loads
        self.extracted_items = 0
        self.replayed_loads = 0

    def __call__(self, helper_core: Core, item: WorkItem) -> None:
        recorder = RecordingCore()
        try:
            self._probe(recorder, item)
        except Exception:
            # A probe miss (e.g. key not present) still recorded the
            # indexing loads up to the failure point — replay those.
            pass
        self.extracted_items += 1
        trace = recorder.load_trace
        if self._prefix_loads is not None:
            trace = trace[: self._prefix_loads]
        for addr, size in trace:
            helper_core.load(addr, size)
            self.replayed_loads += 1


def extract_lookup_trace(store, prefix_loads: int | None = None) -> ExtractedTrace:
    """Build an ExtractedTrace from a data store's ``get``-style probe.

    Works for any store exposing ``get(key, core)`` or
    ``contains(key, core)``; lookup shares the indexing loads with
    insertion, which is all the helper needs.
    """
    if hasattr(store, "contains"):

        def probe(core: RecordingCore, key) -> None:
            store.contains(key, core)

    elif hasattr(store, "get"):

        def probe(core: RecordingCore, key) -> None:
            store.get(key, core)

    else:
        raise TypeError(f"{type(store).__name__} has neither contains() nor get()")
    return ExtractedTrace(probe, prefix_loads=prefix_loads)
