"""Speculative helper-thread prefetching (paper Section 4.1).

The optimization: a helper thread, bound to the sibling hyperthread of
the worker's core, executes *only the loads* needed to index a data
structure for keys the worker has not processed yet.  Because it skips
all stores, computation and persistence barriers, it runs ahead of the
worker and pulls the needed XPLines into the AIT buffer, the on-DIMM
read buffer and the CPU caches — a 100%-accurate prefetcher.

Model notes (documented deviations in DESIGN.md):

* The helper is a second :class:`Core` on the same machine, so it
  shares the cache hierarchy (its fills are visible to the worker) and
  competes for the same media read ports (real bandwidth contention).
* Running too far ahead overflows the small on-DIMM buffers, so the
  run-ahead ``depth`` is bounded; the paper empirically chose 8.
* Hyperthread resource sharing is modeled as a fixed cycle tax charged
  to the worker per helper operation (``smt_overhead``): the two
  hardware threads share issue slots, so helper work is only free
  while the worker is stalled.  On Optane the worker is stalled most
  of the time (long media reads, fence waits) and the tax is far below
  the saved media latency; on DRAM, loads are short and the tax
  exceeds the savings — reproducing the paper's finding that the
  helper *hurts* on DRAM (Figure 10 c/d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.system.machine import Core, Machine

WorkItem = TypeVar("WorkItem")

#: Executes the load-only slice of processing one item.
TraceFunction = Callable[[Core, WorkItem], None]


@dataclass(frozen=True)
class HelperConfig:
    """Tuning of the helper thread."""

    #: How many items the helper runs ahead of the worker.
    depth: int = 8
    #: Cycles of shared-pipeline capacity each helper op costs the worker.
    smt_overhead: float = 230.0
    enabled: bool = True


class HelperThread:
    """Depth-bounded run-ahead prefetcher over a known work stream."""

    def __init__(
        self,
        machine: Machine,
        trace: TraceFunction,
        config: HelperConfig | None = None,
        name: str = "helper",
    ) -> None:
        self.machine = machine
        self.trace = trace
        self.config = config or HelperConfig()
        self.core = machine.new_core(name)
        self._next_index = 0
        self.items_prefetched = 0
        self.helper_ops = 0

    def sync_before(self, worker: Core, items: Sequence[WorkItem], worker_index: int) -> None:
        """Bring the helper ``depth`` items ahead of ``worker_index``.

        Called by the harness right before the worker processes item
        ``worker_index``.  The helper's clock never lags the worker's
        (it has nothing else to do), and each helper item charges the
        SMT tax to the worker.
        """
        if not self.config.enabled:
            return
        target = min(worker_index + self.config.depth, len(items))
        while self._next_index < target:
            # The helper cannot act before the worker reaches "now".
            if self.core.now < worker.now:
                self.core.now = worker.now
            ops_before = self.core.loads
            self.trace(self.core, items[self._next_index])
            ops_done = self.core.loads - ops_before
            self.helper_ops += ops_done
            self.items_prefetched += 1
            worker.now += self.config.smt_overhead
            self._next_index += 1

    def reset(self) -> None:
        """Restart the run-ahead cursor (e.g. for a new key stream)."""
        self._next_index = 0
        self.items_prefetched = 0
        self.helper_ops = 0
