"""The paper's primary contribution: microbenchmarks that infer the
on-DIMM buffering design, the read/write decoupling analysis, and the
three optimization techniques (helper-thread prefetch, out-of-place
redo logging, XPLine access redirection)."""

from repro.core.analysis import InstrumentedCore, read_write_summary
from repro.core.helper import HelperConfig, HelperThread
from repro.core.inference import (
    DeviceProfile,
    RapProfile,
    characterize,
    infer_periodic_writeback,
    infer_read_buffer_capacity,
    infer_write_buffer_capacity,
    infer_write_buffer_eviction,
    profile_rap,
    quiet_factory,
)
from repro.core.redirection import RedirectionBuffer, redirect_block, writeback_block
from repro.core.trace_helper import ExtractedTrace, RecordingCore, extract_lookup_trace

__all__ = [
    "InstrumentedCore",
    "read_write_summary",
    "HelperConfig",
    "HelperThread",
    "RedirectionBuffer",
    "redirect_block",
    "writeback_block",
    "ExtractedTrace",
    "RecordingCore",
    "extract_lookup_trace",
    "DeviceProfile",
    "RapProfile",
    "characterize",
    "infer_periodic_writeback",
    "infer_read_buffer_capacity",
    "infer_write_buffer_capacity",
    "infer_write_buffer_eviction",
    "profile_rap",
    "quiet_factory",
]
