"""A YCSB-equivalent workload generator (paper Section 4 case studies).

The paper drives CCEH and the B+-tree with YCSB, inserting 16 million
16-byte key-value pairs.  This module reproduces YCSB's core: a load
phase followed by a run phase whose operation mix and request
distribution define the standard workloads A–F.

Substitution note (DESIGN.md): the original YCSB is a Java framework;
we reimplement the generator because only the key sequence and
operation mix matter to the experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)


class OpType(enum.Enum):
    """YCSB operation kinds."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class Operation:
    """One generated operation."""

    op: OpType
    key: int
    #: Scan length (only meaningful for SCAN).
    scan_length: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix and request distribution of a workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    max_scan_length: int = 100

    def validate(self) -> None:
        """Raise ConfigError unless the mix sums to 1 and fields are sane."""
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"workload {self.name}: mix sums to {total}, not 1")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ConfigError(f"workload {self.name}: unknown distribution")


#: The standard YCSB core workloads.
WORKLOAD_A = WorkloadSpec("A", read=0.5, update=0.5)
WORKLOAD_B = WorkloadSpec("B", read=0.95, update=0.05)
WORKLOAD_C = WorkloadSpec("C", read=1.0)
WORKLOAD_D = WorkloadSpec("D", read=0.95, insert=0.05, distribution="latest")
WORKLOAD_E = WorkloadSpec("E", scan=0.95, insert=0.05)
WORKLOAD_F = WorkloadSpec("F", read=0.5, rmw=0.5)

STANDARD_WORKLOADS = {
    spec.name: spec
    for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E, WORKLOAD_F)
}


@dataclass
class YcsbConfig:
    """Sizing of a YCSB run."""

    record_count: int = 100_000
    operation_count: int = 100_000
    key_size: int = 16
    value_size: int = 16
    seed: int = 42
    spec: WorkloadSpec = field(default_factory=lambda: WORKLOAD_A)

    def validate(self) -> None:
        """Raise ConfigError on nonsensical sizing."""
        if self.record_count <= 0 or self.operation_count < 0:
            raise ConfigError("record/operation counts must be positive")
        self.spec.validate()


class YcsbWorkload:
    """Generates the load and run phases of one YCSB workload."""

    def __init__(self, config: YcsbConfig) -> None:
        config.validate()
        self.config = config
        self._rng = DeterministicRng(config.seed)
        self._inserted = config.record_count
        self._chooser = self._build_chooser()

    def _build_chooser(self):
        rng = self._rng.fork(1)
        dist = self.config.spec.distribution
        if dist == "uniform":
            return UniformGenerator(self.config.record_count, rng)
        if dist == "latest":
            return LatestGenerator(self.config.record_count, rng)
        return ScrambledZipfianGenerator(self.config.record_count, rng)

    def load_phase(self) -> Iterator[Operation]:
        """Insert every record once, in key order (YCSB's -load)."""
        for key in range(self.config.record_count):
            yield Operation(OpType.INSERT, key)

    def _choose_key(self) -> int:
        key = self._chooser.next()
        return min(key, self._inserted - 1)

    def run_phase(self) -> Iterator[Operation]:
        """The measured operation stream (YCSB's -t)."""
        spec = self.config.spec
        thresholds = []
        cumulative = 0.0
        for op, weight in (
            (OpType.READ, spec.read),
            (OpType.UPDATE, spec.update),
            (OpType.INSERT, spec.insert),
            (OpType.SCAN, spec.scan),
            (OpType.READ_MODIFY_WRITE, spec.rmw),
        ):
            cumulative += weight
            thresholds.append((cumulative, op))
        for _ in range(self.config.operation_count):
            draw = self._rng.random()
            op = next(op for threshold, op in thresholds if draw <= threshold + 1e-12)
            if op is OpType.INSERT:
                key = self._inserted
                self._inserted += 1
                if isinstance(self._chooser, LatestGenerator):
                    self._chooser.note_insert()
                yield Operation(op, key)
            elif op is OpType.SCAN:
                yield Operation(
                    op,
                    self._choose_key(),
                    scan_length=1 + self._rng.choice_index(spec.max_scan_length),
                )
            else:
                yield Operation(op, self._choose_key())


def insert_only_stream(count: int, seed: int = 42, shuffled: bool = True) -> list[int]:
    """The paper's case-study workload: insert ``count`` distinct keys.

    The paper "used YCSB to insert 16 million 16B key-value pairs";
    the insertion order is shuffled so the hash-table/tree access
    pattern is random, as a hashed keyspace would be.
    """
    keys = list(range(count))
    if shuffled:
        DeterministicRng(seed).shuffle(keys)
    return keys
