"""Address-pattern generators used by the microbenchmarks.

Every Section-3 experiment is defined by a controlled access pattern:
strided reads aligned to XPLines (Figure 2), sequential-within /
sequential-or-random-across XPLine writes (Figure 3), random XPLine
blocks (Figures 6/13), circular pointer chains (Figure 8).  The
generators here produce those address sequences deterministically.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng


def strided_read_addresses(base: int, wss: int, cachelines_per_xpline: int) -> Iterator[int]:
    """The Figure 2 pattern: pass p reads cacheline p of every XPLine.

    Yields addresses for one complete cycle of ``cachelines_per_xpline``
    passes over the region.
    """
    if not 1 <= cachelines_per_xpline <= 4:
        raise ConfigError("CpX must be between 1 and 4")
    n_xplines = wss // XPLINE_SIZE
    if n_xplines == 0:
        raise ConfigError(f"working set {wss} smaller than one XPLine")
    for pass_index in range(cachelines_per_xpline):
        for xpline in range(n_xplines):
            yield base + xpline * XPLINE_SIZE + pass_index * CACHELINE_SIZE


def partial_write_addresses(
    base: int,
    wss: int,
    written_cachelines: int,
    rng: DeterministicRng | None = None,
) -> Iterator[int]:
    """The Figure 3 pattern: write the first ``written_cachelines`` lines
    of each XPLine, sequentially within the XPLine.

    XPLine visit order is sequential when ``rng`` is None, random
    otherwise (the paper found the results identical — a property our
    tests verify).
    """
    if not 1 <= written_cachelines <= 4:
        raise ConfigError("written_cachelines must be between 1 and 4")
    n_xplines = wss // XPLINE_SIZE
    if n_xplines == 0:
        raise ConfigError(f"working set {wss} smaller than one XPLine")
    order = list(range(n_xplines))
    if rng is not None:
        rng.shuffle(order)
    for xpline in order:
        for slot in range(written_cachelines):
            yield base + xpline * XPLINE_SIZE + slot * CACHELINE_SIZE


def random_block_sequence(
    base: int, wss: int, visits: int, rng: DeterministicRng
) -> Iterator[int]:
    """The Figure 6/13 pattern: uniformly random 256 B block base addresses."""
    n_blocks = wss // XPLINE_SIZE
    if n_blocks == 0:
        raise ConfigError(f"working set {wss} smaller than one block")
    for _ in range(visits):
        yield base + rng.choice_index(n_blocks) * XPLINE_SIZE


def circular_chain(count: int, sequential: bool, rng: DeterministicRng | None = None) -> list[int]:
    """Successor table of a circular chain over ``count`` elements.

    ``result[i]`` is the index of the element visited after element
    ``i``.  Sequential chains follow index order; random chains follow
    a uniformly random Hamiltonian cycle (the Figure 8 linked list).
    """
    if count <= 0:
        raise ConfigError("chain needs at least one element")
    order = list(range(count))
    if not sequential:
        if rng is None:
            raise ConfigError("random chains need an rng")
        rng.shuffle(order)
    successor = [0] * count
    for position, element in enumerate(order):
        successor[element] = order[(position + 1) % count]
    return successor
