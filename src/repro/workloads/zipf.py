"""Zipfian key generators, YCSB-style.

The CCEH and B+-tree case studies drive the stores with YCSB [4].
YCSB's request distributions are uniform, zipfian and latest; its
zipfian sampler is the constant-time Gray et al. generator, which we
port here (no O(N) CDF table, so 16-million-key keyspaces cost
nothing).  ``ScrambledZipfian`` spreads the popular items across the
keyspace via FNV hashing, exactly like YCSB does.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

#: YCSB's default zipfian skew.
ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer (YCSB's scrambling function)."""
    data = value & 0xFFFFFFFFFFFFFFFF
    result = _FNV_OFFSET
    for _ in range(8):
        octet = data & 0xFF
        data >>= 8
        result ^= octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class ZipfianGenerator:
    """Constant-time zipfian sampler over [0, items) (Gray et al. 1994)."""

    def __init__(self, items: int, rng: DeterministicRng, theta: float = ZIPFIAN_CONSTANT) -> None:
        if items <= 0:
            raise ConfigError("zipfian needs a positive item count")
        if not 0 < theta < 1:
            raise ConfigError("zipfian theta must be in (0, 1)")
        self.items = items
        self.theta = theta
        self._rng = rng
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = (1 - (2.0 / items) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler–Maclaurin approximation for large n
        # keeps construction O(1)-ish without visible skew error.
        if n <= 10_000:
            return sum(1.0 / (i**theta) for i in range(1, n + 1))
        head = sum(1.0 / (i**theta) for i in range(1, 10_001))
        # integral of x^-theta from 10000 to n
        tail = ((n ** (1 - theta)) - (10_000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def next(self) -> int:
        """Draw one zipf-distributed rank in [0, items)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.items * (self._eta * u - self._eta + 1) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the keyspace by FNV hashing."""

    def __init__(self, items: int, rng: DeterministicRng, theta: float = ZIPFIAN_CONSTANT) -> None:
        self.items = items
        self._zipf = ZipfianGenerator(items, rng, theta)

    def next(self) -> int:
        """Draw one scrambled zipf-distributed key in [0, items)."""
        return fnv1a_64(self._zipf.next()) % self.items


class UniformGenerator:
    """Uniform key draws over [0, items)."""

    def __init__(self, items: int, rng: DeterministicRng) -> None:
        if items <= 0:
            raise ConfigError("uniform generator needs a positive item count")
        self.items = items
        self._rng = rng

    def next(self) -> int:
        """Draw one uniform key in [0, items)."""
        return self._rng.choice_index(self.items)


class LatestGenerator:
    """YCSB's "latest" distribution: zipfian skew toward recent inserts."""

    def __init__(self, initial_items: int, rng: DeterministicRng) -> None:
        self.items = max(initial_items, 1)
        self._zipf = ZipfianGenerator(self.items, rng)

    def note_insert(self) -> None:
        """Grow the keyspace after each insert (recency tracking)."""
        self.items += 1

    def next(self) -> int:
        """Draw one recency-skewed key in [0, items)."""
        rank = self._zipf.next() % self.items
        return self.items - 1 - rank


def perfect_skew_check(samples: list[int], items: int) -> float:
    """Fraction of draws landing in the top 1% of ranks — a quick skew
    diagnostic used by tests (zipfian ≈ large, uniform ≈ 0.01)."""
    if not samples:
        return 0.0
    cutoff = max(1, items // 100)
    hot = sum(1 for sample in samples if sample < cutoff)
    return hot / len(samples)
