"""Workload generation: access patterns, zipfian keys, YCSB."""

from repro.workloads.patterns import (
    circular_chain,
    partial_write_addresses,
    random_block_sequence,
    strided_read_addresses,
)
from repro.workloads.ycsb import (
    STANDARD_WORKLOADS,
    Operation,
    OpType,
    WorkloadSpec,
    YcsbConfig,
    YcsbWorkload,
    insert_only_stream,
)
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)

__all__ = [
    "circular_chain",
    "partial_write_addresses",
    "random_block_sequence",
    "strided_read_addresses",
    "STANDARD_WORKLOADS",
    "Operation",
    "OpType",
    "WorkloadSpec",
    "YcsbConfig",
    "YcsbWorkload",
    "insert_only_stream",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "fnv1a_64",
]
