"""repro — a simulation-based reproduction of
"Characterizing the Performance of Intel Optane Persistent Memory:
A Close Look at its On-DIMM Buffering" (EuroSys '22).

The package builds a cycle-approximate discrete-event model of the
whole memory hierarchy the paper measures — CPU caches + prefetchers,
the iMC's pending queues and ADR domain, the DDR-T protocol's
asynchronous writes, the on-DIMM read and write-combining buffers, the
AIT cache and the 3D-XPoint media — and reruns every experiment of the
paper against it.

Quickstart::

    from repro.system import g1_machine
    from repro.persist import PmHeap

    machine = g1_machine()
    core = machine.new_core()
    heap = PmHeap(machine)
    addr = heap.pm.alloc_xpline()
    core.store(addr, size=8)
    core.persist(addr)           # clwb + sfence
    print(machine.pm_counters().imc_write_bytes)
"""

__version__ = "1.0.0"
