"""Command-line runner: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig2 --generation 1
    python -m repro run fig7 fig8 --profile full
    python -m repro run all

Mirrors the original artifact's ``run.py``: one command reruns an
experiment and prints the series/rows the corresponding paper figure
plots.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import ablations, bandwidth, fig02, fig03, fig04, fig06, fig07, fig08
from repro.experiments import fig10, fig12, fig13, fig14, interleaving, lock_handover, sec33, table1
from repro.experiments.common import ExperimentReport


def _as_reports(result) -> list[ExperimentReport]:
    if isinstance(result, ExperimentReport):
        return [result]
    return list(result)


def _run_fig02(generation: int, profile: str):
    return [fig02.run(generation, profile)]


def _run_fig03(generation: int, profile: str):
    return [fig03.run(generation, profile)]


def _run_fig04(generation: int, profile: str):
    return [fig04.run(profile)]


def _run_sec33(generation: int, profile: str):
    return [sec33.as_report(sec33.run(generation, profile))]


def _run_fig06(generation: int, profile: str):
    return fig06.run(generation, profile)


def _run_fig07(generation: int, profile: str):
    return fig07.run(generation, profile)


def _run_fig08(generation: int, profile: str):
    return fig08.run(generation, profile)


def _run_table1(generation: int, profile: str):
    return [table1.as_report(table1.run(generation, profile), generation)]


def _run_fig10(generation: int, profile: str):
    return fig10.run(generation, profile)


def _run_fig12(generation: int, profile: str):
    return [fig12.run(generation, profile)]


def _run_fig13(generation: int, profile: str):
    return [fig13.run(generation, profile)]


def _run_fig14(generation: int, profile: str):
    return [fig14.run(generation, profile)]


def _run_ablations(generation: int, profile: str):
    return ablations.run_all()


def _run_bandwidth(generation: int, profile: str):
    return [bandwidth.run(generation, profile)]


def _run_lock(generation: int, profile: str):
    return [lock_handover.run(profile)]


def _run_interleaving(generation: int, profile: str):
    return [interleaving.run(generation, profile)]


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("Figure 2 — read amplification (read buffer)", _run_fig02),
    "fig3": ("Figure 3 — write amplification (write buffer)", _run_fig03),
    "fig4": ("Figure 4 — write buffer hit ratio", _run_fig04),
    "sec33": ("Section 3.3 — buffer separation & transition", _run_sec33),
    "fig6": ("Figure 6 — prefetching into on-DIMM buffers", _run_fig06),
    "fig7": ("Figure 7 — read-after-persist latency", _run_fig07),
    "fig8": ("Figure 8 — latency across working-set sizes", _run_fig08),
    "table1": ("Table 1 — CCEH insertion time breakdown", _run_table1),
    "fig10": ("Figure 10 — CCEH helper-thread prefetching", _run_fig10),
    "fig12": ("Figure 12 — B+-tree in-place vs redo logging", _run_fig12),
    "fig13": ("Figure 13 — access redirection read ratios", _run_fig13),
    "fig14": ("Figure 14 — redirection thread-scaling tradeoff", _run_fig14),
    "ablations": ("Ablations of inferred design choices", _run_ablations),
    "bandwidth": ("§2.2 — device bandwidth characterization", _run_bandwidth),
    "lock": ("§3.5 — persistent lock handover latency", _run_lock),
    "interleave": ("§2.4 — 1 vs 6 interleaved DIMMs", _run_interleaving),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (list / run subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rerun the EuroSys'22 Optane buffering experiments in simulation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    run.add_argument("--generation", "-g", type=int, default=1, choices=(1, 2))
    run.add_argument("--profile", "-p", default="fast", choices=("fast", "full"))
    run.add_argument(
        "--chart", action="store_true", help="render ASCII charts alongside the tables"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"### {description} (G{args.generation}, {args.profile} profile)")
        started = time.time()
        for report in _as_reports(runner(args.generation, args.profile)):
            print(report.render())
            if getattr(args, "chart", False):
                from repro.experiments.plotting import chart

                print()
                print(chart(report))
            print()
        print(f"[{name} done in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
