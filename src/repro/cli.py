"""Command-line runner: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig2 --generation 1
    python -m repro run fig7 fig8 --profile full
    python -m repro run all --jobs 8          # parallel sweep
    python -m repro run all                   # second time: served from cache
    python -m repro run fig3 --force          # recompute + refresh cache
    python -m repro run fig3 --no-cache       # bypass the cache entirely
    python -m repro crashtest                 # crash campaigns, all datastores
    python -m repro crashtest btree --points exhaustive
    python -m repro crashtest linkedlist --fault-mode torn-xpline
    python -m repro trace fig7 --interval 1000 --out trace.json \
        --timeline occupancy.csv              # Perfetto-loadable trace
    python -m repro validate                  # check every paper claim
    python -m repro validate --profile fast --json fidelity.json
    python -m repro validate --expect-fail read_buffer=off   # oracle smoke
    python -m repro validate --determinism    # differential checks too

Mirrors the original artifact's ``run.py`` — one command reruns an
experiment and prints the series/rows the corresponding paper figure
plots — but schedules everything through :mod:`repro.runner`: runs
fan out across a process pool (``--jobs``) and results are served
from the content-addressed on-disk cache when the same
``(experiment, generation, profile, code version)`` configuration has
already been computed.  The sweep summary line reports wall time,
worker utilization and cache hit/miss counters.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ConfigError
from repro.faults.campaign import FAULT_MODES, STATUS_CODES
from repro.faults.schedule import InjectionSchedule
from repro.faults.workloads import DATASTORES
from repro.runner import REGISTRY, ResultCache, RunRequest, run_sweep
from repro.runner.registry import resolve_names

#: Backwards-compatible view of the registry:
#: name -> (description, runner callable).  Prefer repro.runner.REGISTRY.
EXPERIMENTS = {name: (spec.title, spec.run) for name, spec in REGISTRY.items()}


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (list / run subcommands).

    ``run`` exposes the runner's scheduling knobs: ``--jobs`` (process
    fan-out; 1 = serial, no pool), ``--cache/--no-cache`` (consult and
    populate the on-disk result cache — the default — or bypass it),
    ``--force`` (invalidate then recompute the selected entries) and
    ``--cache-dir`` (cache root; also settable via ``REPRO_CACHE_DIR``).
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rerun the EuroSys'22 Optane buffering experiments in simulation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    _add_common_run_arguments(run)
    run.add_argument(
        "--chart", action="store_true", help="render ASCII charts alongside the tables"
    )
    trace = sub.add_parser(
        "trace",
        help="run one experiment under the telemetry tracer and export "
             "a Chrome trace (Perfetto-loadable) plus a time-series CSV",
    )
    trace.add_argument("experiment", help="experiment id to trace")
    trace.add_argument("--generation", "-g", type=int, default=1, choices=(1, 2))
    trace.add_argument("--profile", "-p", default="fast", choices=("fast", "full"))
    trace.add_argument(
        "--interval", type=float, default=1000.0, metavar="CYCLES",
        help="telemetry sampling interval in simulated cycles (default 1000); "
             "0 disables sampling and records events only",
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="Chrome trace_event JSON output path (default trace.json)",
    )
    trace.add_argument(
        "--timeline", default=None, metavar="FILE",
        help="also dump the sampled time-series (.csv or .json by extension)",
    )
    trace.add_argument(
        "--categories", default=None, metavar="CAT[,CAT...]",
        help="record only these event categories (default: all)",
    )
    trace.add_argument(
        "--cycles-per-us", type=float, default=1000.0, metavar="N",
        help="simulated cycles per exported microsecond (default 1000)",
    )
    crashtest = sub.add_parser(
        "crashtest",
        help="crash-point fault-injection campaigns with recovery validation",
    )
    crashtest.add_argument(
        "datastores", nargs="*", default=["all"], metavar="DATASTORE",
        help=f"datastores to campaign over: {', '.join(DATASTORES)} (default: all)",
    )
    crashtest.add_argument(
        "--points", default="sample:50", metavar="SCHEDULE",
        help="crash-point schedule: 'exhaustive' or 'sample:N' (default sample:50)",
    )
    crashtest.add_argument(
        "--seed", type=int, default=7,
        help="seed for sampling and fault placement (default 7)",
    )
    crashtest.add_argument(
        "--fault-mode", default="power-loss", choices=FAULT_MODES,
        help="fault injected at each crash point (default power-loss)",
    )
    _add_common_run_arguments(crashtest)
    validate = sub.add_parser(
        "validate",
        help="check the paper's claims (EXPERIMENTS.md) against experiment "
             "reports and print/export a fidelity report",
    )
    validate.add_argument(
        "--experiments", "-e", nargs="+", default=None, metavar="EXP",
        help="restrict to these experiments (default: every one with claims)",
    )
    validate.add_argument(
        "--generation", "-g", type=int, default=None, choices=(1, 2),
        help="restrict to one generation (default: both; mutation mode "
             "defaults to G1 only)",
    )
    validate.add_argument("--profile", "-p", default="fast", choices=("fast", "full"))
    validate.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the underlying sweep (default 1)",
    )
    validate.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the fidelity report as JSON (the CI artifact)",
    )
    validate.add_argument(
        "--expect-fail", default=None, metavar="KNOB=VALUE",
        help="mutation-smoke mode: flip one design knob and require exactly "
             "the declared claims to fail (e.g. read_buffer=off); runs "
             "serially and uncached",
    )
    validate.add_argument(
        "--determinism", action="store_true",
        help="also run the differential determinism suite (serial vs "
             "parallel, cached vs fresh, seed shift, grid refinement)",
    )
    validate.add_argument(
        "--list", action="store_true", dest="list_claims",
        help="list the registered claims and exit",
    )
    cache_group = validate.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="serve/populate the on-disk result cache (default)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="bypass the result cache entirely",
    )
    validate.add_argument(
        "--force", action="store_true",
        help="invalidate cached entries for the selected runs and recompute",
    )
    validate.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def _add_common_run_arguments(command: argparse.ArgumentParser) -> None:
    """Attach the scheduling/cache flags shared by run and crashtest."""
    command.add_argument("--generation", "-g", type=int, default=1, choices=(1, 2))
    command.add_argument("--profile", "-p", default="fast", choices=("fast", "full"))
    command.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial)",
    )
    command.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="presume a pooled worker hung after this long and retry elsewhere",
    )
    command.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions granted to a failing work unit before quarantine (default 2)",
    )
    cache_group = command.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="serve/populate the on-disk result cache (default)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="bypass the result cache entirely",
    )
    command.add_argument(
        "--force", action="store_true",
        help="invalidate cached entries for the selected runs and recompute",
    )
    command.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``run`` builds one :class:`~repro.runner.RunRequest` per selected
    experiment and hands the whole batch to
    :func:`~repro.runner.run_sweep`, so ``--jobs N`` parallelism spans
    experiments (and, for sharded experiments like fig2/fig3,
    individual curves).  Reports print in request order as they
    resolve; cached results are marked and cost no simulation time.
    """
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in REGISTRY)
        for name, spec in REGISTRY.items():
            print(f"{name.ljust(width)}  {spec.title}")
        return 0

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "validate":
        return _validate_command(args)

    if args.command == "crashtest":
        try:
            InjectionSchedule.parse(args.points, seed=args.seed)
        except ConfigError as error:
            print(f"bad --points value: {error}", file=sys.stderr)
            return 2
        datastores = list(DATASTORES) if "all" in args.datastores else list(args.datastores)
        unknown = [name for name in datastores if name not in DATASTORES]
        if unknown:
            print(f"unknown datastore(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(DATASTORES)}", file=sys.stderr)
            return 2
        requests = [
            RunRequest.make(
                f"crash-{datastore}",
                generation=args.generation,
                profile=args.profile,
                overrides={
                    "points": args.points,
                    "seed": args.seed,
                    "fault_mode": args.fault_mode,
                },
            )
            for datastore in datastores
        ]
    else:
        try:
            names = resolve_names(args.experiments)
        except KeyError as error:
            print(f"unknown experiment(s): {error.args[0]}", file=sys.stderr)
            print(f"available: {', '.join(REGISTRY)}", file=sys.stderr)
            return 2
        requests = [
            RunRequest.make(name, generation=args.generation, profile=args.profile)
            for name in names
        ]

    cache = ResultCache(args.cache_dir) if args.cache else None

    def show(result) -> None:
        spec = REGISTRY[result.request.experiment]
        print(f"### {spec.title} (G{args.generation}, {args.profile} profile)")
        if result.error is not None:
            print(f"[{result.request.experiment} FAILED: {result.error}]\n")
            return
        for report in result.reports:
            print(report.render())
            if getattr(args, "chart", False):
                from repro.experiments.plotting import chart

                print()
                print(chart(report))
            print()
        if result.cached:
            print(f"[{result.request.experiment} served from cache]\n")
        else:
            print(f"[{result.request.experiment} done in {result.wall_time:.1f}s]\n")

    results, metrics = run_sweep(
        requests,
        jobs=args.jobs,
        cache=cache,
        force=args.force,
        progress=show,
        shard_timeout=args.shard_timeout,
        max_retries=args.retries,
    )
    print(f"[sweep: {len(requests)} experiment{'s' if len(requests) != 1 else ''}, "
          f"{metrics.summary()}]")
    if cache is not None and cache.write_errors:
        print(f"warning: {cache.write_errors} result(s) could not be written to "
              f"the cache at {cache.root} (ran uncached)", file=sys.stderr)
    failed = [result for result in results if result.error is not None]
    if failed:
        print(f"warning: {len(failed)} experiment(s) failed and were quarantined: "
              + ", ".join(result.request.experiment for result in failed),
              file=sys.stderr)
        return 1
    if args.command == "crashtest":
        return _crashtest_verdict(results)
    return 0


def _validate_command(args) -> int:
    """Run the fidelity oracle; exit 0 only when it holds.

    Normal mode: every selected claim must pass.  Mutation-smoke mode
    (``--expect-fail knob=value``): the observed failures must match
    the mutation's declared expectation exactly — a claim that fails
    to fail means the oracle has no teeth for that property.  The
    ``--determinism`` suite folds into the exit code the same way.
    """
    from repro.validate import run_determinism_suite, select_claims, validate

    if args.list_claims:
        generations = (args.generation,) if args.generation else (1, 2)
        claims = select_claims(args.experiments, generations, args.profile)
        width = max((len(claim.id) for claim in claims), default=0)
        for claim in claims:
            print(f"{claim.id.ljust(width)}  [{claim.experiment} G{claim.generation}] "
                  f"{claim.claim}")
        print(f"[{len(claims)} claims]")
        return 0

    if args.generation is not None:
        generations = (args.generation,)
    elif args.expect_fail is not None:
        generations = (1,)  # mutations are calibrated against G1 sweeps
    else:
        generations = (1, 2)
    cache = ResultCache(args.cache_dir) if args.cache and not args.expect_fail else None

    def progress(verdict) -> None:
        marker = "ok" if verdict.passed else "FAIL"
        print(f"  [{marker}] {verdict.claim_id}: {verdict.measured}")

    try:
        fidelity = validate(
            experiments=args.experiments,
            generations=generations,
            profile=args.profile,
            jobs=args.jobs,
            cache=cache,
            force=args.force,
            mutation=args.expect_fail,
            progress=progress,
        )
    except ConfigError as error:
        print(f"validate: {error}", file=sys.stderr)
        return 2
    print()
    print(fidelity.render())

    determinism = []
    if args.determinism:
        print()
        determinism = run_determinism_suite(cache_dir=args.cache_dir, jobs=max(args.jobs, 2))
        for result in determinism:
            marker = "ok" if result.passed else "FAIL"
            print(f"  [{marker}] {result.name}: {result.detail}")

    if args.json is not None:
        payload = fidelity.to_dict()
        if determinism:
            payload["determinism"] = [result.to_dict() for result in determinism]
        import json as _json
        import pathlib

        path = pathlib.Path(args.json)
        path.write_text(_json.dumps(payload, indent=2))
        print(f"[fidelity report written to {path}]")

    ok = fidelity.ok() and all(result.passed for result in determinism)
    return 0 if ok else 1


def _trace_command(args) -> int:
    """Run one experiment inside an ambient trace session and export.

    The experiment runs serially in-process (trace sessions are
    per-process; a worker pool would build its machines out of the
    session's sight) and bypasses the result cache — a cached replay
    simulates nothing and would produce an empty trace.
    """
    from repro.common.errors import ReproError
    from repro.trace import session
    from repro.trace.emit import (
        write_chrome_trace,
        write_timeseries_csv,
        write_timeseries_json,
    )

    if args.experiment not in REGISTRY:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        print(f"available: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    spec = REGISTRY[args.experiment]
    categories = args.categories.split(",") if args.categories else None
    interval = args.interval if args.interval > 0 else None
    try:
        with session(interval=interval, categories=categories) as sess:
            reports = spec.run(args.generation, args.profile)
    except (ConfigError, ReproError) as error:
        print(f"trace failed: {error}", file=sys.stderr)
        return 2
    series = sess.timeseries()
    for report in reports:
        if series.rows and report is reports[0]:
            report.timeseries = series.to_obj()
        print(report.render())
        print()
    out = write_chrome_trace(args.out, sess.tracer, args.cycles_per_us)
    print(f"[chrome trace: {out} — load it at https://ui.perfetto.dev]")
    if args.timeline is not None:
        if args.timeline.endswith(".json"):
            timeline = write_timeseries_json(args.timeline, series)
        else:
            timeline = write_timeseries_csv(args.timeline, series)
        print(f"[time-series: {timeline} ({len(series)} rows)]")
    print(f"[trace: {sess.summary()}]")
    return 0


def _violations_in(result) -> int:
    """Count crash points a campaign result flagged as violations."""
    violation_code = STATUS_CODES["violation"]
    count = 0
    for report in result.reports:
        try:
            values = report.get("status")
        except KeyError:
            continue
        count += sum(1 for value in values if value == violation_code)
    return count


def _crashtest_verdict(results) -> int:
    """Exit code for crashtest: 1 if any campaign found a violation."""
    total = 0
    for result in results:
        violations = _violations_in(result)
        if violations:
            print(f"{result.request.experiment}: {violations} crash-consistency "
                  f"violation(s) found", file=sys.stderr)
        total += violations
    if total:
        return 1
    print("crashtest: no crash-consistency violations found")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
