"""Command-line runner: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig2 --generation 1
    python -m repro run fig7 fig8 --profile full
    python -m repro run all --jobs 8          # parallel sweep
    python -m repro run all                   # second time: served from cache
    python -m repro run fig3 --force          # recompute + refresh cache
    python -m repro run fig3 --no-cache       # bypass the cache entirely

Mirrors the original artifact's ``run.py`` — one command reruns an
experiment and prints the series/rows the corresponding paper figure
plots — but schedules everything through :mod:`repro.runner`: runs
fan out across a process pool (``--jobs``) and results are served
from the content-addressed on-disk cache when the same
``(experiment, generation, profile, code version)`` configuration has
already been computed.  The sweep summary line reports wall time,
worker utilization and cache hit/miss counters.
"""

from __future__ import annotations

import argparse
import sys

from repro.runner import REGISTRY, ResultCache, RunRequest, run_sweep
from repro.runner.registry import resolve_names

#: Backwards-compatible view of the registry:
#: name -> (description, runner callable).  Prefer repro.runner.REGISTRY.
EXPERIMENTS = {name: (spec.title, spec.run) for name, spec in REGISTRY.items()}


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (list / run subcommands).

    ``run`` exposes the runner's scheduling knobs: ``--jobs`` (process
    fan-out; 1 = serial, no pool), ``--cache/--no-cache`` (consult and
    populate the on-disk result cache — the default — or bypass it),
    ``--force`` (invalidate then recompute the selected entries) and
    ``--cache-dir`` (cache root; also settable via ``REPRO_CACHE_DIR``).
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rerun the EuroSys'22 Optane buffering experiments in simulation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    run.add_argument("--generation", "-g", type=int, default=1, choices=(1, 2))
    run.add_argument("--profile", "-p", default="fast", choices=("fast", "full"))
    run.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial)",
    )
    cache_group = run.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="serve/populate the on-disk result cache (default)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="bypass the result cache entirely",
    )
    run.add_argument(
        "--force", action="store_true",
        help="invalidate cached entries for the selected runs and recompute",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    run.add_argument(
        "--chart", action="store_true", help="render ASCII charts alongside the tables"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``run`` builds one :class:`~repro.runner.RunRequest` per selected
    experiment and hands the whole batch to
    :func:`~repro.runner.run_sweep`, so ``--jobs N`` parallelism spans
    experiments (and, for sharded experiments like fig2/fig3,
    individual curves).  Reports print in request order as they
    resolve; cached results are marked and cost no simulation time.
    """
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in REGISTRY)
        for name, spec in REGISTRY.items():
            print(f"{name.ljust(width)}  {spec.title}")
        return 0

    try:
        names = resolve_names(args.experiments)
    except KeyError as error:
        print(f"unknown experiment(s): {error.args[0]}", file=sys.stderr)
        print(f"available: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir) if args.cache else None
    requests = [
        RunRequest.make(name, generation=args.generation, profile=args.profile)
        for name in names
    ]

    def show(result) -> None:
        spec = REGISTRY[result.request.experiment]
        print(f"### {spec.title} (G{args.generation}, {args.profile} profile)")
        for report in result.reports:
            print(report.render())
            if getattr(args, "chart", False):
                from repro.experiments.plotting import chart

                print()
                print(chart(report))
            print()
        if result.cached:
            print(f"[{result.request.experiment} served from cache]\n")
        else:
            print(f"[{result.request.experiment} done in {result.wall_time:.1f}s]\n")

    _, metrics = run_sweep(
        requests, jobs=args.jobs, cache=cache, force=args.force, progress=show
    )
    print(f"[sweep: {len(requests)} experiment{'s' if len(requests) != 1 else ''}, "
          f"{metrics.summary()}]")
    if cache is not None and cache.write_errors:
        print(f"warning: {cache.write_errors} result(s) could not be written to "
              f"the cache at {cache.root} (ran uncached)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
