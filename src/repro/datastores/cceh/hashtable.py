"""Cacheline-Conscious Extendible Hashing on simulated PM (Section 4.1).

A faithful-enough CCEH [21]: a global directory of segment pointers
(2^global_depth entries), 16 KB segments of 256 cacheline buckets,
linear probing over four adjacent buckets, lazy segment splits with
per-segment local depths, and directory doubling.

Every operation issues the memory traffic the real structure would:
key insertion performs the paper's three random reads — directory
entry, segment metadata, bucket(s) — followed by a 16-byte store and a
persistence barrier (clwb + fence, as CCEH does).  Cores mark the
Table-1 phases via the optional ``phase`` context of
:class:`~repro.core.analysis.InstrumentedCore`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.errors import DataStoreError, KeyNotFoundError
from repro.datastores.base import CoreLike, NullCore
from repro.datastores.cceh.segment import (
    BUCKET_SLOTS,
    PAIR_SIZE,
    SEGMENT_BYTES,
    Segment,
)
from repro.persist.allocator import RegionAllocator
from repro.workloads.zipf import fnv1a_64

#: Cycles of pure compute per operation: hashing plus the call-chain
#: overhead a perf profile attributes to the operation ("Misc." in the
#: paper's Table 1), and per-slot key comparison cost.
_HASH_COST = 60.0
_COMPARE_COST = 2.0

_HASH_BITS = 64
_BUCKET_SHIFT = 8  # bits used for the in-segment bucket index
_BUCKET_MASK = 0xFF


def _phase(core: CoreLike, label: str):
    enter = getattr(core, "phase", None)
    return enter(label) if enter is not None else nullcontext()


@dataclass
class CcehStats:
    """Operation counters for experiments and tests."""

    inserts: int = 0
    lookups: int = 0
    updates: int = 0
    removes: int = 0
    segment_splits: int = 0
    directory_doublings: int = 0
    probe_steps: int = 0


class CcehHashTable:
    """The CCEH key-value store."""

    def __init__(
        self,
        allocator: RegionAllocator,
        initial_depth: int = 2,
        fence: str = "mfence",
    ) -> None:
        if initial_depth < 1:
            raise DataStoreError("initial directory depth must be >= 1")
        self._allocator = allocator
        self._fence = fence
        self.global_depth = initial_depth
        self.stats = CcehStats()
        self._segments: list[Segment] = []
        self._directory: list[Segment] = [
            self._new_segment(depth=initial_depth) for _ in range(2**initial_depth)
        ]
        self._directory_addr = self._allocator.alloc(
            (2**initial_depth) * 8, align=CACHELINE_SIZE
        )

    # -- layout helpers -------------------------------------------------------

    def _new_segment(self, depth: int) -> Segment:
        base = self._allocator.alloc(SEGMENT_BYTES, align=XPLINE_SIZE)
        segment = Segment(base_addr=base, local_depth=depth)
        self._segments.append(segment)
        return segment

    def _dir_entry_addr(self, index: int) -> int:
        return self._directory_addr + index * 8

    def _dir_index(self, hashed: int) -> int:
        return hashed >> (_HASH_BITS - self.global_depth)

    @staticmethod
    def _bucket_index(hashed: int) -> int:
        return (hashed >> _BUCKET_SHIFT) & _BUCKET_MASK

    @property
    def directory_size(self) -> int:
        """Number of directory entries (2^global_depth)."""
        return len(self._directory)

    @property
    def segment_count(self) -> int:
        """Number of distinct segments mapped by the directory."""
        return len(set(id(segment) for segment in self._directory))

    @property
    def footprint_bytes(self) -> int:
        """PM bytes occupied by segments + directory."""
        return self.segment_count * SEGMENT_BYTES + self.directory_size * 8

    def __len__(self) -> int:
        return self.stats.inserts - self.stats.removes

    # -- operations ----------------------------------------------------------------

    def insert(self, key: int, value: int, core: CoreLike | None = None) -> None:
        """Insert or update ``key``; issues CCEH's full memory traffic."""
        core = core or NullCore()
        hashed = fnv1a_64(key)
        core.tick(_HASH_COST)
        while True:
            with _phase(core, "directory"):
                # The directory entry carries the segment pointer and its
                # local depth (as in CCEH); it is small, hot, and caches well.
                dir_index = self._dir_index(hashed)
                core.load(self._dir_entry_addr(dir_index), 8)
                segment = self._directory[dir_index]
            home = self._bucket_index(hashed)
            target_bucket = -1
            target_slot = -1
            is_update = False
            first_probe = True
            for bucket_index in segment.probe_buckets(home):
                # The first touch of the segment — "accessing segment
                # metadata" in the paper's Table 1 — is the expensive
                # random read straight from the 3D-XPoint media; further
                # probes enjoy on-DIMM read-buffer locality.
                with _phase(core, "segment" if first_probe else "bucket"):
                    core.load(segment.bucket_addr(bucket_index), 8)
                first_probe = False
                self.stats.probe_steps += 1
                bucket = segment.buckets[bucket_index]
                with _phase(core, "bucket"):
                    for slot, (existing_key, _) in enumerate(bucket):
                        core.tick(_COMPARE_COST)
                        if existing_key == key:
                            target_bucket, target_slot = bucket_index, slot
                            is_update = True
                            break
                if is_update:
                    break
                if target_bucket < 0 and len(bucket) < BUCKET_SLOTS:
                    target_bucket = bucket_index
                    target_slot = len(bucket)
                    break
            if target_bucket < 0:
                self._split(segment, core)
                continue
            with _phase(core, "persist"):
                bucket = segment.buckets[target_bucket]
                if is_update:
                    bucket[target_slot] = (key, value)
                    self.stats.updates += 1
                else:
                    bucket.append((key, value))
                    self.stats.inserts += 1
                core.store(segment.slot_addr(target_bucket, target_slot), PAIR_SIZE)
                core.clwb(segment.bucket_addr(target_bucket))
                core.fence(self._fence)
            return

    def get(self, key: int, core: CoreLike | None = None) -> int:
        """Look up ``key``; raises KeyNotFoundError when absent."""
        core = core or NullCore()
        hashed = fnv1a_64(key)
        core.tick(_HASH_COST)
        self.stats.lookups += 1
        with _phase(core, "directory"):
            dir_index = self._dir_index(hashed)
            core.load(self._dir_entry_addr(dir_index), 8)
            segment = self._directory[dir_index]
        home = self._bucket_index(hashed)
        first_probe = True
        for bucket_index in segment.probe_buckets(home):
            with _phase(core, "segment" if first_probe else "bucket"):
                core.load(segment.bucket_addr(bucket_index), 8)
            first_probe = False
            self.stats.probe_steps += 1
            with _phase(core, "bucket"):
                for existing_key, value in segment.buckets[bucket_index]:
                    core.tick(_COMPARE_COST)
                    if existing_key == key:
                        return value
        raise KeyNotFoundError(key)

    def contains(self, key: int, core: CoreLike | None = None) -> bool:
        """Membership test (lookup that swallows the miss)."""
        try:
            self.get(key, core)
            return True
        except KeyNotFoundError:
            return False

    def remove(self, key: int, core: CoreLike | None = None) -> None:
        """Delete ``key``; raises KeyNotFoundError when absent."""
        core = core or NullCore()
        hashed = fnv1a_64(key)
        core.tick(_HASH_COST)
        dir_index = self._dir_index(hashed)
        core.load(self._dir_entry_addr(dir_index), 8)
        segment = self._directory[dir_index]
        home = self._bucket_index(hashed)
        for bucket_index in segment.probe_buckets(home):
            core.load(segment.bucket_addr(bucket_index), 8)
            bucket = segment.buckets[bucket_index]
            for slot, (existing_key, _) in enumerate(bucket):
                core.tick(_COMPARE_COST)
                if existing_key == key:
                    bucket.pop(slot)
                    core.store(segment.slot_addr(bucket_index, slot), PAIR_SIZE)
                    core.clwb(segment.bucket_addr(bucket_index))
                    core.fence(self._fence)
                    self.stats.removes += 1
                    return
        raise KeyNotFoundError(key)

    # -- prefetch trace (helper thread, Section 4.1) ---------------------------------

    def prefetch_trace(self, core: CoreLike, key: int) -> None:
        """The load-only slice of :meth:`insert` for the helper thread.

        Retains exactly the indexing loads — directory entry and the
        segment's home bucket — and the hash computation; all stores,
        probing logic, synchronization and persistence are stripped, as
        in the paper.
        """
        hashed = fnv1a_64(key)
        core.tick(_HASH_COST)
        dir_index = self._dir_index(hashed)
        core.load(self._dir_entry_addr(dir_index), 8)
        segment = self._directory[dir_index]
        core.load(segment.bucket_addr(self._bucket_index(hashed)), 8)

    # -- resizing -------------------------------------------------------------------

    def _split(self, segment: Segment, core: CoreLike) -> None:
        """Split ``segment``; doubles the directory when depths collide."""
        with _phase(core, "split"):
            if segment.local_depth == self.global_depth:
                self._double_directory(core)
            self.stats.segment_splits += 1
            new_depth = segment.local_depth + 1
            sibling = self._new_segment(depth=new_depth)
            segment.local_depth = new_depth

            # Redistribute pairs whose next depth bit is 1.
            discriminant = _HASH_BITS - new_depth
            for bucket_index, bucket in enumerate(segment.buckets):
                if not bucket:
                    continue
                core.load(segment.bucket_addr(bucket_index), 8)
                keep: list[tuple[int, int]] = []
                for key, value in bucket:
                    hashed = fnv1a_64(key)
                    core.tick(_COMPARE_COST)
                    if (hashed >> discriminant) & 1:
                        target = self._bucket_index(hashed)
                        moved = False
                        for candidate in sibling.probe_buckets(target):
                            if len(sibling.buckets[candidate]) < BUCKET_SLOTS:
                                sibling.buckets[candidate].append((key, value))
                                core.store(
                                    sibling.slot_addr(candidate, len(sibling.buckets[candidate]) - 1),
                                    PAIR_SIZE,
                                )
                                moved = True
                                break
                        if not moved:
                            # Extremely unlikely; keep in place rather than
                            # recursing mid-split.
                            keep.append((key, value))
                    else:
                        keep.append((key, value))
                segment.buckets[bucket_index] = keep
            # Persist the sibling wholesale (streaming flush).
            core.clwb(sibling.base_addr, SEGMENT_BYTES)
            core.fence(self._fence)

            # Repoint the directory entries that now map to the sibling.
            prefix_bits = self.global_depth - new_depth
            for dir_index in range(len(self._directory)):
                if self._directory[dir_index] is segment:
                    local_prefix = dir_index >> prefix_bits if prefix_bits >= 0 else dir_index
                    if local_prefix & 1:
                        self._directory[dir_index] = sibling
                        core.store(self._dir_entry_addr(dir_index), 8)
                        core.clwb(self._dir_entry_addr(dir_index))
            core.fence(self._fence)

    def _double_directory(self, core: CoreLike) -> None:
        self.stats.directory_doublings += 1
        old = self._directory
        self.global_depth += 1
        new_addr = self._allocator.alloc(len(old) * 2 * 8, align=CACHELINE_SIZE)
        self._directory = [old[index // 2] for index in range(len(old) * 2)]
        for line_offset in range(0, len(self._directory) * 8, CACHELINE_SIZE):
            core.store(new_addr + line_offset, CACHELINE_SIZE)
            core.clwb(new_addr + line_offset)
        core.fence(self._fence)
        self._allocator.free(self._directory_addr, len(old) * 8)
        self._directory_addr = new_addr

    # -- invariants (tests & crash checks) --------------------------------------------

    def check_invariants(self) -> None:
        """Raise DataStoreError if structural invariants are violated."""
        if len(self._directory) != 2**self.global_depth:
            raise DataStoreError("directory size != 2^global_depth")
        span: dict[int, list[int]] = {}
        for index, segment in enumerate(self._directory):
            if segment.local_depth > self.global_depth:
                raise DataStoreError("local depth exceeds global depth")
            span.setdefault(id(segment), []).append(index)
        for indexes in span.values():
            segment = self._directory[indexes[0]]
            expected = 2 ** (self.global_depth - segment.local_depth)
            if len(indexes) != expected:
                raise DataStoreError(
                    f"segment with depth {segment.local_depth} mapped by "
                    f"{len(indexes)} entries, expected {expected}"
                )
            if indexes != list(range(indexes[0], indexes[0] + expected)):
                raise DataStoreError("segment directory span is not contiguous")
