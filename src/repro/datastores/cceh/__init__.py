"""CCEH: cacheline-conscious extendible hashing (paper Section 4.1)."""

from repro.datastores.cceh.hashtable import CcehHashTable, CcehStats
from repro.datastores.cceh.segment import (
    BUCKET_SLOTS,
    PAIR_SIZE,
    PROBE_DISTANCE,
    SEGMENT_BUCKETS,
    SEGMENT_BYTES,
    Segment,
)

__all__ = [
    "CcehHashTable",
    "CcehStats",
    "BUCKET_SLOTS",
    "PAIR_SIZE",
    "PROBE_DISTANCE",
    "SEGMENT_BUCKETS",
    "SEGMENT_BYTES",
    "Segment",
]
