"""CCEH segments: 16 KB arrays of cacheline-sized buckets.

Layout follows the paper's Figure 9: each segment holds 256 buckets of
64 bytes plus segment metadata.  We give the metadata its own leading
cacheline so buckets stay cacheline-aligned.  A bucket stores four
16-byte key-value pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE

#: Buckets per segment (paper: 256 cacheline-sized buckets).
SEGMENT_BUCKETS = 256
#: 16-byte pairs per 64-byte bucket.
BUCKET_SLOTS = 4
#: Bytes of one key-value pair.
PAIR_SIZE = 16
#: One metadata cacheline + the bucket array.
SEGMENT_BYTES = CACHELINE_SIZE + SEGMENT_BUCKETS * CACHELINE_SIZE
#: Linear-probing window (paper: up to four adjacent buckets).
PROBE_DISTANCE = 4


@dataclass
class Segment:
    """One CCEH segment: metadata + 256 buckets of 4 slots each."""

    base_addr: int
    local_depth: int
    #: buckets[i] is a list of (key, value) pairs, len <= BUCKET_SLOTS.
    buckets: list[list[tuple[int, int]]] = field(
        default_factory=lambda: [[] for _ in range(SEGMENT_BUCKETS)]
    )

    @property
    def metadata_addr(self) -> int:
        """Address of the segment header — the expensive random read."""
        return self.base_addr

    def bucket_addr(self, index: int) -> int:
        """Address of bucket ``index``'s cacheline."""
        return self.base_addr + CACHELINE_SIZE + index * CACHELINE_SIZE

    def slot_addr(self, bucket_index: int, slot: int) -> int:
        """Address of one 16-byte pair slot."""
        return self.bucket_addr(bucket_index) + slot * PAIR_SIZE

    def pair_count(self) -> int:
        """Number of stored pairs (for load-factor accounting)."""
        return sum(len(bucket) for bucket in self.buckets)

    @property
    def load_factor(self) -> float:
        """Occupied fraction of the segment's slots."""
        return self.pair_count() / (SEGMENT_BUCKETS * BUCKET_SLOTS)

    def probe_buckets(self, home: int) -> list[int]:
        """The linear-probing window starting at bucket ``home``."""
        return [(home + step) % SEGMENT_BUCKETS for step in range(PROBE_DISTANCE)]

    def xplines_spanned(self) -> int:
        """How many XPLines the segment occupies (layout sanity checks)."""
        return (SEGMENT_BYTES + XPLINE_SIZE - 1) // XPLINE_SIZE
