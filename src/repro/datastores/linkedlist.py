"""Persistent circular linked list of XPLine-sized elements.

The paper's Section 3.6 working set (``working_set_unit_t``): each
element is one 256-byte, XPLine-aligned block whose first cacheline
holds the ``next`` pointer and whose remaining three cachelines are a
pad area.  The pointer and the updated pad data deliberately live in
*different* cachelines so persisting the pad never invalidates cached
pointers.

:class:`PointerChaseBench` uses a lighter-weight address-table variant
for the big sweeps; this class is the full data structure with
mutation support, used by examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.errors import DataStoreError
from repro.common.rng import DeterministicRng
from repro.datastores.base import CoreLike, NullCore
from repro.persist.allocator import RegionAllocator


@dataclass
class ListElement:
    """One 256-byte working-set element."""

    addr: int
    next_index: int

    @property
    def pointer_addr(self) -> int:
        """Cacheline 0: the next pointer."""
        return self.addr

    def pad_addr(self, pad_line: int = 1) -> int:
        """One of the three pad cachelines (1..3)."""
        if not 1 <= pad_line <= 3:
            raise DataStoreError("pad cacheline must be 1, 2 or 3")
        return self.addr + pad_line * CACHELINE_SIZE


class PersistentLinkedList:
    """Circular list of XPLine-aligned elements on PM."""

    def __init__(
        self,
        allocator: RegionAllocator,
        count: int,
        sequential: bool = True,
        seed: int = 7,
    ) -> None:
        if count <= 0:
            raise DataStoreError("list needs at least one element")
        self.sequential = sequential
        addrs = [allocator.alloc(XPLINE_SIZE, align=XPLINE_SIZE) for _ in range(count)]
        order = list(range(count))
        if not sequential:
            DeterministicRng(seed).shuffle(order)
        self.elements: list[ListElement] = []
        successor = [0] * count
        for position, element in enumerate(order):
            successor[element] = order[(position + 1) % count]
        for index in range(count):
            self.elements.append(ListElement(addr=addrs[index], next_index=successor[index]))

    def __len__(self) -> int:
        return len(self.elements)

    def traverse(self, core: CoreLike | None = None, start: int = 0, steps: int | None = None) -> int:
        """Pointer-chase ``steps`` elements (default: one full cycle).

        Returns the index where the walk stopped.
        """
        core = core or NullCore()
        steps = len(self.elements) if steps is None else steps
        cursor = start
        for _ in range(steps):
            element = self.elements[cursor]
            core.load(element.pointer_addr, 8)
            cursor = element.next_index
        return cursor

    def update_pass(
        self,
        core: CoreLike | None = None,
        start: int = 0,
        steps: int | None = None,
        persist: bool = True,
        fence: str = "sfence",
        pad_line: int = 1,
    ) -> int:
        """The Figure 8 access pattern: chase + update one pad line each.

        With ``persist=False`` the pass runs under the relaxed model
        (caller fences at the end).
        """
        core = core or NullCore()
        steps = len(self.elements) if steps is None else steps
        cursor = start
        for _ in range(steps):
            element = self.elements[cursor]
            core.load(element.pointer_addr, 8)
            core.store(element.pad_addr(pad_line), 8)
            core.clwb(element.pad_addr(pad_line))
            if persist:
                core.fence(fence)
            cursor = element.next_index
        if not persist:
            core.fence(fence)
        return cursor

    def verify_cycle(self) -> None:
        """Check the chain is one Hamiltonian cycle."""
        seen = set()
        cursor = 0
        for _ in range(len(self.elements)):
            if cursor in seen:
                raise DataStoreError("premature cycle in linked list")
            seen.add(cursor)
            cursor = self.elements[cursor].next_index
        if cursor != 0 or len(seen) != len(self.elements):
            raise DataStoreError("list does not form a single cycle")
