"""Persistent spinlock and its handover cost (paper §3.5 implications).

The paper warns: "A similar problem could occur when read-write
sharing a cacheline on PM across CPU sockets, e.g., multiple threads
on different sockets competing for a persistent lock ... Handing over
the lock between threads requires a shared cacheline to be invalidated
and flushed back to PM, immediately followed by a read from another
thread."

:class:`PersistentLock` models exactly that protocol: the owner writes
and persists the lock word on release (so lock ownership survives a
crash for recovery purposes), and the next owner's acquire starts with
a read of that just-persisted cacheline — a read-after-persist on the
lock word.  On G1, cross-handover acquires eat the full RAP stall; on
G2 (clwb retained) local handovers are cheap, and only cross-socket
traffic pays.
"""

from __future__ import annotations

from repro.common.errors import DataStoreError
from repro.persist.allocator import RegionAllocator
from repro.system.machine import Core


class PersistentLock:
    """A test-and-set lock whose word lives on persistent memory."""

    def __init__(self, allocator: RegionAllocator, fence: str = "mfence") -> None:
        self.addr = allocator.alloc(64, align=64)
        self.fence = fence
        self._owner: str | None = None
        self.acquisitions = 0
        self.handovers = 0

    @property
    def owner(self) -> str | None:
        """Name of the core holding the lock (None when free)."""
        return self._owner

    def acquire(self, core: Core) -> float:
        """Take the lock; returns the cycles the acquire cost.

        The read of the lock word is the RAP-prone access: the previous
        owner's release flushed this very cacheline.
        """
        if self._owner == core.name:
            raise DataStoreError(f"{core.name} already holds the lock")
        start = core.now
        core.load(self.addr, 8)  # observe the released word
        core.store(self.addr, 8)  # CAS write (modeled as one store)
        core.clwb(self.addr)  # ownership must be durable
        core.fence(self.fence)
        if self._owner is not None:
            self.handovers += 1
        self._owner = core.name
        self.acquisitions += 1
        return core.now - start

    def release(self, core: Core) -> float:
        """Release the lock, persisting the cleared word."""
        if self._owner != core.name:
            raise DataStoreError(f"{core.name} does not hold the lock")
        start = core.now
        core.store(self.addr, 8)
        core.clwb(self.addr)
        core.fence(self.fence)
        self._owner = None
        return core.now - start


def measure_handover(
    lock: PersistentLock,
    cores: list[Core],
    rounds: int,
    critical_section_cycles: float = 50.0,
) -> float:
    """Average acquire latency when the lock ping-pongs across cores.

    Each round: the next core acquires (paying the RAP on the word the
    previous owner just flushed), holds briefly, releases.  Cores'
    clocks are kept synchronized to model back-to-back contention.
    """
    total_acquire = 0.0
    acquires = 0
    for round_index in range(rounds):
        core = cores[round_index % len(cores)]
        # Contending core spins until the current release time.
        latest = max(c.now for c in cores)
        if core.now < latest:
            core.now = latest
        total_acquire += lock.acquire(core)
        acquires += 1
        core.tick(critical_section_cycles)
        lock.release(core)
    return total_acquire / acquires
