"""FAST & FAIR-style persistent B+-tree (paper Section 4.2)."""

from repro.datastores.btree.fastfair import BtreeStats, FastFairTree
from repro.datastores.btree.node import (
    ENTRY_SIZE,
    HEADER_BYTES,
    NODE_BYTES,
    NODE_CAPACITY,
    Node,
)

__all__ = [
    "BtreeStats",
    "FastFairTree",
    "ENTRY_SIZE",
    "HEADER_BYTES",
    "NODE_BYTES",
    "NODE_CAPACITY",
    "Node",
]
