"""FAST & FAIR-style persistent B+-tree with two insertion modes.

``mode="inplace"`` is the paper's baseline: sorted-order insertion
shifts entries one slot right, executing a persistence barrier (clwb +
fence) after *every* shift.  Successive shifts within one cacheline
therefore read a line whose previous flush is still in flight — the
read-after-persist pattern that dominates insertion cost on G1 Optane.

``mode="redo"`` is the paper's optimization (Figure 11): each shift is
recorded out-of-place in a redo log (one fresh PM cacheline per
update, persisted immediately — so the persist count matches the
baseline), mirrored in DRAM; when all updates of a node cacheline are
logged, an 8-byte commit flag is persisted, the DRAM mirror is written
back in place with plain stores, and the log is reclaimed.  No load
ever targets a just-flushed line, so the RAP stalls vanish even though
PM write volume doubles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import XPLINE_SIZE
from repro.common.errors import DataStoreError, KeyNotFoundError
from repro.datastores.base import CoreLike, NullCore
from repro.datastores.btree.node import ENTRY_SIZE, NODE_BYTES, NODE_CAPACITY, Node
from repro.persist.allocator import PmHeap
from repro.persist.log import RedoLog

#: Per-operation compute overhead (comparisons, call chain).
_OP_COST = 50.0


@dataclass
class BtreeStats:
    """Counters for experiments and tests."""

    inserts: int = 0
    lookups: int = 0
    shifts: int = 0
    leaf_splits: int = 0
    internal_splits: int = 0
    log_commits: int = 0


class FastFairTree:
    """B+-tree over simulated PM with selectable insertion mode."""

    def __init__(self, heap: PmHeap, mode: str = "inplace", fence: str = "sfence") -> None:
        if mode not in ("inplace", "redo"):
            raise DataStoreError(f"unknown B+-tree mode {mode!r}")
        self.heap = heap
        self.mode = mode
        self.fence = fence
        self.stats = BtreeStats()
        self.root = self._new_node(leaf=True)
        self.height = 1
        # One redo log per executing core, as each thread would own its
        # own log area in a real implementation.
        self._logs: dict[int, RedoLog] = {}

    def _ensure_log(self, core: CoreLike) -> RedoLog:
        key = id(core)
        log = self._logs.get(key)
        if log is None or log.core is not core:
            log = RedoLog(core, self.heap, capacity_entries=NODE_CAPACITY + 4)
            self._logs[key] = log
        return log

    def _new_node(self, leaf: bool) -> Node:
        return Node(base_addr=self.heap.pm.alloc(NODE_BYTES, align=XPLINE_SIZE), leaf=leaf)

    def __len__(self) -> int:
        return self.stats.inserts

    # -- traversal ------------------------------------------------------------

    def _descend(self, key: int, core: CoreLike) -> tuple[Node, list[Node]]:
        """Walk to the leaf for ``key``; returns (leaf, ancestor path)."""
        path: list[Node] = []
        node = self.root
        while not node.leaf:
            core.load(node.header_addr, 8)
            for probe in node.binary_search_probes(key):
                core.load(node.entry_addr(probe), ENTRY_SIZE)
            path.append(node)
            node = node.child_for(key)
        core.load(node.header_addr, 8)
        for probe in node.binary_search_probes(key):
            core.load(node.entry_addr(probe), ENTRY_SIZE)
        return node, path

    def get(self, key: int, core: CoreLike | None = None) -> int:
        """Point lookup; raises KeyNotFoundError when absent."""
        core = core or NullCore()
        core.tick(_OP_COST)
        self.stats.lookups += 1
        leaf, _ = self._descend(key, core)
        position = leaf.search_position(key)
        if position < leaf.count and leaf.keys[position] == key:
            core.load(leaf.entry_addr(position), ENTRY_SIZE)
            return leaf.values[position]
        raise KeyNotFoundError(key)

    def range_scan(self, start_key: int, count: int, core: CoreLike | None = None) -> list[tuple[int, int]]:
        """Collect up to ``count`` pairs with key >= start_key."""
        core = core or NullCore()
        core.tick(_OP_COST)
        leaf, _ = self._descend(start_key, core)
        out: list[tuple[int, int]] = []
        position = leaf.search_position(start_key)
        node: Node | None = leaf
        while node is not None and len(out) < count:
            for index in range(position, node.count):
                core.load(node.entry_addr(index), ENTRY_SIZE)
                out.append((node.keys[index], node.values[index]))
                if len(out) >= count:
                    break
            node = node.sibling
            position = 0
            if node is not None:
                core.load(node.header_addr, 8)
        return out

    # -- insertion ---------------------------------------------------------------

    def insert(self, key: int, value: int, core: CoreLike | None = None) -> None:
        """Insert (or overwrite) ``key``."""
        core = core or NullCore()
        core.tick(_OP_COST)
        leaf, path = self._descend(key, core)
        if leaf.is_full:
            leaf = self._split_leaf(leaf, path, key, core)
        position = leaf.search_position(key)
        if position < leaf.count and leaf.keys[position] == key:
            leaf.values[position] = value
            core.store(leaf.entry_addr(position), ENTRY_SIZE)
            core.clwb(leaf.entry_line(position))
            core.fence(self.fence)
            return
        if self.mode == "inplace":
            self._insert_inplace(leaf, position, key, value, core)
        else:
            self._insert_redo(leaf, position, key, value, core)
        self.stats.inserts += 1

    def _insert_inplace(self, leaf: Node, position: int, key: int, value: int, core: CoreLike) -> None:
        """Baseline: shift right with a persistence barrier per shift."""
        for index in range(leaf.count - 1, position - 1, -1):
            # Read the entry being shifted (the RAP-prone load: on G1
            # this line was likely flushed by the previous iteration),
            # write it one slot right, persist.
            core.load(leaf.entry_addr(index), ENTRY_SIZE)
            core.store(leaf.entry_addr(index + 1), ENTRY_SIZE)
            core.clwb(leaf.entry_line(index + 1))
            core.fence(self.fence)
            self.stats.shifts += 1
        leaf.keys.insert(position, key)
        leaf.values.insert(position, value)
        core.store(leaf.entry_addr(position), ENTRY_SIZE)
        core.clwb(leaf.entry_line(position))
        core.fence(self.fence)
        # Header (count) update + persist.
        core.store(leaf.header_addr, 8)
        core.clwb(leaf.header_addr)
        core.fence(self.fence)

    def _insert_redo(self, leaf: Node, position: int, key: int, value: int, core: CoreLike) -> None:
        """Out-of-place: log shifts per cacheline, commit, write back."""
        log = self._ensure_log(core)
        touched_lines: set[int] = set()
        for index in range(leaf.count - 1, position - 1, -1):
            # The source entry is read from the (still cached, never
            # flushed) node; the update is logged out of place.
            core.load(leaf.entry_addr(index), ENTRY_SIZE)
            log.append(leaf.entry_addr(index + 1), ENTRY_SIZE, fence=self.fence)
            touched_lines.add(leaf.entry_line(index + 1))
            self.stats.shifts += 1
        log.append(leaf.entry_addr(position), ENTRY_SIZE, fence=self.fence)
        touched_lines.add(leaf.entry_line(position))
        # One commit per touched cacheline, as in the paper's Figure 11.
        for _ in touched_lines:
            log.commit(fence=self.fence)
            self.stats.log_commits += 1
        leaf.keys.insert(position, key)
        leaf.values.insert(position, value)
        log.apply_and_reclaim(fence=self.fence)
        core.store(leaf.header_addr, 8)
        core.clwb(leaf.header_addr)
        core.fence(self.fence)

    def remove(self, key: int, core: CoreLike | None = None) -> None:
        """Delete ``key`` (leaf-local, FAST & FAIR-style shift-left).

        Deletion mirrors insertion: entries right of the hole shift one
        slot left, persisting per shift in in-place mode or through the
        redo log in redo mode.  Underflowed leaves are left in place
        (lazy rebalancing, as FAST & FAIR does); invariants still hold.
        """
        core = core or NullCore()
        core.tick(_OP_COST)
        leaf, _ = self._descend(key, core)
        position = leaf.search_position(key)
        if position >= leaf.count or leaf.keys[position] != key:
            raise KeyNotFoundError(key)
        if self.mode == "inplace":
            for index in range(position + 1, leaf.count):
                core.load(leaf.entry_addr(index), ENTRY_SIZE)
                core.store(leaf.entry_addr(index - 1), ENTRY_SIZE)
                core.clwb(leaf.entry_line(index - 1))
                core.fence(self.fence)
                self.stats.shifts += 1
        else:
            log = self._ensure_log(core)
            touched: set[int] = set()
            for index in range(position + 1, leaf.count):
                core.load(leaf.entry_addr(index), ENTRY_SIZE)
                log.append(leaf.entry_addr(index - 1), ENTRY_SIZE, fence=self.fence)
                touched.add(leaf.entry_line(index - 1))
                self.stats.shifts += 1
            for _ in touched:
                log.commit(fence=self.fence)
                self.stats.log_commits += 1
            log.apply_and_reclaim(fence=self.fence)
        leaf.keys.pop(position)
        leaf.values.pop(position)
        core.store(leaf.header_addr, 8)
        core.clwb(leaf.header_addr)
        core.fence(self.fence)
        self.stats.inserts -= 1

    # -- splits ---------------------------------------------------------------------

    def _split_leaf(self, leaf: Node, path: list[Node], key: int, core: CoreLike) -> Node:
        """Split a full leaf; returns the leaf that should receive ``key``."""
        self.stats.leaf_splits += 1
        right = self._new_node(leaf=True)
        middle = leaf.count // 2
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.sibling = leaf.sibling
        leaf.sibling = right
        # Persist the new node wholesale, then the shrunken header.
        core.store(right.base_addr, NODE_BYTES)
        core.clwb(right.base_addr, NODE_BYTES)
        core.fence(self.fence)
        core.store(leaf.header_addr, 8)
        core.clwb(leaf.header_addr)
        core.fence(self.fence)
        separator = right.keys[0]
        self._insert_into_parent(leaf, separator, right, path, core)
        return right if key >= separator else leaf

    def _insert_into_parent(
        self, left: Node, separator: int, right: Node, path: list[Node], core: CoreLike
    ) -> None:
        if not path:
            new_root = self._new_node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [left, right]
            core.store(new_root.base_addr, NODE_BYTES)
            core.clwb(new_root.base_addr, NODE_BYTES)
            core.fence(self.fence)
            self.root = new_root
            self.height += 1
            return
        parent = path[-1]
        if parent.is_full:
            parent = self._split_internal(parent, path[:-1], separator, core)
        position = parent.search_position(separator)
        parent.keys.insert(position, separator)
        parent.children.insert(position + 1, right)
        # Internal shifts persist like leaf shifts (same mode rules).
        shift_count = parent.count - position
        for offset in range(shift_count):
            core.store(parent.entry_addr(position + offset), ENTRY_SIZE)
            core.clwb(parent.entry_line(position + offset))
            core.fence(self.fence)
        core.store(parent.header_addr, 8)
        core.clwb(parent.header_addr)
        core.fence(self.fence)

    def _split_internal(self, node: Node, path: list[Node], key: int, core: CoreLike) -> Node:
        self.stats.internal_splits += 1
        right = self._new_node(leaf=False)
        middle = node.count // 2
        separator = node.keys[middle]
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        core.store(right.base_addr, NODE_BYTES)
        core.clwb(right.base_addr, NODE_BYTES)
        core.fence(self.fence)
        core.store(node.header_addr, 8)
        core.clwb(node.header_addr)
        core.fence(self.fence)
        self._insert_into_parent(node, separator, right, path, core)
        return right if key >= separator else node

    # -- invariants --------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, balance and sibling chaining."""
        leaves: list[Node] = []
        self._check_node(self.root, None, None, leaves, depth=0, leaf_depths=set())
        for left, right in zip(leaves, leaves[1:]):
            if left.sibling is not right:
                raise DataStoreError("leaf sibling chain broken")
            if left.keys and right.keys and left.keys[-1] >= right.keys[0]:
                raise DataStoreError("leaf key ranges overlap")

    def _check_node(
        self,
        node: Node,
        low: int | None,
        high: int | None,
        leaves: list[Node],
        depth: int,
        leaf_depths: set[int],
    ) -> None:
        if node.keys != sorted(node.keys):
            raise DataStoreError("keys not sorted")
        if node.count > NODE_CAPACITY:
            raise DataStoreError("node over capacity")
        for key in node.keys:
            if (low is not None and key < low) or (high is not None and key >= high):
                raise DataStoreError("key outside separator range")
        if node.leaf:
            leaf_depths.add(depth)
            if len(leaf_depths) > 1:
                raise DataStoreError("leaves at different depths")
            leaves.append(node)
            return
        if len(node.children) != node.count + 1:
            raise DataStoreError("internal child count mismatch")
        bounds = [low, *node.keys, high]
        for index, child in enumerate(node.children):
            self._check_node(child, bounds[index], bounds[index + 1], leaves, depth + 1, leaf_depths)
