"""B+-tree nodes in the FAST & FAIR layout (paper Section 4.2).

Nodes are 512-byte PM blocks: a header cacheline (entry count, leaf
flag, sibling pointer) followed by seven cachelines of sorted 16-byte
entries (8 B key + 8 B value/child pointer) — 28 entries per node.
Keys are kept sorted by shifting entries on insertion, which is
exactly the repeated read/flush-same-cacheline pattern whose
read-after-persist cost the case study measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import CACHELINE_SIZE, cacheline_base

#: Node geometry.
NODE_BYTES = 512
HEADER_BYTES = CACHELINE_SIZE
ENTRY_SIZE = 16
NODE_CAPACITY = (NODE_BYTES - HEADER_BYTES) // ENTRY_SIZE  # 28


@dataclass
class Node:
    """One B+-tree node (leaf or internal)."""

    base_addr: int
    leaf: bool
    keys: list[int] = field(default_factory=list)
    #: Values for leaves; child Nodes for internals (len = len(keys)+1).
    values: list = field(default_factory=list)
    children: list["Node"] = field(default_factory=list)
    sibling: "Node | None" = None

    @property
    def count(self) -> int:
        """Number of keys stored."""
        return len(self.keys)

    @property
    def is_full(self) -> bool:
        """True when the node has no free entry slot."""
        return self.count >= NODE_CAPACITY

    @property
    def header_addr(self) -> int:
        """Address of the header cacheline (count, sibling)."""
        return self.base_addr

    def entry_addr(self, index: int) -> int:
        """Byte address of entry ``index``."""
        return self.base_addr + HEADER_BYTES + index * ENTRY_SIZE

    def entry_line(self, index: int) -> int:
        """Cacheline base address holding entry ``index``."""
        return cacheline_base(self.entry_addr(index))

    def search_position(self, key: int) -> int:
        """Index of the first key >= ``key`` (binary search)."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def binary_search_probes(self, key: int) -> list[int]:
        """Entry indexes a binary search would touch (for load traffic)."""
        probes = []
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            probes.append(mid)
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return probes

    def child_for(self, key: int) -> "Node":
        """Route ``key`` to the correct child (internal nodes only)."""
        position = self.search_position(key)
        if position < self.count and self.keys[position] == key:
            position += 1
        return self.children[position]
