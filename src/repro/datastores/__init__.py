"""Persistent data stores used by the paper's case studies."""

from repro.datastores.base import CoreLike, NullCore
from repro.datastores.btree import FastFairTree
from repro.datastores.cceh import CcehHashTable
from repro.datastores.linkedlist import PersistentLinkedList

__all__ = [
    "CoreLike",
    "NullCore",
    "FastFairTree",
    "CcehHashTable",
    "PersistentLinkedList",
]
