"""Shared plumbing for the persistent data stores.

The case studies need tables/trees far larger than the CPU caches
(otherwise the random reads the paper studies would be cache hits).
Building a 30+ MB structure through the timed simulation would
dominate experiment runtime, so stores accept any object implementing
the :class:`CoreLike` protocol and population uses :class:`NullCore`,
which mutates structure state at zero simulated cost.  Measured phases
then run with a real :class:`~repro.system.machine.Core`.
"""

from __future__ import annotations

from typing import Protocol


class CoreLike(Protocol):
    """The slice of the Core API data stores consume."""

    now: float

    def load(self, addr: int, size: int = 8) -> float: ...  # pragma: no cover

    def store(self, addr: int, size: int = 8) -> float: ...  # pragma: no cover

    def nt_store(self, addr: int, size: int = 64) -> float: ...  # pragma: no cover

    def clwb(self, addr: int, size: int = 64) -> float: ...  # pragma: no cover

    def fence(self, kind: str = "sfence") -> float: ...  # pragma: no cover

    def tick(self, cycles: float) -> None: ...  # pragma: no cover


class NullCore:
    """A CoreLike whose operations cost nothing and touch nothing.

    Used to pre-populate data stores: the Python-side structure state
    (keys, values, layout) is built identically, but no simulated
    memory traffic or time passes.
    """

    def __init__(self) -> None:
        self.now = 0.0

    def load(self, addr: int, size: int = 8) -> float:
        return 0.0

    def store(self, addr: int, size: int = 8) -> float:
        return 0.0

    def nt_store(self, addr: int, size: int = 64) -> float:
        return 0.0

    def clwb(self, addr: int, size: int = 64) -> float:
        return 0.0

    def clflushopt(self, addr: int, size: int = 64) -> float:
        return 0.0

    def sfence(self) -> float:
        return 0.0

    def mfence(self) -> float:
        return 0.0

    def fence(self, kind: str = "sfence") -> float:
        return 0.0

    def stream_load(self, addr: int, size: int = 64) -> float:
        return 0.0

    def tick(self, cycles: float) -> None:
        pass
