"""Discrete-event simulation core: clock, contention, persists, threads."""

from repro.sim.clock import Clock, Cycles
from repro.sim.inflight import InflightPersists
from repro.sim.ports import ServiceGrant, ServicePorts
from repro.sim.scheduler import GeneratorThread, ThreadContext, ThreadScheduler

__all__ = [
    "Clock",
    "Cycles",
    "InflightPersists",
    "ServiceGrant",
    "ServicePorts",
    "GeneratorThread",
    "ThreadContext",
    "ThreadScheduler",
]
