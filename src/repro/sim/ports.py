"""Finite service ports — the simulator's contention primitive.

A :class:`ServicePorts` models a resource that can serve at most N
requests concurrently, each taking a fixed service time.  It is how we
express the paper's observation that Optane media has *limited write
concurrency* (writes do not scale beyond a small thread count) while
reads enjoy more parallelism: the 3D-XPoint media gets few write-drain
ports and more read ports, the DRAM device gets many of both.

Requests carry absolute timestamps, so contexts running at different
local times share the resource correctly: a request is assigned to the
earliest-free port and waits if every port is busy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.sim.clock import Cycles


@dataclass(frozen=True)
class ServiceGrant:
    """Outcome of one acquisition: when service started and finished."""

    start: Cycles
    finish: Cycles


class ServicePorts:
    """N identical servers with per-request service times.

    The busy-until list is kept small (N is single digits to a few
    dozen), so a linear scan for the earliest-free port is fine and
    keeps the code obvious.
    """

    def __init__(self, ports: int, name: str = "ports") -> None:
        if ports <= 0:
            raise ConfigError(f"{name}: need at least one port, got {ports}")
        self.name = name
        self._busy_until: list[Cycles] = [0.0] * ports
        self.total_requests = 0
        self.total_busy_cycles = 0.0
        self.total_queue_cycles = 0.0

    @property
    def port_count(self) -> int:
        """Number of parallel servers."""
        return len(self._busy_until)

    def earliest_start(self, now: Cycles) -> Cycles:
        """Earliest time a request arriving at ``now`` could begin service."""
        return max(now, min(self._busy_until))

    def acquire(self, now: Cycles, service_time: Cycles) -> ServiceGrant:
        """Reserve the earliest-free port for ``service_time`` cycles.

        Returns the grant with absolute start/finish times.  The caller's
        perceived latency is ``grant.finish - now`` for synchronous
        operations, or just the queueing time for asynchronous ones.
        """
        if service_time < 0:
            raise ConfigError(f"{self.name}: negative service time {service_time}")
        index = min(range(len(self._busy_until)), key=self._busy_until.__getitem__)
        start = max(now, self._busy_until[index])
        finish = start + service_time
        self._busy_until[index] = finish
        self.total_requests += 1
        self.total_busy_cycles += service_time
        self.total_queue_cycles += start - now
        return ServiceGrant(start=start, finish=finish)

    def utilization(self, horizon: Cycles) -> float:
        """Fraction of port-cycles busy over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy_cycles / (horizon * self.port_count))

    def reset(self) -> None:
        """Free all ports and zero statistics."""
        self._busy_until = [0.0] * self.port_count
        self.total_requests = 0
        self.total_busy_cycles = 0.0
        self.total_queue_cycles = 0.0
