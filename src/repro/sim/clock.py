"""Cycle clock primitives.

The simulator measures everything in *CPU cycles* of the simulated
machine.  Each thread context carries its own local time (threads make
progress independently); shared devices deal in absolute timestamps,
so a plain float is the universal currency.  :class:`Clock` is the
convenience wrapper used by single-threaded experiment loops.
"""

from __future__ import annotations

from repro.common.errors import SimulationError

Cycles = float


class Clock:
    """A monotonically non-decreasing cycle counter."""

    def __init__(self, start: Cycles = 0.0) -> None:
        self._now: Cycles = float(start)

    @property
    def now(self) -> Cycles:
        """Current simulated time in cycles."""
        return self._now

    def advance(self, cycles: Cycles) -> Cycles:
        """Move time forward by ``cycles`` (must be >= 0); returns new now."""
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by negative {cycles}")
        self._now += cycles
        return self._now

    def advance_to(self, timestamp: Cycles) -> Cycles:
        """Move time forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self, start: Cycles = 0.0) -> None:
        """Rewind to ``start`` (only sensible between experiments)."""
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(now={self._now:.0f})"
