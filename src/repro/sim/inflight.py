"""Tracking of in-flight (accepted but incomplete) persists.

Under DDR-T, a cacheline flush or non-temporal store *returns* once it
is accepted into the iMC's write pending queue (the ADR domain), long
before the data lands on the 3D-XPoint media.  The paper's
read-after-persist experiments (Section 3.5) hinge on this gap: a load
to a line whose persist is still in flight — and which cannot be served
from the CPU caches — must wait for the persist to complete.

:class:`InflightPersists` records, per cacheline, the absolute time at
which the most recent persist to that line completes.
"""

from __future__ import annotations

from repro.sim.clock import Cycles


class InflightPersists:
    """Completion times of outstanding persists, keyed by cacheline index."""

    def __init__(self) -> None:
        self._completion_by_line: dict[int, Cycles] = {}
        self._max_completion: Cycles = 0.0

    def __len__(self) -> int:
        return len(self._completion_by_line)

    def add(self, line_index: int, completion: Cycles) -> None:
        """Record that ``line_index`` has a persist completing at ``completion``.

        A newer persist to the same line supersedes the old entry only
        if it completes later (persists to one line drain in order).
        """
        previous = self._completion_by_line.get(line_index, 0.0)
        if completion > previous:
            self._completion_by_line[line_index] = completion
        if completion > self._max_completion:
            self._max_completion = completion

    def completion_for(self, line_index: int, now: Cycles) -> Cycles | None:
        """Completion time of an in-flight persist to ``line_index``.

        Returns ``None`` if there is no persist still in flight at
        ``now``.  Entries whose completion has passed are pruned lazily.
        """
        completion = self._completion_by_line.get(line_index)
        if completion is None:
            return None
        if completion <= now:
            del self._completion_by_line[line_index]
            return None
        return completion

    def drain_time(self, now: Cycles) -> Cycles:
        """Earliest time by which *every* outstanding persist completes.

        Used by operations with wait-for-completion semantics (e.g. a
        simulated crash-consistent checkpoint that must be durable).
        """
        self.prune(now)
        if not self._completion_by_line:
            return now
        return max(self._completion_by_line.values())

    def pending_count(self, now: Cycles) -> int:
        """Number of persists still in flight at ``now``."""
        self.prune(now)
        return len(self._completion_by_line)

    def prune(self, now: Cycles) -> None:
        """Drop entries whose persist completed at or before ``now``."""
        if not self._completion_by_line:
            return
        done = [line for line, t in self._completion_by_line.items() if t <= now]
        for line in done:
            del self._completion_by_line[line]

    def clear(self) -> None:
        """Forget all in-flight persists (e.g. simulated power cycle)."""
        self._completion_by_line.clear()
        self._max_completion = 0.0
