"""Deterministic multi-thread scheduling over the shared memory system.

Real threads are replaced by :class:`ThreadContext` objects, each with
its own local clock.  The scheduler repeatedly runs the context with
the *smallest* local time for one step, so shared resources (service
ports, buffers) observe requests in globally non-decreasing time order
— a classic conservative discrete-event loop.

This is how the multi-threaded experiments (CCEH with 1–10 workers,
Figure 14's thread sweep) model bandwidth contention without real
parallelism: contention emerges from the finite service ports of the
simulated DIMMs, not from Python threads.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Protocol

from repro.common.errors import SimulationError
from repro.sim.clock import Cycles


class ThreadContext(Protocol):
    """Anything the scheduler can run.

    ``now`` is the thread's local time; ``step`` performs the next
    operation (advancing ``now``) and returns False when the thread has
    no more work.
    """

    now: Cycles

    def step(self) -> bool:  # pragma: no cover - protocol
        ...


class GeneratorThread:
    """Adapts a cycle-yielding generator into a :class:`ThreadContext`.

    The generator receives no arguments and yields nothing; it performs
    memory operations through a core that advances ``self.now``.  The
    common pattern::

        core = machine.core(thread_id)
        thread = GeneratorThread(core, lambda: workload(core))

    where ``workload`` is a plain function run step-by-step via its
    iterator protocol when written as a generator.
    """

    def __init__(self, name: str, body: Iterator[None], clock_source: Callable[[], Cycles]) -> None:
        self.name = name
        self._body = body
        self._clock_source = clock_source
        self._done = False
        self.steps = 0

    @property
    def now(self) -> Cycles:
        return self._clock_source()

    def step(self) -> bool:
        if self._done:
            return False
        try:
            next(self._body)
            self.steps += 1
            return True
        except StopIteration:
            self._done = True
            return False


class ThreadScheduler:
    """Runs a set of thread contexts to completion in causal time order."""

    def __init__(self) -> None:
        self._threads: list[ThreadContext] = []

    def add(self, thread: ThreadContext) -> None:
        """Register a thread to run."""
        self._threads.append(thread)

    def run(self, max_steps: int | None = None) -> int:
        """Drive all threads until each reports completion.

        Uses a heap keyed by local time (with a tiebreaking sequence
        number so ordering is deterministic for equal timestamps).
        Returns the total number of steps executed.  ``max_steps``
        guards against accidentally unbounded workloads.
        """
        heap: list[tuple[Cycles, int, int]] = []
        alive: dict[int, ThreadContext] = {}
        for index, thread in enumerate(self._threads):
            heapq.heappush(heap, (thread.now, index, index))
            alive[index] = thread

        steps = 0
        sequence = len(self._threads)
        while heap:
            _, _, index = heapq.heappop(heap)
            thread = alive.get(index)
            if thread is None:
                continue
            if thread.step():
                heapq.heappush(heap, (thread.now, sequence, index))
                sequence += 1
            else:
                del alive[index]
            steps += 1
            if max_steps is not None and steps > max_steps:
                raise SimulationError(f"scheduler exceeded {max_steps} steps; runaway thread?")
        return steps

    @property
    def makespan(self) -> Cycles:
        """Latest local time across all registered threads (after run())."""
        if not self._threads:
            return 0.0
        return max(thread.now for thread in self._threads)
