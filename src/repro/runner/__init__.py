"""repro.runner — parallel sweep engine with an on-disk result cache.

The scheduling/caching substrate for every experiment in the
repository.  Three pieces:

* :mod:`repro.runner.registry` — every paper figure/table as an
  :class:`ExperimentSpec` (the single registration site, picklable
  for worker processes, with optional per-curve sharding hooks);
* :mod:`repro.runner.cache` — a content-addressed on-disk store of
  ``ExperimentReport`` JSON, keyed by SHA-256 of ``(experiment,
  generation, profile, overrides, code version)``;
* :mod:`repro.runner.engine` — :func:`run_sweep`, the process-pool
  fan-out with cache consultation, deterministic merge order, metrics
  (wall time, worker utilization, hit/miss counters) and graceful
  serial fallback when no pool can be created.

Typical use::

    from repro.runner import ResultCache, RunRequest, run_sweep

    requests = [RunRequest.make("fig2", generation=1),
                RunRequest.make("fig7", generation=2)]
    results, metrics = run_sweep(requests, jobs=4, cache=ResultCache())
    for result in results:
        for report in result.reports:
            print(report.render())
    print(metrics.summary())

The CLI (``python -m repro run all --jobs 8``) and the benchmark
harness are thin layers over exactly this API.
"""

from repro.runner.cache import ResultCache, code_version, default_cache_dir, request_key
from repro.runner.engine import RunMetrics, RunRequest, RunResult, run_sweep
from repro.runner.registry import REGISTRY, ExperimentSpec, resolve_names

__all__ = [
    "REGISTRY",
    "ExperimentSpec",
    "ResultCache",
    "RunMetrics",
    "RunRequest",
    "RunResult",
    "cached_call",
    "code_version",
    "default_cache_dir",
    "request_key",
    "resolve_names",
    "run_sweep",
]


def cached_call(fn, *args, cache: ResultCache | None = None, **kwargs):
    """Memoize an arbitrary report-producing call through the result cache.

    For harness code (the benchmark suite, notebooks) that invokes
    experiment functions directly rather than via :func:`run_sweep`.
    The key covers ``fn``'s module-qualified name, its arguments and
    the current code version; the value must be an
    :class:`~repro.experiments.common.ExperimentReport` or a list of
    them — anything else is computed and returned uncached.
    """
    from repro.experiments.common import ExperimentReport

    cache = cache if cache is not None else ResultCache()
    label = f"{fn.__module__}.{getattr(fn, '__qualname__', repr(fn))}"
    overrides = {"args": repr(args), "kwargs": repr(sorted(kwargs.items()))}
    key = request_key(f"call:{label}", 0, "direct", overrides)
    entry = cache.load_entry(key)
    if entry is not None:
        reports, meta = entry
        return reports[0] if meta.get("shape") == "report" else reports
    result = fn(*args, **kwargs)
    if isinstance(result, ExperimentReport):
        cache.store(key, [result], {"call": label, "shape": "report", **overrides})
    elif isinstance(result, list) and result and all(
        isinstance(item, ExperimentReport) for item in result
    ):
        cache.store(key, result, {"call": label, "shape": "list", **overrides})
    return result
