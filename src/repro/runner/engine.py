"""Process-pool sweep engine: fan experiments out, cache what they return.

:func:`run_sweep` is the one entry point.  Given a list of
:class:`RunRequest` it

1. consults the on-disk :class:`~repro.runner.cache.ResultCache`
   (unless disabled) and serves hits without simulating anything;
2. fans the misses out over a ``ProcessPoolExecutor`` — whole
   experiments, or individual sweep shards when the registry spec
   exposes ``subtasks``/``merge`` hooks (Figures 2 and 3 ship one
   shard per plotted curve);
3. merges shard results *in declaration order*, so scheduling is
   deterministic: the reports are byte-identical whatever the
   completion order — ``--jobs 4`` output equals ``--jobs 1`` output;
4. falls back to in-process serial execution whenever a pool cannot
   be created or dies mid-flight (sandboxes without ``sem_open``,
   ``fork`` restrictions, OOM-killed workers) — the sweep always
   completes.

Results come back in request order together with a
:class:`RunMetrics` carrying per-experiment wall times, cache hit/miss
counters and worker utilization (busy time / (wall x jobs)).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.experiments.common import ExperimentReport, check_profile
from repro.runner.cache import ResultCache, request_key
from repro.runner.registry import REGISTRY, ExperimentSpec

#: Exceptions that mean "no process pool here" rather than "the
#: experiment is broken": missing /dev/shm semaphores, fork limits,
#: interpreter shutdown races.  Anything else propagates.
_POOL_ERRORS = (OSError, PermissionError, ImportError, NotImplementedError,
                RuntimeError, BrokenProcessPool)


@dataclass(frozen=True)
class RunRequest:
    """One cacheable unit of sweep work.

    ``overrides`` are extra keyword arguments forwarded to the
    experiment's ``run`` callable (stored as a sorted item tuple so
    the request is hashable); they participate in the cache key, so
    distinct configurations never collide.  Override values must be
    JSON-serializable — the key is a hash of their canonical JSON.
    """

    experiment: str
    generation: int = 1
    profile: str = "fast"
    overrides: tuple = ()

    @classmethod
    def make(cls, experiment: str, generation: int = 1, profile: str = "fast",
             overrides: dict | None = None) -> "RunRequest":
        """Build a request, normalizing ``overrides`` to sorted items."""
        check_profile(profile)
        return cls(experiment, generation, profile,
                   tuple(sorted((overrides or {}).items())))

    def key(self) -> str:
        """The request's content-addressed cache key (see cache.py)."""
        return request_key(self.experiment, self.generation, self.profile,
                           dict(self.overrides))

    def describe(self) -> dict:
        """JSON-friendly form, stored as cache-entry metadata."""
        return {
            "experiment": self.experiment,
            "generation": self.generation,
            "profile": self.profile,
            "overrides": dict(self.overrides),
        }


@dataclass
class RunResult:
    """Outcome of one request: its reports plus how they were obtained."""

    request: RunRequest
    reports: list[ExperimentReport]
    wall_time: float
    cached: bool
    key: str


@dataclass
class RunMetrics:
    """Aggregate accounting for one :func:`run_sweep` invocation."""

    jobs: int = 1
    wall_time: float = 0.0
    busy_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_fallback: bool = False

    def utilization(self) -> float:
        """Worker busy fraction: busy time / (wall time x jobs)."""
        if self.wall_time <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.wall_time * self.jobs))

    def summary(self) -> str:
        """One-line human summary (the CLI prints this after a sweep)."""
        parts = [
            f"{self.wall_time:.1f}s wall",
            f"jobs={self.jobs}",
            f"utilization={self.utilization():.0%}",
            f"cache: {self.cache_hits} hit{'s' if self.cache_hits != 1 else ''}"
            f" / {self.cache_misses} miss{'es' if self.cache_misses != 1 else ''}",
        ]
        if self.pool_fallback:
            parts.append("pool unavailable -> ran serially")
        return ", ".join(parts)


def _spec_for(request: RunRequest) -> ExperimentSpec:
    try:
        return REGISTRY[request.experiment]
    except KeyError:
        raise KeyError(f"unknown experiment {request.experiment!r}; "
                       f"known: {', '.join(REGISTRY)}") from None


def _execute(request: RunRequest) -> tuple[list[dict], float]:
    """Run one whole experiment (worker-process entry point).

    Returns ``(report dicts, wall seconds)``; dicts rather than
    dataclasses so the parent deserializes through the same
    ``ExperimentReport.from_dict`` path the cache uses.
    """
    spec = _spec_for(request)
    started = time.perf_counter()
    if request.overrides:
        reports = spec.run(request.generation, request.profile, **dict(request.overrides))
    else:
        reports = spec.run(request.generation, request.profile)
    wall = time.perf_counter() - started
    return [report.to_dict() for report in reports], wall


def _execute_subtask(experiment: str, index: int, generation: int, profile: str):
    """Run shard ``index`` of one experiment (worker-process entry point).

    Shards are re-derived from the registry inside the worker, so only
    ``(experiment name, index)`` crosses the process boundary.
    """
    spec = REGISTRY[experiment]
    tasks = spec.subtasks(generation, profile)
    started = time.perf_counter()
    result = tasks[index](generation, profile)
    return result, time.perf_counter() - started


def _finish(request: RunRequest, spec: ExperimentSpec, shard_results: list,
            busy: float) -> tuple[list[ExperimentReport], float]:
    """Merge shard results back into full reports."""
    reports = spec.merge(request.generation, request.profile, shard_results)
    return reports, busy


def _run_pooled(requests: list[RunRequest], jobs: int,
                outcomes: dict) -> None:
    """Fan ``requests`` out over a process pool, filling ``outcomes``.

    Experiments whose spec exposes sharding hooks (and that carry no
    overrides, which the shard signature cannot forward) are split one
    future per shard; everything else is one future per experiment.
    Raises one of ``_POOL_ERRORS`` if the pool cannot be used — the
    caller re-runs whatever is missing from ``outcomes`` in-process.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        plain: dict[RunRequest, object] = {}
        sharded: dict[RunRequest, list] = {}
        for request in requests:
            spec = _spec_for(request)
            if spec.subtasks is not None and spec.merge is not None and not request.overrides:
                count = len(spec.subtasks(request.generation, request.profile))
                sharded[request] = [
                    pool.submit(_execute_subtask, request.experiment, index,
                                request.generation, request.profile)
                    for index in range(count)
                ]
            else:
                plain[request] = pool.submit(_execute, request)
        for request, future in plain.items():
            dicts, wall = future.result()
            outcomes[request] = ([ExperimentReport.from_dict(d) for d in dicts], wall)
        for request, futures in sharded.items():
            results, busy = [], 0.0
            for future in futures:  # declaration order == merge order
                result, wall = future.result()
                results.append(result)
                busy += wall
            outcomes[request] = _finish(request, _spec_for(request), results, busy)


def run_sweep(
    requests: list[RunRequest],
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    progress: Callable[[RunResult], None] | None = None,
) -> tuple[list[RunResult], RunMetrics]:
    """Execute ``requests``, returning results in request order.

    ``cache=None`` disables caching entirely.  ``force=True`` drops
    any cached entry for each request before running, so everything is
    recomputed (and re-stored).  ``jobs`` caps the worker processes; 1
    means in-process serial execution with no pool at all.
    ``progress`` is invoked once per completed request, in request
    order, as results become available.

    Determinism: every experiment is a pure function of its request,
    and shard merges happen in declaration order, so the returned
    reports are identical for any ``jobs`` value.
    """
    metrics = RunMetrics(jobs=max(1, jobs))
    started = time.perf_counter()

    def emit(result: RunResult) -> None:
        if progress is not None:
            progress(result)

    results: dict[RunRequest, RunResult] = {}
    pending: list[RunRequest] = []
    for request in requests:
        key = request.key()
        if cache is not None and force:
            cache.invalidate(key)
        hit = cache.load(key) if cache is not None and not force else None
        if hit is not None:
            metrics.cache_hits += 1
            results[request] = RunResult(request, hit, 0.0, True, key)
            emit(results[request])
        else:
            metrics.cache_misses += 1
            pending.append(request)

    def finalize(request: RunRequest, reports: list[ExperimentReport], wall: float) -> None:
        key = request.key()
        if cache is not None:
            cache.store(key, reports, request.describe(), wall)
        metrics.busy_time += wall
        results[request] = RunResult(request, reports, wall, False, key)
        emit(results[request])

    outcomes: dict[RunRequest, tuple[list[ExperimentReport], float]] = {}
    if pending and metrics.jobs > 1:
        try:
            _run_pooled(pending, metrics.jobs, outcomes)
        except _POOL_ERRORS:
            metrics.pool_fallback = True
        for request in pending:
            if request in outcomes:
                reports, wall = outcomes[request]
                finalize(request, reports, wall)
    for request in pending:
        if request not in outcomes:  # jobs=1, or the pool died under us
            dicts, wall = _execute(request)
            finalize(request, [ExperimentReport.from_dict(d) for d in dicts], wall)

    metrics.wall_time = time.perf_counter() - started
    return [results[request] for request in requests], metrics
