"""Process-pool sweep engine: fan experiments out, cache what they return.

:func:`run_sweep` is the one entry point.  Given a list of
:class:`RunRequest` it

1. consults the on-disk :class:`~repro.runner.cache.ResultCache`
   (unless disabled) and serves hits without simulating anything;
2. fans the misses out over a ``ProcessPoolExecutor`` — whole
   experiments, or individual sweep shards when the registry spec
   exposes ``subtasks``/``merge`` hooks (Figures 2 and 3 ship one
   shard per plotted curve);
3. merges shard results *in declaration order*, so scheduling is
   deterministic: the reports are byte-identical whatever the
   completion order — ``--jobs 4`` output equals ``--jobs 1`` output;
4. falls back to in-process serial execution whenever a pool cannot
   be created or dies mid-flight (sandboxes without ``sem_open``,
   ``fork`` restrictions, OOM-killed workers) — the sweep always
   completes.

The engine degrades rather than aborts.  Each work unit (a whole
experiment or one shard) gets a per-unit timeout (``shard_timeout``)
and a bounded retry budget with exponential backoff (``max_retries``,
``backoff``).  A hung or dead worker poisons the current pool: its
processes are terminated, the pool is abandoned without waiting, and a
fresh pool re-runs whatever had not finished.  A unit that keeps
failing is *quarantined* — the sweep completes with partial results,
the failing request's :class:`RunResult` carries ``error``, and
:class:`RunMetrics.failed_shards` records every quarantined unit so a
degraded sweep is explicit, machine-readable, and never silently
cached.

Results come back in request order together with a
:class:`RunMetrics` carrying per-experiment wall times, cache hit/miss
counters and worker utilization (busy time / (wall x jobs)).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.common import ExperimentReport, check_profile
from repro.runner.cache import ResultCache, request_key
from repro.runner.registry import REGISTRY, ExperimentSpec
from repro.stats.latency import LatencyRecorder

#: Exceptions that mean "no process pool here" rather than "the
#: experiment is broken": missing /dev/shm semaphores, fork limits,
#: interpreter shutdown races.  Anything else propagates.
_POOL_ERRORS = (OSError, PermissionError, ImportError, NotImplementedError,
                RuntimeError, BrokenProcessPool)


@dataclass(frozen=True)
class RunRequest:
    """One cacheable unit of sweep work.

    ``overrides`` are extra keyword arguments forwarded to the
    experiment's ``run`` callable (stored as a sorted item tuple so
    the request is hashable); they participate in the cache key, so
    distinct configurations never collide.  Override values must be
    JSON-serializable — the key is a hash of their canonical JSON.
    """

    experiment: str
    generation: int = 1
    profile: str = "fast"
    overrides: tuple = ()

    @classmethod
    def make(cls, experiment: str, generation: int = 1, profile: str = "fast",
             overrides: dict | None = None) -> "RunRequest":
        """Build a request, normalizing ``overrides`` to sorted items."""
        check_profile(profile)
        return cls(experiment, generation, profile,
                   tuple(sorted((overrides or {}).items())))

    def key(self) -> str:
        """The request's content-addressed cache key (see cache.py)."""
        return request_key(self.experiment, self.generation, self.profile,
                           dict(self.overrides))

    def describe(self) -> dict:
        """JSON-friendly form, stored as cache-entry metadata."""
        return {
            "experiment": self.experiment,
            "generation": self.generation,
            "profile": self.profile,
            "overrides": dict(self.overrides),
        }


@dataclass
class RunResult:
    """Outcome of one request: its reports plus how they were obtained.

    ``error`` is None for a successful run; on a quarantined failure
    the reports are empty, nothing is cached, and ``error`` carries the
    human-readable reason (also recorded in
    :class:`RunMetrics.failed_shards`).
    """

    request: RunRequest
    reports: list[ExperimentReport]
    wall_time: float
    cached: bool
    key: str
    error: str | None = None


@dataclass
class RunMetrics:
    """Aggregate accounting for one :func:`run_sweep` invocation."""

    jobs: int = 1
    wall_time: float = 0.0
    busy_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_fallback: bool = False
    #: Re-executions of individual work units after a failure/timeout.
    retries: int = 0
    #: Units that exhausted their retry budget, one dict each:
    #: {"experiment", "shard" (int | None), "attempts", "reason"}.
    failed_shards: list = field(default_factory=list)
    #: Wall-time distribution over executed work units (whole
    #: experiments, or shards merged via LatencyRecorder.merge), in
    #: seconds.  Cache hits cost no execution and are not recorded.
    unit_seconds: LatencyRecorder = field(
        default_factory=LatencyRecorder, compare=False, repr=False
    )
    #: Telemetry time-series sampled during the sweep (the ``to_obj()``
    #: form of :class:`repro.trace.sampler.TimeSeries`); only set when
    #: an ambient trace session was active and sampling.
    timeseries: dict | None = None

    def utilization(self) -> float:
        """Worker busy fraction: busy time / (wall time x jobs)."""
        if self.wall_time <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.wall_time * self.jobs))

    def summary(self) -> str:
        """One-line human summary (the CLI prints this after a sweep)."""
        parts = [
            f"{self.wall_time:.1f}s wall",
            f"jobs={self.jobs}",
            f"utilization={self.utilization():.0%}",
            f"cache: {self.cache_hits} hit{'s' if self.cache_hits != 1 else ''}"
            f" / {self.cache_misses} miss{'es' if self.cache_misses != 1 else ''}",
        ]
        if self.retries:
            parts.append(f"{self.retries} retr{'ies' if self.retries != 1 else 'y'}")
        if self.failed_shards:
            parts.append(
                f"DEGRADED: {len(self.failed_shards)} quarantined "
                f"shard{'s' if len(self.failed_shards) != 1 else ''}"
            )
        if self.unit_seconds.count >= 2:
            parts.append(
                f"unit p50/p95: {self.unit_seconds.p50:.1f}s"
                f"/{self.unit_seconds.p95:.1f}s"
            )
        if self.pool_fallback:
            parts.append("pool unavailable -> ran serially")
        return ", ".join(parts)


def _spec_for(request: RunRequest) -> ExperimentSpec:
    try:
        return REGISTRY[request.experiment]
    except KeyError:
        raise KeyError(f"unknown experiment {request.experiment!r}; "
                       f"known: {', '.join(REGISTRY)}") from None


def _execute(request: RunRequest) -> tuple[list[dict], float]:
    """Run one whole experiment (worker-process entry point).

    Returns ``(report dicts, wall seconds)``; dicts rather than
    dataclasses so the parent deserializes through the same
    ``ExperimentReport.from_dict`` path the cache uses.
    """
    spec = _spec_for(request)
    started = time.perf_counter()
    if request.overrides:
        reports = spec.run(request.generation, request.profile, **dict(request.overrides))
    else:
        reports = spec.run(request.generation, request.profile)
    wall = time.perf_counter() - started
    return [report.to_dict() for report in reports], wall


def _execute_subtask(experiment: str, index: int, generation: int, profile: str):
    """Run shard ``index`` of one experiment (worker-process entry point).

    Shards are re-derived from the registry inside the worker, so only
    ``(experiment name, index)`` crosses the process boundary.
    """
    spec = REGISTRY[experiment]
    tasks = spec.subtasks(generation, profile)
    started = time.perf_counter()
    result = tasks[index](generation, profile)
    return result, time.perf_counter() - started


def _finish(request: RunRequest, spec: ExperimentSpec, shard_results: list,
            busy: float) -> tuple[list[ExperimentReport], float]:
    """Merge shard results back into full reports."""
    reports = spec.merge(request.generation, request.profile, shard_results)
    return reports, busy


@dataclass
class _Unit:
    """One schedulable work unit: a whole experiment or one shard."""

    request: RunRequest
    #: Shard index, or None for an unsharded (whole-experiment) unit.
    shard: int | None
    attempts: int = 0
    done: bool = False
    #: The worker's return value once done.
    payload: object = None
    #: Set when the unit is quarantined (retry budget exhausted).
    error: str | None = None

    @property
    def active(self) -> bool:
        """True while the unit still needs (re-)execution."""
        return not self.done and self.error is None

    def describe_failure(self) -> dict:
        """The RunMetrics.failed_shards record for this unit."""
        return {
            "experiment": self.request.experiment,
            "shard": self.shard,
            "attempts": self.attempts,
            "reason": self.error,
        }


def _submit(pool: ProcessPoolExecutor, unit: _Unit):
    """Submit one unit to the pool."""
    if unit.shard is None:
        return pool.submit(_execute, unit.request)
    return pool.submit(
        _execute_subtask, unit.request.experiment, unit.shard,
        unit.request.generation, unit.request.profile,
    )


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool that holds hung or dead workers, without waiting.

    ``shutdown(wait=True)`` would block on the hung worker forever, so
    the workers are terminated first and the executor is told not to
    wait.  The abandoned pool's resources are reclaimed by the OS.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _harvest(unit: _Unit, future) -> None:
    """Salvage a completed future's result while abandoning a wave."""
    if future.done() and not future.cancelled():
        try:
            unit.payload = future.result(timeout=0)
            unit.done = True
        except Exception:
            pass


def _fail(unit: _Unit, reason: str, metrics: RunMetrics,
          max_retries: int, backoff: float) -> None:
    """Count one failed attempt; quarantine or schedule a retry."""
    unit.attempts += 1
    if unit.attempts > max_retries:
        unit.error = reason
        metrics.failed_shards.append(unit.describe_failure())
    else:
        metrics.retries += 1
        time.sleep(backoff * (2 ** (unit.attempts - 1)))


def _run_pooled(requests: list[RunRequest], jobs: int, outcomes: dict,
                failures: dict, metrics: RunMetrics,
                shard_timeout: float | None, max_retries: int,
                backoff: float) -> None:
    """Fan ``requests`` out over process pools, filling ``outcomes``.

    Experiments whose spec exposes sharding hooks (and that carry no
    overrides, which the shard signature cannot forward) are split one
    unit per shard; everything else is one unit per experiment.  Units
    run in waves: each wave owns one pool; a timeout or worker death
    poisons the wave (the pool is abandoned and survivors re-run in the
    next wave), while an exception from the experiment itself costs
    only that unit an attempt.  Quarantined units land in ``failures``
    keyed by request.  Raises one of ``_POOL_ERRORS`` only when no
    pool can be created or pools die without making any progress — the
    caller then re-runs whatever is missing in-process.
    """
    units: list[_Unit] = []
    for request in requests:
        spec = _spec_for(request)
        if spec.subtasks is not None and spec.merge is not None and not request.overrides:
            count = len(spec.subtasks(request.generation, request.profile))
            units.extend(_Unit(request, index) for index in range(count))
        else:
            units.append(_Unit(request, None))

    while any(unit.active for unit in units):
        wave = [unit for unit in units if unit.active]
        progressed = False
        poisoned = False
        pool = ProcessPoolExecutor(max_workers=jobs)
        try:
            submitted: list[tuple[_Unit, object]] = []
            try:
                submitted = [(unit, _submit(pool, unit)) for unit in wave]
            except BrokenProcessPool:
                poisoned = True
            for index, (unit, future) in enumerate(submitted):
                if poisoned:
                    # The pool is gone; salvage anything that finished.
                    _harvest(unit, future)
                    progressed = progressed or unit.done
                    continue
                try:
                    unit.payload = future.result(timeout=shard_timeout)
                    unit.done = True
                    progressed = True
                except FuturesTimeout:
                    _fail(unit,
                          f"no result within shard_timeout={shard_timeout}s "
                          f"(attempt {unit.attempts + 1})",
                          metrics, max_retries, backoff)
                    progressed = True
                    poisoned = True  # a hung worker can only be killed
                except BrokenProcessPool as error:
                    _fail(unit, f"worker process died: {error}",
                          metrics, max_retries, backoff)
                    progressed = True
                    poisoned = True
                except Exception as error:  # the experiment itself raised
                    _fail(unit, f"{type(error).__name__}: {error}",
                          metrics, max_retries, backoff)
                    progressed = True
        finally:
            if poisoned:
                _abandon_pool(pool)
            else:
                pool.shutdown(wait=True)
        if not progressed:
            # Pools die before accepting work: no way forward here.
            raise BrokenProcessPool("process pool kept dying without progress")

    for request in requests:
        request_units = [unit for unit in units if unit.request == request]
        failed = [unit for unit in request_units if unit.error is not None]
        if failed:
            failures[request] = "; ".join(
                (f"shard {unit.shard}: " if unit.shard is not None else "")
                + f"{unit.error} after {unit.attempts} attempt"
                + ("s" if unit.attempts != 1 else "")
                for unit in failed
            )
            continue
        if request_units[0].shard is None:
            dicts, wall = request_units[0].payload
            metrics.unit_seconds.record(wall)
            outcomes[request] = ([ExperimentReport.from_dict(d) for d in dicts], wall)
        else:
            results, busy = [], 0.0
            shard_seconds = LatencyRecorder()
            for unit in request_units:  # declaration order == merge order
                result, wall = unit.payload
                results.append(result)
                busy += wall
                shard_seconds.record(wall)
            metrics.unit_seconds.merge(shard_seconds)
            outcomes[request] = _finish(request, _spec_for(request), results, busy)


def run_sweep(
    requests: list[RunRequest],
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    progress: Callable[[RunResult], None] | None = None,
    shard_timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.25,
) -> tuple[list[RunResult], RunMetrics]:
    """Execute ``requests``, returning results in request order.

    ``cache=None`` disables caching entirely.  ``force=True`` drops
    any cached entry for each request before running, so everything is
    recomputed (and re-stored).  ``jobs`` caps the worker processes; 1
    means in-process serial execution with no pool at all.
    ``progress`` is invoked once per completed request, in request
    order, as results become available.

    Hardening knobs: ``shard_timeout`` (seconds a pooled unit may run
    before its worker is presumed hung and killed; None = no limit —
    it needs a pool, so it has no effect at ``jobs=1``),
    ``max_retries`` (re-executions granted to a failing unit before it
    is quarantined), and ``backoff`` (base of the exponential sleep
    between retries).  A sweep never aborts on a failing experiment:
    the affected request comes back as a ``RunResult`` with empty
    reports and ``error`` set, the rest of the sweep completes, and
    ``metrics.failed_shards`` itemizes the damage.  Failed results are
    never written to the cache.  Unknown experiment names still raise
    ``KeyError`` immediately — a typo is a usage error, not degraded
    execution.

    Determinism: every experiment is a pure function of its request,
    and shard merges happen in declaration order, so the returned
    reports are identical for any ``jobs`` value.
    """
    for request in requests:
        _spec_for(request)  # surface unknown names before any work runs
    metrics = RunMetrics(jobs=max(1, jobs))
    started = time.perf_counter()

    def emit(result: RunResult) -> None:
        if progress is not None:
            progress(result)

    results: dict[RunRequest, RunResult] = {}
    pending: list[RunRequest] = []
    for request in requests:
        key = request.key()
        if cache is not None and force:
            cache.invalidate(key)
        hit = cache.load(key) if cache is not None and not force else None
        if hit is not None:
            metrics.cache_hits += 1
            results[request] = RunResult(request, hit, 0.0, True, key)
            emit(results[request])
        else:
            metrics.cache_misses += 1
            pending.append(request)

    def finalize(request: RunRequest, reports: list[ExperimentReport], wall: float) -> None:
        key = request.key()
        if cache is not None:
            cache.store(key, reports, request.describe(), wall)
        metrics.busy_time += wall
        results[request] = RunResult(request, reports, wall, False, key)
        emit(results[request])

    def finalize_failed(request: RunRequest, reason: str) -> None:
        results[request] = RunResult(request, [], 0.0, False, request.key(), error=reason)
        emit(results[request])

    outcomes: dict[RunRequest, tuple[list[ExperimentReport], float]] = {}
    failures: dict[RunRequest, str] = {}
    if pending and metrics.jobs > 1:
        try:
            _run_pooled(pending, metrics.jobs, outcomes, failures, metrics,
                        shard_timeout, max_retries, backoff)
        except _POOL_ERRORS:
            metrics.pool_fallback = True
        for request in pending:
            if request in outcomes:
                reports, wall = outcomes[request]
                finalize(request, reports, wall)
            elif request in failures:
                finalize_failed(request, failures[request])
    for request in pending:
        if request in outcomes or request in failures:
            continue  # jobs=1, or the pool died under us: run in-process
        attempts = 0
        while True:
            try:
                first_sampler = _sampler_mark()
                dicts, wall = _execute(request)
                metrics.unit_seconds.record(wall)
                reports = [ExperimentReport.from_dict(d) for d in dicts]
                finalize(request, reports, wall)
                # Post-finalize, so the cache keeps the untraced form.
                _attach_timeseries(reports, first_sampler)
                break
            except Exception as error:
                attempts += 1
                if attempts > max_retries:
                    reason = f"{type(error).__name__}: {error}"
                    metrics.failed_shards.append({
                        "experiment": request.experiment, "shard": None,
                        "attempts": attempts, "reason": reason,
                    })
                    finalize_failed(request, f"{reason} after {attempts} attempt"
                                    + ("s" if attempts != 1 else ""))
                    break
                metrics.retries += 1
                time.sleep(backoff * (2 ** (attempts - 1)))

    session = _active_trace_session()
    if session is not None and session.samplers:
        metrics.timeseries = session.timeseries().to_obj()
    metrics.wall_time = time.perf_counter() - started
    return [results[request] for request in requests], metrics


def _active_trace_session():
    """The ambient trace session, without importing repro.trace eagerly."""
    import sys

    module = sys.modules.get("repro.trace.session")
    return module.active_session() if module is not None else None


def _sampler_mark() -> int:
    """How many samplers the ambient session holds right now.

    Taken before an in-process execution; samplers appended past the
    mark belong to machines that execution built.
    """
    session = _active_trace_session()
    return len(session.samplers) if session is not None else 0


def _attach_timeseries(reports: list[ExperimentReport], first_sampler: int) -> None:
    """Attach one request's sampled rows to its first report.

    Only does anything when an ambient trace session sampled during the
    request (serial in-process execution — pool workers build their
    machines in other processes, far from this session).
    """
    session = _active_trace_session()
    if session is None or not reports:
        return
    from repro.trace.sampler import TimeSeries

    merged = TimeSeries()
    for sampler in session.samplers[first_sampler:]:
        merged.extend(sampler.series)
    if merged.rows:
        reports[0].timeseries = merged.to_obj()
