"""The experiment registry: every paper figure/table as a schedulable spec.

This module is the single registration site for experiments.  Each
entry is an :class:`ExperimentSpec` — a picklable, module-level
``run`` callable with the uniform signature ``(generation, profile) ->
list[ExperimentReport]`` plus optional *sharding* hooks that expose
per-sweep-point work units so the process-pool engine
(:mod:`repro.runner.engine`) can fan a single experiment out across
workers.

Everything here must stay importable by worker processes: specs hold
references to module-level functions only (``functools.partial`` over
them is fine), never lambdas or closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from repro.experiments import ablations, bandwidth, fig02, fig03, fig04, fig06, fig07, fig08
from repro.experiments import fig10, fig12, fig13, fig14, interleaving, lock_handover, sec33, table1
from repro.experiments.common import ExperimentReport
from repro.faults.experiment import run_crashtest


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment.

    ``run(generation, profile)`` returns the experiment's reports.
    When ``subtasks``/``merge`` are set, the engine may instead call
    each subtask (same ``(generation, profile)`` signature) in a
    separate worker and recombine the partial results with
    ``merge(generation, profile, results)`` — results are passed in
    declaration order, so merging is deterministic regardless of
    completion order.
    """

    name: str
    title: str
    run: Callable[[int, str], list[ExperimentReport]]
    subtasks: Callable[[int, str], list[Callable]] | None = None
    merge: Callable[[int, str, list], list[ExperimentReport]] | None = None


def _as_reports(result) -> list[ExperimentReport]:
    """Normalize a runner return value to a list of reports."""
    if isinstance(result, ExperimentReport):
        return [result]
    return list(result)


def _run_fig02(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 2 (read amplification) as a report list."""
    return [fig02.run(generation, profile)]


def _fig02_subtasks(generation: int, profile: str) -> list[Callable]:
    """One shard per CpX curve of Figure 2."""
    return [partial(fig02.run_series, cpx=cpx) for cpx in fig02.SERIES_CPX]


def _fig02_merge(generation: int, profile: str, results: list) -> list[ExperimentReport]:
    """Recombine Figure 2 shards into the full report."""
    return [fig02.merge_series(generation, profile, results)]


def _run_fig03(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 3 (write amplification) as a report list."""
    return [fig03.run(generation, profile)]


def _fig03_subtasks(generation: int, profile: str) -> list[Callable]:
    """One shard per write-fraction curve of Figure 3."""
    return [partial(fig03.run_series, written=written) for written in fig03.SERIES_WRITTEN]


def _fig03_merge(generation: int, profile: str, results: list) -> list[ExperimentReport]:
    """Recombine Figure 3 shards into the full report."""
    return [fig03.merge_series(generation, profile, results)]


def _run_fig04(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 4 (write-buffer hit ratio; generation-independent)."""
    return [fig04.run(profile)]


def _run_sec33(generation: int, profile: str) -> list[ExperimentReport]:
    """Section 3.3 buffer-separation probes as a report."""
    return [sec33.as_report(sec33.run(generation, profile))]


def _run_fig06(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 6 (prefetching into on-DIMM buffers)."""
    return _as_reports(fig06.run(generation, profile))


def _run_fig07(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 7 (read-after-persist latency)."""
    return _as_reports(fig07.run(generation, profile))


def _run_fig08(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 8 (latency across working-set sizes)."""
    return _as_reports(fig08.run(generation, profile))


def _run_table1(generation: int, profile: str) -> list[ExperimentReport]:
    """Table 1 (CCEH insertion breakdown) as a report."""
    return [table1.as_report(table1.run(generation, profile), generation)]


def _run_fig10(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 10 (CCEH helper-thread prefetching)."""
    return _as_reports(fig10.run(generation, profile))


def _run_fig12(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 12 (B+-tree in-place vs redo logging)."""
    return [fig12.run(generation, profile)]


def _run_fig13(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 13 (access-redirection read ratios)."""
    return [fig13.run(generation, profile)]


def _run_fig14(generation: int, profile: str) -> list[ExperimentReport]:
    """Figure 14 (redirection thread-scaling tradeoff)."""
    return [fig14.run(generation, profile)]


def _run_ablations(generation: int, profile: str) -> list[ExperimentReport]:
    """Design-choice ablations (profile/generation independent)."""
    return _as_reports(ablations.run_all())


def _run_bandwidth(generation: int, profile: str) -> list[ExperimentReport]:
    """§2.2 device bandwidth characterization."""
    return [bandwidth.run(generation, profile)]


def _run_lock(generation: int, profile: str) -> list[ExperimentReport]:
    """§3.5 persistent lock handover latency."""
    return [lock_handover.run(profile)]


def _run_interleaving(generation: int, profile: str) -> list[ExperimentReport]:
    """§2.4 one vs six interleaved DIMMs."""
    return [interleaving.run(generation, profile)]


#: name -> spec, in the paper's presentation order.
REGISTRY: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec("fig2", "Figure 2 — read amplification (read buffer)",
                       _run_fig02, _fig02_subtasks, _fig02_merge),
        ExperimentSpec("fig3", "Figure 3 — write amplification (write buffer)",
                       _run_fig03, _fig03_subtasks, _fig03_merge),
        ExperimentSpec("fig4", "Figure 4 — write buffer hit ratio", _run_fig04),
        ExperimentSpec("sec33", "Section 3.3 — buffer separation & transition", _run_sec33),
        ExperimentSpec("fig6", "Figure 6 — prefetching into on-DIMM buffers", _run_fig06),
        ExperimentSpec("fig7", "Figure 7 — read-after-persist latency", _run_fig07),
        ExperimentSpec("fig8", "Figure 8 — latency across working-set sizes", _run_fig08),
        ExperimentSpec("table1", "Table 1 — CCEH insertion time breakdown", _run_table1),
        ExperimentSpec("fig10", "Figure 10 — CCEH helper-thread prefetching", _run_fig10),
        ExperimentSpec("fig12", "Figure 12 — B+-tree in-place vs redo logging", _run_fig12),
        ExperimentSpec("fig13", "Figure 13 — access redirection read ratios", _run_fig13),
        ExperimentSpec("fig14", "Figure 14 — redirection thread-scaling tradeoff", _run_fig14),
        ExperimentSpec("ablations", "Ablations of inferred design choices", _run_ablations),
        ExperimentSpec("bandwidth", "§2.2 — device bandwidth characterization", _run_bandwidth),
        ExperimentSpec("lock", "§3.5 — persistent lock handover latency", _run_lock),
        ExperimentSpec("interleave", "§2.4 — 1 vs 6 interleaved DIMMs", _run_interleaving),
        ExperimentSpec("crash-linkedlist", "Crash campaign — persistent linked list",
                       partial(run_crashtest, datastore="linkedlist")),
        ExperimentSpec("crash-btree", "Crash campaign — B+-tree redo logging",
                       partial(run_crashtest, datastore="btree")),
        ExperimentSpec("crash-cceh", "Crash campaign — CCEH hash table",
                       partial(run_crashtest, datastore="cceh")),
    )
}


def resolve_names(names: list[str]) -> list[str]:
    """Expand ``all`` and validate experiment names against the registry.

    Raises ``KeyError`` listing the unknown names, so callers can turn
    it into a friendly CLI error.
    """
    expanded = list(REGISTRY) if "all" in names else list(names)
    unknown = [name for name in expanded if name not in REGISTRY]
    if unknown:
        raise KeyError(", ".join(unknown))
    return expanded
