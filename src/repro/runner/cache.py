"""Content-addressed on-disk cache for experiment results.

Every sweep in :mod:`repro.experiments` is a pure function of
``(experiment, generation, profile, config overrides)`` plus the
simulator source itself, so its reports can be cached on disk and
replayed instead of re-simulated.  The cache key is a SHA-256 over the
canonical JSON encoding of exactly those inputs plus
:func:`code_version` — a digest of every ``repro`` source file — so
any code change, however small, invalidates every cached result
without ever serving a stale one.

Layout on disk (human-inspectable, one JSON file per entry)::

    <root>/<key[:2]>/<key>.json
        {"key": ..., "request": {...}, "code_version": ...,
         "created": ..., "wall_time": ..., "reports": [...]}

The root defaults to ``~/.cache/repro`` and is overridden by the
``REPRO_CACHE_DIR`` environment variable or the CLI ``--cache-dir``
flag.  Entries are written atomically (temp file + rename), so a
killed run never leaves a truncated entry behind; unreadable entries
are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path

from repro.experiments.common import ExperimentReport

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Part of every cache key: editing any module under ``src/repro``
    changes this digest and therefore invalidates all cached results.
    Set ``REPRO_CODE_VERSION`` to pin an explicit version string
    instead (useful in tests and hermetic CI).
    """
    global _CODE_VERSION
    pinned = os.environ.get("REPRO_CODE_VERSION")
    if pinned:
        return pinned
    if _CODE_VERSION is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def request_key(
    experiment: str,
    generation: int,
    profile: str,
    overrides: dict | None = None,
    version: str | None = None,
) -> str:
    """Stable cache key for one experiment configuration.

    SHA-256 over the canonical (sorted-keys, no-whitespace) JSON of
    ``(experiment, generation, profile, overrides, code version)``.
    Two processes — or two runs weeks apart — computing the key for
    the same configuration on the same source tree get the same hex
    digest.
    """
    payload = {
        "experiment": experiment,
        "generation": generation,
        "profile": profile,
        "overrides": dict(sorted((overrides or {}).items())),
        "code_version": version if version is not None else code_version(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """On-disk result store with hit/miss accounting.

    Thread- and process-safe for the access pattern the runner uses
    (atomic writes, reads that tolerate missing files); ``hits`` and
    ``misses`` count this instance's lookups only.
    """

    def __init__(self, root: Path | str | None = None):
        """Open (and lazily create) the cache rooted at ``root``.

        ``root=None`` resolves via :func:`default_cache_dir`.
        """
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.write_errors = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> list[ExperimentReport] | None:
        """Reports cached under ``key``, or ``None`` on a miss.

        Corrupt or unreadable entries count as misses (and are left in
        place for post-mortem inspection; a subsequent store simply
        overwrites them).
        """
        entry = self.load_entry(key)
        return None if entry is None else entry[0]

    def load_entry(self, key: str) -> tuple[list[ExperimentReport], dict] | None:
        """Like :meth:`load` but also returns the entry's request metadata."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            reports = [ExperimentReport.from_dict(entry) for entry in payload["reports"]]
            request = dict(payload.get("request") or {})
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return reports, request

    def store(
        self,
        key: str,
        reports: list[ExperimentReport],
        request: dict | None = None,
        wall_time: float | None = None,
    ) -> Path | None:
        """Atomically persist ``reports`` under ``key``; returns the path.

        ``request`` and ``wall_time`` are stored as metadata so a
        human browsing the cache can tell which configuration produced
        an entry and what it originally cost to compute.

        An unwritable cache root (read-only filesystem, bad
        ``--cache-dir``) must never lose a computed result, so write
        failures degrade to uncached operation: the entry is skipped,
        ``write_errors`` is incremented, and ``None`` is returned.  The
        first failure per cache instance emits a ``RuntimeWarning`` so
        a silently-uncached sweep is visible without spamming one
        warning per experiment.
        """
        path = self._path(key)
        payload = {
            "key": key,
            "request": request or {},
            "code_version": code_version(),
            "created": time.time(),
            "wall_time": wall_time,
            "reports": [report.to_dict() for report in reports],
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, indent=1))
            tmp.replace(path)
        except OSError as error:
            self.write_errors += 1
            if self.write_errors == 1:
                warnings.warn(
                    f"result cache at {self.root} is unwritable "
                    f"({error}); continuing without caching",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one entry (used by ``--force``); True if it existed."""
        path = self._path(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every entry under the cache root; returns the count."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
