"""The simulated machine: iMC channels, regions, cores, presets."""

from repro.system.imc import IMCChannel, WpqGrant
from repro.system.machine import (
    DRAM_BASE,
    PM_BASE,
    REMOTE_DRAM_BASE,
    REMOTE_PM_BASE,
    Core,
    CoreTiming,
    Machine,
    MachineConfig,
    RegionSpec,
)
from repro.system.presets import g1_machine, g2_machine, machine_for

__all__ = [
    "IMCChannel",
    "WpqGrant",
    "DRAM_BASE",
    "PM_BASE",
    "REMOTE_DRAM_BASE",
    "REMOTE_PM_BASE",
    "Core",
    "CoreTiming",
    "Machine",
    "MachineConfig",
    "RegionSpec",
    "g1_machine",
    "g2_machine",
    "machine_for",
]
