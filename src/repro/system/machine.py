"""The full simulated machine and its CPU cores.

A :class:`Machine` wires together one cache hierarchy + prefetch
engine (the socket), iMC channels, and memory regions (local/remote
PM and DRAM).  :class:`Core` is the programmer-facing handle: it
executes the x86 persistence primitives the paper's benchmarks use —
``load``, ``store``, ``nt_store``, ``clwb``, ``clflush(opt)``,
``sfence``, ``mfence``, ``stream_load`` — against the machine,
advancing its own local cycle clock.

Timing semantics worth calling out (each maps to a paper finding):

* Stores retire into a store buffer: a store miss issues its RFO read
  in the background and does not stall the core.  This is why write
  latency is flat across working-set sizes (Figure 8) — persists are
  gated by WPQ acceptance, not media writes.
* A fence waits only for WPQ *acceptance* of prior flushes; the
  persist completes on the DIMM much later.  A load that cannot be
  served by the caches and targets a line with an in-flight persist
  stalls until completion — read-after-persist (Figure 7).
* Loads are not ordered by ``sfence``: a load targeting one of the
  last few flushed lines may overtake the flush and hit the (pre-
  invalidation) cached copy; ``mfence`` closes that window.
* On G1, ``clwb`` invalidates the flushed line; on G2 it retains it
  (clean), paying a coherence-maintenance cost instead.
"""

from __future__ import annotations

import weakref
import zlib
from collections import deque
from dataclasses import dataclass, field, replace

from repro.cache.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.cache.prefetch import PrefetchEngine, PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, cacheline_base, cacheline_index
from repro.common.errors import AddressError, ConfigError
from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.dimm.config import DramDimmConfig, OptaneDimmConfig
from repro.dimm.dram import DramDimm
from repro.dimm.optane import OptaneDimm
from repro.sim.clock import Cycles
from repro.stats.counters import TelemetryCounters, TelemetryRegistry
from repro.system.imc import IMCChannel


@dataclass(frozen=True)
class CoreTiming:
    """Instruction-issue costs and ordering-window parameters."""

    store_buffer_latency: float = 14.0
    clwb_issue: float = 8.0
    clflush_issue: float = 12.0
    ntstore_issue: float = 10.0
    sfence_cost: float = 20.0
    mfence_cost: float = 30.0
    stream_load_issue: float = 10.0
    #: Extra clwb cost on G2 (cacheline retained ⇒ coherence upkeep).
    clwb_coherence_cost: float = 0.0
    #: How many recent flushes a load may overtake under sfence ordering.
    sfence_reorder_window: int = 2
    #: Fraction of a RAP stall hidden when only sfence ordering applies.
    sfence_rap_overlap: float = 0.25


@dataclass(frozen=True)
class RegionSpec:
    """One memory region: an address range backed by a DIMM group."""

    name: str
    kind: str  # "pm" or "dram"
    base: int
    size: int
    dimms: int = 1
    interleave_bytes: int = 4096
    remote: bool = False
    #: NUMA adders applied when ``remote`` is True.
    remote_read_adder: float = 0.0
    remote_write_adder: float = 0.0
    remote_persist_adder: float = 0.0

    def validate(self) -> None:
        """Raise ConfigError on an invalid region spec."""
        if self.kind not in ("pm", "dram"):
            raise ConfigError(f"region {self.name}: unknown kind {self.kind!r}")
        if self.size <= 0 or self.dimms <= 0 or self.interleave_bytes <= 0:
            raise ConfigError(f"region {self.name}: sizes must be positive")

    @property
    def end(self) -> int:
        """One past the region's last byte."""
        return self.base + self.size


#: Default region bases, far apart so regions can grow in tests.
PM_BASE = 1 << 40
DRAM_BASE = 1 << 30
REMOTE_PM_BASE = 1 << 44
REMOTE_DRAM_BASE = 1 << 45
#: Default NUMA adders (cycles), calibrated to Figure 7's remote curves.
REMOTE_PM_READ_ADDER = 500.0
REMOTE_PM_PERSIST_ADDER = 700.0
REMOTE_DRAM_READ_ADDER = 130.0
REMOTE_DRAM_PERSIST_ADDER = 150.0


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a simulated testbed."""

    generation: int = 1
    caches: CacheHierarchyConfig = field(default_factory=CacheHierarchyConfig)
    prefetchers: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    optane: OptaneDimmConfig = field(default_factory=OptaneDimmConfig)
    dram: DramDimmConfig = field(default_factory=DramDimmConfig)
    timing: CoreTiming = field(default_factory=CoreTiming)
    regions: tuple[RegionSpec, ...] = ()
    wpq_slots: int = 16
    #: Cycles for a flush/nt-store to become globally visible (what a
    #: fence waits for): the DDR-T transfer + WPQ insertion.  Real
    #: persist barriers on Optane cost a few hundred cycles even with
    #: an idle queue.
    wpq_accept_latency: float = 200.0
    #: G2 retains flushed cachelines (eliminating clwb RAP, §3.5).
    clwb_retains: bool = False
    #: Extended ADR (paper §6): the CPU caches join the persistence
    #: domain, so no flushes are needed for durability and a power
    #: failure flushes dirty cachelines instead of losing them.  The
    #: paper's testbeds run with eADR *disabled*; this flag exists to
    #: explore the platform the paper could not evaluate.
    eadr: bool = False
    #: CPU clock, used only to convert cycles to wall-clock figures
    #: (Mops/s, GB/s) in experiment reports.
    frequency_ghz: float = 2.1
    seed: int = DEFAULT_SEED

    def validate(self) -> None:
        """Validate the whole machine configuration."""
        if self.generation not in (1, 2):
            raise ConfigError(f"unknown generation {self.generation}")
        self.caches.validate()
        self.optane.validate()
        self.dram.validate()
        for region in self.regions:
            region.validate()
        ordered = sorted(self.regions, key=lambda r: r.base)
        for left, right in zip(ordered, ordered[1:]):
            if left.end > right.base:
                raise ConfigError(f"regions {left.name} and {right.name} overlap")


class _Region:
    """Instantiated region: spec + its iMC channels."""

    def __init__(self, spec: RegionSpec, channels: list[IMCChannel]) -> None:
        self.spec = spec
        self.channels = channels

    def channel_for(self, addr: int) -> IMCChannel:
        """Route ``addr`` to its interleaved iMC channel."""
        index = ((addr - self.spec.base) // self.spec.interleave_bytes) % len(self.channels)
        return self.channels[index]


class Machine:
    """One socket (caches + prefetchers) over PM and DRAM regions."""

    def __init__(self, config: MachineConfig) -> None:
        config.validate()
        self.config = config
        self.rng = DeterministicRng(config.seed)
        self.registry = TelemetryRegistry()
        self.caches = CacheHierarchy(config.caches)
        self.prefetch = PrefetchEngine(config.prefetchers, self.rng.fork(1))
        self._regions: list[_Region] = []
        self._inflight_fills: dict[int, Cycles] = {}
        self.prefetch_issued = 0
        self.prefetch_dropped = 0
        for spec in config.regions:
            self._regions.append(self._build_region(spec))
        self._regions.sort(key=lambda region: region.spec.base)
        #: Weak refs to the cores created via new_core.  Weak, not
        #: strong: a strong list would close a Machine -> Core ->
        #: Machine cycle, parking every discarded machine (and its
        #: whole cache hierarchy) on the cyclic collector instead of
        #: freeing it by refcount — measurably slowing untraced sweeps.
        self._core_refs: list[weakref.ref] = []
        #: Trace handle installed by an ambient repro.trace session
        #: (None ⇒ tracing off; every probe reduces to one attribute
        #: test).  The import is local so building a machine does not
        #: pull the trace package in when tracing is never used.
        self.trace = None
        from repro.trace.session import attach_if_active

        attach_if_active(self)

    # -- construction -----------------------------------------------------

    def _build_region(self, spec: RegionSpec) -> _Region:
        channels = []
        for index in range(spec.dimms):
            name = f"{spec.name}{index}"
            counters = self.registry.register(name)
            if spec.kind == "pm":
                # Derive the device RNG stream from a *stable* hash of
                # the name (Python's str hash is salted per process and
                # would break cross-run determinism).
                stream = 100 + zlib.crc32(name.encode()) % 1000
                device = OptaneDimm(
                    self.config.optane, counters, self.rng.fork(stream), name=name
                )
            else:
                device = DramDimm(self.config.dram, counters, name=name)
            channels.append(
                IMCChannel(
                    device,
                    wpq_slots=self.config.wpq_slots,
                    accept_latency=self.config.wpq_accept_latency,
                    name=f"imc.{name}",
                )
            )
        return _Region(spec, channels)

    # -- address routing -----------------------------------------------------

    def region_of(self, addr: int) -> _Region:
        """Region containing ``addr`` (AddressError if unmapped)."""
        for region in self._regions:
            if region.spec.base <= addr < region.spec.end:
                return region
        raise AddressError(f"address {addr:#x} is outside every mapped region")

    def region_spec(self, name: str) -> RegionSpec:
        """Spec of the region called ``name``."""
        for region in self._regions:
            if region.spec.name == name:
                return region.spec
        raise AddressError(f"no region named {name!r}")

    def new_core(self, name: str = "cpu0") -> "Core":
        """Create an execution context on this machine."""
        core = Core(self, name)
        self._core_refs.append(weakref.ref(core))
        if self.trace is not None:
            core.trace_track = f"{self.trace.label}.{name}"
        return core

    @property
    def cores(self) -> list["Core"]:
        """The live cores created on this machine (observability hook)."""
        alive = []
        refs = []
        for ref in self._core_refs:
            core = ref()
            if core is not None:
                alive.append(core)
                refs.append(ref)
        self._core_refs = refs
        return alive

    def channels(self) -> dict[str, IMCChannel]:
        """Every iMC channel, keyed by its device's name (``pm0``, ...)."""
        return {
            channel.device.name: channel
            for region in self._regions
            for channel in region.channels
        }

    # -- telemetry -----------------------------------------------------------

    def counters(self, region_name: str) -> TelemetryCounters:
        """Aggregate counters over all DIMMs of one region."""
        return self.registry.aggregate(region_name)

    def pm_counters(self) -> TelemetryCounters:
        """Aggregate over the default local-PM region."""
        return self.counters("pm")

    def measure(self, region_name: str = "pm"):
        """Context manager measuring one region's counter deltas.

        ``with machine.measure("pm") as delta: ...`` replaces the
        manual snapshot/delta pair (see
        :meth:`~repro.stats.counters.TelemetryRegistry.measure`).
        """
        return self.registry.measure(region_name)

    # -- memory operations (called by Core) -------------------------------------

    def demand_load(self, now: Cycles, addr: int, core: "Core") -> Cycles:
        """One 64 B demand load; returns its completion time."""
        if self.trace is not None:
            self.trace.on_op(now)
        line = cacheline_index(addr)
        result = self.caches.access(line, is_write=False)
        if result.hit_level is not None:
            finish = now + result.latency
            fill_done = self._inflight_fills.get(line)
            if fill_done is not None and fill_done > finish:
                finish = fill_done  # data still in flight from a prefetch
            self._handle_llc_writebacks(result.memory_writebacks, now)
        else:
            finish = self._load_from_memory(now + result.latency, addr, line, core)
        self._observe(now, line, result.hit_level)
        return finish

    def _load_from_memory(self, now: Cycles, addr: int, line: int, core: "Core") -> Cycles:
        region = self.region_of(addr)
        channel = region.channel_for(addr)
        trace = self.trace
        start = now
        stall = channel.persist_stall(now, addr)
        if stall is not None:
            if core.window_contains(line):
                # The load overtakes the flush (sfence does not order
                # loads) and is served from the pre-flush cached copy.
                return now + self.config.caches.l1.latency
            if core.last_fence == "sfence":
                stall = now + (stall - now) * (1.0 - self.config.timing.sfence_rap_overlap)
            if trace is not None and stall > now and trace.tracer.wants("persist"):
                trace.tracer.span("persist", "rap-stall", now, stall,
                                  core.trace_track or trace.label, addr=addr)
            now = max(now, stall)
        response = channel.read(now, addr, demand=True)
        finish = response.finish
        if region.spec.remote:
            finish += region.spec.remote_read_adder
        writebacks = self.caches.fill(line, dirty=False, into_l1=True)
        self._handle_llc_writebacks(writebacks, now)
        if trace is not None and trace.tracer.wants("cache"):
            trace.tracer.span("cache", "load-miss", start, finish,
                              core.trace_track or trace.label,
                              addr=addr, source=response.source)
        return finish

    def demand_store(self, now: Cycles, addr: int, core: "Core") -> Cycles:
        """One 64 B store through the store buffer; returns completion.

        Stores retire from the store buffer whether they hit or miss —
        the cacheline fill happens in the background either way.  This
        is what keeps write latency flat at any working-set size
        (Figure 8 c).
        """
        if self.trace is not None:
            self.trace.on_op(now)
        line = cacheline_index(addr)
        result = self.caches.access(line, is_write=True)
        if result.hit_level is not None:
            finish = now + min(result.latency, self.config.timing.store_buffer_latency)
            self._handle_llc_writebacks(result.memory_writebacks, now)
        else:
            # Write-allocate: the RFO read happens in the background and
            # the store retires from the store buffer without waiting.
            region = self.region_of(addr)
            channel = region.channel_for(addr)
            channel.read(now, addr, demand=True)
            writebacks = self.caches.fill(line, dirty=True, into_l1=True)
            self._handle_llc_writebacks(writebacks, now)
            finish = now + self.config.timing.store_buffer_latency
        self._observe(now, line, result.hit_level)
        return finish

    def stream_load(self, now: Cycles, addr: int) -> Cycles:
        """One 64 B SIMD streaming load (Algorithm 2 of the paper).

        Bypasses the caches (no fill) and is invisible to the
        prefetchers — the property the redirection optimization relies
        on to stop misprefetching.
        """
        trace = self.trace
        if trace is not None:
            trace.on_op(now)
        start = now
        region = self.region_of(addr)
        channel = region.channel_for(addr)
        stall = channel.persist_stall(now, addr)
        if stall is not None:
            if trace is not None and stall > now and trace.tracer.wants("persist"):
                trace.tracer.span("persist", "rap-stall", now, stall,
                                  trace.label, addr=addr)
            now = max(now, stall)
        response = channel.read(now, addr, demand=True)
        finish = response.finish
        if region.spec.remote:
            finish += region.spec.remote_read_adder
        if trace is not None and trace.tracer.wants("cache"):
            trace.tracer.span("cache", "stream-load", start, finish,
                              trace.label, addr=addr, source=response.source)
        return finish

    def flush_line(self, now: Cycles, addr: int, core: "Core", invalidate: bool) -> Cycles:
        """clwb / clflush(opt) of one line; returns instruction finish time."""
        if self.trace is not None:
            self.trace.on_op(now)
        line = cacheline_index(addr)
        timing = self.config.timing
        retained = not invalidate
        if invalidate:
            dirty = self.caches.invalidate(line)
        else:
            dirty = self.caches.clean(line)
        cost = timing.clwb_issue + (timing.clwb_coherence_cost if retained else 0.0)
        if not dirty:
            return now + cost
        region = self.region_of(addr)
        channel = region.channel_for(addr)
        was_inflight = channel.persist_stall(now, addr) is not None
        grant = channel.write(now, addr)
        acceptance = grant.acceptance
        if region.spec.remote:
            acceptance += region.spec.remote_write_adder
            channel.inflight.add(line, grant.persist_completion + region.spec.remote_persist_adder)
        core.note_acceptance(acceptance)
        trace = self.trace
        if trace is not None and trace.tracer.wants("persist"):
            track = core.trace_track or trace.label
            trace.tracer.span("persist", "flush", now, acceptance, track, addr=addr)
            trace.tracer.span("persist", "drain", acceptance,
                              grant.persist_completion, track, addr=addr)
        if invalidate:
            if was_inflight:
                # Re-flushing a line whose previous persist is still in
                # flight: the cache has held no valid copy since that
                # earlier flush, so a load can no longer overtake this
                # one and hit the caches.  This is what makes repeated
                # flush+load of a single cacheline (B+-tree key
                # shifting, Section 4.2) pay the full RAP cost on G1.
                core.forget_flush(line)
            else:
                core.note_flush(line)
        return max(now, grant.issue_ready) + cost

    def nt_store_line(self, now: Cycles, addr: int, core: "Core") -> Cycles:
        """One 64 B non-temporal store; returns instruction finish time."""
        if self.trace is not None:
            self.trace.on_op(now)
        line = cacheline_index(addr)
        self.caches.invalidate(line)
        region = self.region_of(addr)
        channel = region.channel_for(addr)
        grant = channel.write(now, addr)
        acceptance = grant.acceptance
        if region.spec.remote:
            acceptance += region.spec.remote_write_adder
            channel.inflight.add(line, grant.persist_completion + region.spec.remote_persist_adder)
        core.note_acceptance(acceptance)
        trace = self.trace
        if trace is not None and trace.tracer.wants("persist"):
            track = core.trace_track or trace.label
            trace.tracer.span("persist", "nt-store", now, acceptance, track, addr=addr)
            trace.tracer.span("persist", "drain", acceptance,
                              grant.persist_completion, track, addr=addr)
        return max(now, grant.issue_ready) + self.config.timing.ntstore_issue

    # -- internals ---------------------------------------------------------------

    def _observe(self, now: Cycles, line: int, hit_level: int | None) -> None:
        if not self.prefetch.enabled:
            return
        for candidate in self.prefetch.observe(line, hit_level):
            self._issue_prefetch(now, candidate)

    def _issue_prefetch(self, now: Cycles, line: int) -> None:
        addr = line * CACHELINE_SIZE
        try:
            region = self.region_of(addr)
        except AddressError:
            self.prefetch_dropped += 1
            return
        if self.caches.probe_level(line) is not None:
            self.prefetch_dropped += 1
            return
        fill_done = self._inflight_fills.get(line)
        if fill_done is not None and fill_done > now:
            self.prefetch_dropped += 1
            return
        channel = region.channel_for(addr)
        response = channel.read(now, addr, demand=False)
        finish = response.finish
        if region.spec.remote:
            finish += region.spec.remote_read_adder
        writebacks = self.caches.fill(line, dirty=False, into_l1=False)
        self._handle_llc_writebacks(writebacks, now)
        self._inflight_fills[line] = finish
        self.prefetch_issued += 1
        if len(self._inflight_fills) > 65536:
            self._inflight_fills = {
                key: value for key, value in self._inflight_fills.items() if value > now
            }

    def _handle_llc_writebacks(self, lines, now: Cycles) -> None:
        for line in lines:
            addr = line * CACHELINE_SIZE
            try:
                region = self.region_of(addr)
            except AddressError:
                continue
            channel = region.channel_for(addr)
            channel.write(now, addr)

    def reset_memory_system(self) -> None:
        """Clear caches, buffers, queues and prefetch state (not counters)."""
        self.caches.clear()
        self.prefetch.reset()
        self._inflight_fills.clear()
        for region in self._regions:
            for channel in region.channels:
                channel.reset()


class Core:
    """One hardware thread executing memory operations on a Machine."""

    def __init__(self, machine: Machine, name: str = "cpu0") -> None:
        self.machine = machine
        self.name = name
        self.now: Cycles = 0.0
        #: Trace track this core's spans land on (set by Machine.new_core
        #: when an ambient trace session is active).
        self.trace_track: str | None = None
        self.last_fence: str = "mfence"
        self._pending_acceptances: list[Cycles] = []
        self._recent_flushes: deque[int] = deque(
            maxlen=max(machine.config.timing.sfence_reorder_window, 1)
        )
        self.loads = 0
        self.stores = 0
        self.flushes = 0
        self.fences = 0

    # -- bookkeeping used by Machine -------------------------------------------

    def note_acceptance(self, acceptance: Cycles) -> None:
        """Record a flush acceptance the next fence must wait for."""
        self._pending_acceptances.append(acceptance)

    def note_flush(self, line: int) -> None:
        """Add ``line`` to the sfence load-reorder window."""
        self._recent_flushes.append(line)

    def forget_flush(self, line: int) -> None:
        """Drop ``line`` from the reorder window (see Machine.flush_line)."""
        if line in self._recent_flushes:
            self._recent_flushes.remove(line)

    def window_contains(self, line: int) -> bool:
        """True if a load may still overtake the flush of ``line``."""
        return line in self._recent_flushes

    @property
    def store_buffer_pending(self) -> int:
        """Flush acceptances no fence has consumed yet (backlog depth)."""
        return len(self._pending_acceptances)

    # -- data operations ---------------------------------------------------------

    def _lines(self, addr: int, size: int) -> range:
        first = cacheline_base(addr)
        last = cacheline_base(addr + max(size, 1) - 1)
        return range(first, last + 1, CACHELINE_SIZE)

    def load(self, addr: int, size: int = 8) -> Cycles:
        """Load ``size`` bytes; returns the cycles this took."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.loads += 1
            self.now = self.machine.demand_load(self.now, line_addr, self)
        return self.now - start

    def store(self, addr: int, size: int = 8) -> Cycles:
        """Store ``size`` bytes through the cache; returns cycles taken."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.stores += 1
            self.now = self.machine.demand_store(self.now, line_addr, self)
        return self.now - start

    def nt_store(self, addr: int, size: int = 64) -> Cycles:
        """Non-temporal store of ``size`` bytes (cache-bypassing)."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.stores += 1
            self.now = self.machine.nt_store_line(self.now, line_addr, self)
        return self.now - start

    def stream_load(self, addr: int, size: int = 64) -> Cycles:
        """SIMD streaming load (no cache fill, no prefetch training)."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.loads += 1
            self.now = (
                self.machine.stream_load(self.now, line_addr)
                + self.machine.config.timing.stream_load_issue
            )
        return self.now - start

    # -- persistence primitives -----------------------------------------------------

    def clwb(self, addr: int, size: int = 64) -> Cycles:
        """Cache line write back; invalidates on G1, retains on G2."""
        start = self.now
        invalidate = not self.machine.config.clwb_retains
        for line_addr in self._lines(addr, size):
            self.flushes += 1
            self.now = self.machine.flush_line(self.now, line_addr, self, invalidate=invalidate)
        return self.now - start

    def clflushopt(self, addr: int, size: int = 64) -> Cycles:
        """Optimized cache line flush: always invalidates, weakly ordered."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.flushes += 1
            self.now = self.machine.flush_line(self.now, line_addr, self, invalidate=True)
        return self.now - start

    def clflush(self, addr: int, size: int = 64) -> Cycles:
        """Legacy serializing flush: invalidates and waits for acceptance."""
        start = self.now
        for line_addr in self._lines(addr, size):
            self.flushes += 1
            self.now = self.machine.flush_line(self.now, line_addr, self, invalidate=True)
            self.now += self.machine.config.timing.clflush_issue
            if self._pending_acceptances:
                self.now = max(self.now, self._pending_acceptances[-1])
        return self.now - start

    def sfence(self) -> Cycles:
        """Store fence: waits for WPQ acceptance of prior flushes only."""
        start = self.now
        self.fences += 1
        target = max(self._pending_acceptances, default=self.now)
        self.now = max(self.now + self.machine.config.timing.sfence_cost, target)
        self._pending_acceptances.clear()
        self.last_fence = "sfence"
        self._trace_fence("sfence", start)
        return self.now - start

    def mfence(self) -> Cycles:
        """Full fence: like sfence, but also orders subsequent loads."""
        start = self.now
        self.fences += 1
        target = max(self._pending_acceptances, default=self.now)
        self.now = max(self.now + self.machine.config.timing.mfence_cost, target)
        self._pending_acceptances.clear()
        self._recent_flushes.clear()
        self.last_fence = "mfence"
        self._trace_fence("mfence", start)
        return self.now - start

    def _trace_fence(self, kind: str, start: Cycles) -> None:
        """Emit a persist span for one executed fence (traced runs only)."""
        trace = self.machine.trace
        if trace is None:
            return
        if trace.tracer.wants("persist"):
            trace.tracer.span("persist", kind, start, self.now,
                              self.trace_track or trace.label)
        trace.on_op(self.now)

    def fence(self, kind: str = "sfence") -> Cycles:
        """Dispatch to sfence/mfence by name (benchmark convenience)."""
        if kind == "sfence":
            return self.sfence()
        if kind == "mfence":
            return self.mfence()
        raise ValueError(f"unknown fence kind {kind!r}")

    def tick(self, cycles: Cycles) -> None:
        """Burn ``cycles`` of pure compute."""
        self.now += cycles

    def persist(self, addr: int, size: int = 64, fence: str = "sfence") -> Cycles:
        """Persistence barrier: clwb over the range, then a fence."""
        start = self.now
        self.clwb(addr, size)
        self.fence(fence)
        return self.now - start
