"""Testbed presets: the paper's two servers as machine configurations.

``g1_machine()`` builds the 1st-generation testbed (Xeon Gold 6230 +
100-series Optane), ``g2_machine()`` the 2nd-generation one (Xeon Gold
5317 + 200-series Optane, eADR disabled).  Both expose the knobs the
paper's experiments vary: number of interleaved PM DIMMs (1 or 6),
prefetcher configuration, and optional remote-NUMA regions.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

from repro.cache.hierarchy import CacheHierarchyConfig
from repro.cache.prefetch import PrefetcherConfig
from repro.common.rng import DEFAULT_SEED
from repro.common.units import gib
from repro.dimm.config import DramDimmConfig, OptaneDimmConfig
from repro.media.dram import DramConfig
from repro.system.machine import (
    DRAM_BASE,
    PM_BASE,
    REMOTE_DRAM_BASE,
    REMOTE_DRAM_PERSIST_ADDER,
    REMOTE_DRAM_READ_ADDER,
    REMOTE_PM_BASE,
    REMOTE_PM_PERSIST_ADDER,
    REMOTE_PM_READ_ADDER,
    CoreTiming,
    Machine,
    MachineConfig,
    RegionSpec,
)

#: Address-space sizes of the preset regions.
PM_REGION_SIZE = gib(8)
DRAM_REGION_SIZE = gib(8)

#: Ambient (process-local) preset overrides; see :func:`preset_overrides`.
_AMBIENT: dict = {}


@contextmanager
def preset_overrides(optane: dict | None = None, timing: dict | None = None,
                     seed: int | None = None):
    """Apply field overrides to every preset machine built in the block.

    The fidelity oracle's mutation-smoke mode
    (:mod:`repro.validate.mutations`) and seed-shift determinism check
    flip simulator design knobs *globally* — e.g. shrink the read
    buffer to one XPLine, or switch write-buffer eviction to FIFO —
    without threading parameters through every experiment.  ``optane``
    fields are ``replace``d into the machine's
    :class:`~repro.dimm.config.OptaneDimmConfig` and ``timing`` into
    its :class:`~repro.system.machine.CoreTiming` *after* any explicit
    per-call configuration, so the override wins even for experiments
    that build custom configs.  ``seed`` replaces the machine seed.

    Process-local: worker processes of a parallel sweep never see the
    ambient state, so mutated validation runs must execute serially
    and uncached (``repro.validate`` enforces both).  Overrides do not
    nest — entering a second context while one is active raises.
    """
    if _AMBIENT:
        raise RuntimeError("preset_overrides does not nest")
    _AMBIENT.update({"optane": dict(optane or {}), "timing": dict(timing or {}),
                     "seed": seed})
    try:
        yield
    finally:
        _AMBIENT.clear()


def _apply_ambient(config: MachineConfig) -> MachineConfig:
    """Fold any active ambient overrides into a finished config."""
    if not _AMBIENT:
        return config
    if _AMBIENT["optane"]:
        config = replace(config, optane=replace(config.optane, **_AMBIENT["optane"]))
    if _AMBIENT["timing"]:
        config = replace(config, timing=replace(config.timing, **_AMBIENT["timing"]))
    if _AMBIENT["seed"] is not None:
        config = replace(config, seed=_AMBIENT["seed"])
    return config


def _regions(
    pm_dimms: int,
    remote_pm: bool,
    remote_dram: bool,
    interleave_bytes: int = 4096,
) -> tuple[RegionSpec, ...]:
    regions = [
        RegionSpec(
            name="pm",
            kind="pm",
            base=PM_BASE,
            size=PM_REGION_SIZE,
            dimms=pm_dimms,
            interleave_bytes=interleave_bytes,
        ),
        RegionSpec(name="dram", kind="dram", base=DRAM_BASE, size=DRAM_REGION_SIZE),
    ]
    if remote_pm:
        regions.append(
            RegionSpec(
                name="pm_remote",
                kind="pm",
                base=REMOTE_PM_BASE,
                size=PM_REGION_SIZE,
                dimms=pm_dimms,
                interleave_bytes=interleave_bytes,
                remote=True,
                remote_read_adder=REMOTE_PM_READ_ADDER,
                remote_write_adder=80.0,
                remote_persist_adder=REMOTE_PM_PERSIST_ADDER,
            )
        )
    if remote_dram:
        regions.append(
            RegionSpec(
                name="dram_remote",
                kind="dram",
                base=REMOTE_DRAM_BASE,
                size=DRAM_REGION_SIZE,
                remote=True,
                remote_read_adder=REMOTE_DRAM_READ_ADDER,
                remote_write_adder=40.0,
                remote_persist_adder=REMOTE_DRAM_PERSIST_ADDER,
            )
        )
    return tuple(regions)


def g1_machine(
    pm_dimms: int = 1,
    prefetchers: PrefetcherConfig | None = None,
    remote_pm: bool = False,
    remote_dram: bool = False,
    seed: int = DEFAULT_SEED,
    **config_overrides,
) -> Machine:
    """The G1 testbed: Xeon Gold 6230 + 100-series Optane DCPMM."""
    config = MachineConfig(
        generation=1,
        caches=CacheHierarchyConfig.g1(),
        prefetchers=prefetchers if prefetchers is not None else PrefetcherConfig(),
        optane=OptaneDimmConfig.g1(),
        dram=DramDimmConfig(),
        timing=CoreTiming(),
        regions=_regions(pm_dimms, remote_pm, remote_dram),
        clwb_retains=False,
        frequency_ghz=2.1,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return Machine(_apply_ambient(config))


def g2_machine(
    pm_dimms: int = 1,
    prefetchers: PrefetcherConfig | None = None,
    remote_pm: bool = False,
    remote_dram: bool = False,
    eadr: bool = False,
    seed: int = DEFAULT_SEED,
    **config_overrides,
) -> Machine:
    """The G2 testbed: Xeon Gold 5317 + 200-series Optane, eADR off.

    Differences from G1, per the paper: clwb retains the cacheline
    (paying a coherence cost), larger on-DIMM buffers, no periodic
    write-back, and generally higher buffer/DRAM latencies in cycles
    (the G2 server clocks higher).
    """
    config = MachineConfig(
        generation=2,
        caches=CacheHierarchyConfig.g2(),
        prefetchers=prefetchers if prefetchers is not None else PrefetcherConfig(),
        optane=OptaneDimmConfig.g2(),
        dram=DramDimmConfig(
            persist_drain_latency=520.0,
            media=DramConfig(read_latency=210.0, write_latency=210.0),
        ),
        timing=CoreTiming(clwb_coherence_cost=150.0),
        regions=_regions(pm_dimms, remote_pm, remote_dram),
        clwb_retains=True,
        eadr=eadr,
        frequency_ghz=3.0,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return Machine(_apply_ambient(config))


def machine_for(generation: int, **kwargs) -> Machine:
    """Build a preset machine by generation number (1 or 2)."""
    if generation == 1:
        return g1_machine(**kwargs)
    if generation == 2:
        return g2_machine(**kwargs)
    raise ValueError(f"unknown Optane generation {generation}")
