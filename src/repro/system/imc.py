"""Integrated memory controller channel: WPQ, RPQ and the ADR domain.

One :class:`IMCChannel` fronts one DIMM.  The write pending queue
(WPQ) is the heart of the DDR-T asynchrony the paper studies:

* a store/flush is *accepted* once it occupies a WPQ slot — from that
  moment it is inside the ADR domain and will survive power failure,
  and this is all a fence waits for;
* the slot is released when the DIMM ingests the line, so when the
  DIMM's write buffer is evicting to the slow media, the WPQ fills up
  and acceptance itself stalls — the mechanism that caps sustained
  write bandwidth at the media drain rate (paper Section 3.6);
* the *persist completion* (when the flush is actually done on the
  DIMM) happens long after acceptance; loads that cannot be served
  from the CPU caches must wait for it — the read-after-persist
  anomaly of Section 3.5, tracked here in :class:`InflightPersists`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.constants import cacheline_index
from repro.sim.clock import Cycles
from repro.sim.inflight import InflightPersists


@dataclass(frozen=True)
class WpqGrant:
    """Timing of one cacheline write pushed through the WPQ."""

    #: When a WPQ slot was available — the issuing instruction can not
    #: retire before this (pipeline back-pressure under saturation).
    issue_ready: Cycles
    #: When the line is in the ADR domain; fences wait for this.
    acceptance: Cycles
    #: When the flush is complete on the DIMM (RAP gate).
    persist_completion: Cycles


class IMCChannel:
    """WPQ/RPQ front of one DIMM (Optane or DRAM)."""

    def __init__(
        self,
        device,
        wpq_slots: int = 16,
        accept_latency: float = 60.0,
        name: str = "ch0",
    ) -> None:
        if wpq_slots <= 0:
            raise ConfigError(f"{name}: wpq_slots must be positive")
        if accept_latency < 0:
            raise ConfigError(f"{name}: accept_latency cannot be negative")
        self.device = device
        self.name = name
        #: Tracer handle + track label, installed by an ambient trace
        #: session (None ⇒ tracing off, see repro.trace.session).
        self.tracer = None
        self.trace_track: str | None = None
        self.accept_latency = accept_latency
        self._wpq_busy: list[Cycles] = [0.0] * wpq_slots
        self.inflight = InflightPersists()
        self.writes_issued = 0
        self.reads_issued = 0

    # -- read side ---------------------------------------------------------

    def read(self, now: Cycles, addr: int, demand: bool = True):
        """Synchronous cacheline read from the DIMM."""
        self.reads_issued += 1
        return self.device.read_line(now, addr, demand=demand)

    def persist_stall(self, now: Cycles, addr: int) -> Cycles | None:
        """Completion time of an in-flight persist covering ``addr``.

        Returns None when no persist is outstanding — the read can
        proceed immediately.
        """
        return self.inflight.completion_for(cacheline_index(addr), now)

    # -- write side -----------------------------------------------------------

    #: Extra acceptance delay when re-flushing a line whose previous
    #: persist is still draining (the WPQ holds one entry per address;
    #: a second flush must wait for / merge with the first).
    SAME_LINE_HAZARD_CAP = 150.0

    def write(self, now: Cycles, addr: int) -> WpqGrant:
        """Push one cacheline write (flush, nt-store, or cache write-back).

        Reserves the earliest-free WPQ slot; the slot stays busy until
        the DIMM ingests the line.  Registers the persist completion in
        the in-flight tracker.
        """
        self.writes_issued += 1
        index = min(range(len(self._wpq_busy)), key=self._wpq_busy.__getitem__)
        issue_ready = max(now, self._wpq_busy[index])
        acceptance = issue_ready + self.accept_latency
        prior = self.inflight.completion_for(cacheline_index(addr), now)
        if prior is not None:
            acceptance += min(prior - now, self.SAME_LINE_HAZARD_CAP)
        response = self.device.ingest_write(acceptance, addr)
        self._wpq_busy[index] = response.ingest_finish
        self.inflight.add(cacheline_index(addr), response.persist_completion)
        if self.tracer is not None and self.tracer.wants("imc"):
            track = self.trace_track or self.name
            self.tracer.counter("imc", "wpq", now, self.wpq_occupancy(now), track)
            if issue_ready > now:
                self.tracer.span("imc", "wpq-full", now, issue_ready, track, addr=addr)
        return WpqGrant(
            issue_ready=issue_ready,
            acceptance=acceptance,
            persist_completion=response.persist_completion,
        )

    # -- maintenance ------------------------------------------------------------

    @property
    def wpq_slots(self) -> int:
        """Depth of the write pending queue."""
        return len(self._wpq_busy)

    def wpq_occupancy(self, now: Cycles) -> int:
        """Number of WPQ slots still busy at ``now``."""
        return sum(1 for busy in self._wpq_busy if busy > now)

    def idle_tick(self, now: Cycles) -> None:
        """Forward time-driven maintenance to the device."""
        self.device.idle_tick(now)

    def power_cycle(self) -> None:
        """Clear pending WPQ occupancy and in-flight persists only.

        Models the queue state after a power failure: whatever the ADR
        drain accepted has been pushed to the device by the crash
        simulator, so no slot is busy and no persist is outstanding.
        Unlike :meth:`reset`, the device (buffers, media, counters) is
        left untouched — the crash simulator drains it explicitly and
        in the correct ADR order first.
        """
        self._wpq_busy = [0.0] * len(self._wpq_busy)
        self.inflight.clear()

    def reset(self) -> None:
        """Clear queue state and in-flight persists."""
        self._wpq_busy = [0.0] * len(self._wpq_busy)
        self.inflight.clear()
        self.writes_issued = 0
        self.reads_issued = 0
        self.device.reset()
