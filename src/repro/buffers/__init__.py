"""On-DIMM buffering: the read buffer and the write-combining buffer."""

from repro.buffers.read_buffer import ReadBuffer, ReadBufferEntry
from repro.buffers.write_buffer import (
    WriteBuffer,
    WriteBufferEntry,
    WriteOutcome,
    Writeback,
)

__all__ = [
    "ReadBuffer",
    "ReadBufferEntry",
    "WriteBuffer",
    "WriteBufferEntry",
    "WriteOutcome",
    "Writeback",
]
