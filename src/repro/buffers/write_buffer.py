"""On-DIMM write-combining buffer (paper Section 3.2).

Properties the paper infers, all modeled here:

* **Capacity** between 12 KB (G1) and 16 KB (G2): write amplification
  for partial writes stays at 0 until the working set exceeds the
  capacity (Figure 3).
* **Random eviction**: the buffer hit ratio decays *gracefully* past
  capacity (Figure 4), unlike the read buffer's sharp FIFO step.
* **Two write-back mechanisms on G1**: fully-modified XPLines are
  written back periodically (~every 5000 cycles), while partially
  modified XPLines are retained until evicted.  G2 disables periodic
  write-back for full writes.
* Evicting a *partially* modified XPLine needs an underfill media read
  (read-modify-write) before the 256-byte media write; fully present
  lines (fully written, or transitioned from the read buffer per
  Section 3.3) skip the read.

The buffer is pure state: it never touches the media itself.  It
reports the work the DIMM front-end must schedule (evictions, due
periodic write-backs) as value objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import FULL_XPLINE_MASK, XPLINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.sim.clock import Cycles


@dataclass
class WriteBufferEntry:
    """One buffered XPLine.

    ``dirty_mask``: cacheline slots holding not-yet-persisted data.
    ``present_mask``: slots whose data is available in the buffer
    (dirty slots, plus clean slots carried over by a read-buffer
    transition).  ``full_since`` is set when the line became fully
    dirty — the periodic write-back timer.
    """

    dirty_mask: int = 0
    present_mask: int = 0
    full_since: Cycles | None = None

    @property
    def fully_dirty(self) -> bool:
        """All four cacheline slots hold new data."""
        return self.dirty_mask == FULL_XPLINE_MASK

    @property
    def fully_present(self) -> bool:
        """Every slot's data is available (no underfill needed)."""
        return self.present_mask == FULL_XPLINE_MASK

    def mark_dirty(self, slot: int, now: Cycles) -> None:
        """Record a write to ``slot``; starts the full-line timer."""
        self.dirty_mask |= 1 << slot
        self.present_mask |= 1 << slot
        if self.fully_dirty and self.full_since is None:
            self.full_since = now


@dataclass(frozen=True)
class Writeback:
    """A media write the DIMM front-end must schedule."""

    xpline: int
    #: True if an underfill read is needed first (partial line).
    needs_underfill_read: bool
    #: Why the line left the buffer ("evict" or "periodic").
    reason: str = "evict"


@dataclass(frozen=True)
class WriteOutcome:
    """Result of ingesting one cacheline write."""

    #: True if the write merged into an existing buffered XPLine.
    hit: bool
    #: True if the XPLine was adopted from the read buffer (§3.3).
    transitioned: bool
    #: Media work triggered by this ingest (evictions + due write-backs).
    writebacks: tuple[Writeback, ...] = field(default=())


class WriteBuffer:
    """Random-eviction write-combining buffer of dirty XPLines."""

    def __init__(
        self,
        capacity_bytes: int,
        rng: DeterministicRng,
        periodic_writeback: bool = True,
        writeback_period: Cycles = 5000.0,
        name: str = "write-buffer",
        eviction: str = "random",
    ) -> None:
        if capacity_bytes < XPLINE_SIZE:
            raise ConfigError(f"{name}: capacity {capacity_bytes} below one XPLine")
        if writeback_period <= 0:
            raise ConfigError(f"{name}: write-back period must be positive")
        if eviction not in ("random", "fifo"):
            raise ConfigError(f"{name}: unknown eviction policy {eviction!r}")
        self.eviction = eviction
        self.name = name
        self.capacity_lines = capacity_bytes // XPLINE_SIZE
        self.periodic_writeback = periodic_writeback
        self.writeback_period = writeback_period
        self._rng = rng
        self._entries: dict[int, WriteBufferEntry] = {}
        # Parallel key list enabling O(1) uniform-random victim choice.
        self._keys: list[int] = []
        self._key_pos: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- key bookkeeping -------------------------------------------------

    def _add_key(self, xpline: int) -> None:
        self._key_pos[xpline] = len(self._keys)
        self._keys.append(xpline)

    def _remove_key(self, xpline: int) -> None:
        pos = self._key_pos.pop(xpline)
        last = self._keys.pop()
        if last != xpline:
            self._keys[pos] = last
            self._key_pos[last] = pos

    # -- queries ----------------------------------------------------------

    def contains(self, xpline: int) -> bool:
        """True if the XPLine has a buffered entry."""
        return xpline in self._entries

    def servable(self, xpline: int, slot: int) -> bool:
        """True if a read of ``slot`` could be served from the buffer."""
        entry = self._entries.get(xpline)
        return entry is not None and bool(entry.present_mask & (1 << slot))

    def entry(self, xpline: int) -> WriteBufferEntry | None:
        """The entry for ``xpline`` (None if absent); for inspection."""
        return self._entries.get(xpline)

    def resident_xplines(self) -> list[int]:
        """Buffered XPLine indexes (unordered)."""
        return list(self._keys)

    # -- mutation ---------------------------------------------------------

    def write(self, now: Cycles, xpline: int, slot: int) -> WriteOutcome:
        """Ingest one cacheline write into the buffer.

        Returns whether it merged (hit) and which media write-backs the
        DIMM must now schedule (due periodic write-backs first, then an
        eviction if the install overflowed capacity).
        """
        writebacks = list(self._collect_periodic(now))
        entry = self._entries.get(xpline)
        if entry is not None:
            if self.periodic_writeback and entry.fully_dirty:
                # G1: a store to an already fully-dirty XPLine starts a
                # new version; the completed old version drains to the
                # media first.  This is what makes WA converge to 1 for
                # 100% writes even at tiny working sets (Figure 3), and
                # it back-pressures like an eviction — bounding
                # sustained full-line write bandwidth at the media rate.
                writebacks.append(self._pop(xpline, reason="rewrite"))
                entry = WriteBufferEntry()
                entry.mark_dirty(slot, now)
                self._entries[xpline] = entry
                self._add_key(xpline)
                return WriteOutcome(hit=True, transitioned=False, writebacks=tuple(writebacks))
            entry.mark_dirty(slot, now)
            return WriteOutcome(hit=True, transitioned=False, writebacks=tuple(writebacks))

        entry = WriteBufferEntry()
        entry.mark_dirty(slot, now)
        self._entries[xpline] = entry
        self._add_key(xpline)
        if len(self._entries) > self.capacity_lines:
            writebacks.append(self._evict_random(exclude=xpline))
        return WriteOutcome(hit=False, transitioned=False, writebacks=tuple(writebacks))

    def fill_from_media(self, xpline: int) -> None:
        """Complete a resident entry with media data (read-side RMW fill).

        A read to a slot the buffer does not hold triggers one media
        read; afterwards the whole XPLine is present and *all* slots
        are servable — this is how reads "directly load data from the
        write buffer" (§3.3), and a later eviction needs no underfill.
        """
        entry = self._entries[xpline]
        entry.present_mask = FULL_XPLINE_MASK

    def adopt_from_read_buffer(self, now: Cycles, xpline: int, slot: int) -> WriteOutcome:
        """Install an XPLine handed over by the read buffer (§3.3).

        The line arrives fully present (it was read from the media), so
        the dirty slot is recorded but no underfill read will ever be
        needed — this is how the transition avoids the expensive
        read-modify-write.
        """
        writebacks = list(self._collect_periodic(now))
        entry = WriteBufferEntry(present_mask=FULL_XPLINE_MASK)
        entry.mark_dirty(slot, now)
        self._entries[xpline] = entry
        self._add_key(xpline)
        if len(self._entries) > self.capacity_lines:
            writebacks.append(self._evict_random(exclude=xpline))
        return WriteOutcome(hit=False, transitioned=True, writebacks=tuple(writebacks))

    def poll(self, now: Cycles) -> tuple[Writeback, ...]:
        """Collect periodic write-backs that came due by ``now``.

        Called by the DIMM front-end on reads and idle checks so that
        fully-dirty lines drain even without further writes.
        """
        return tuple(self._collect_periodic(now))

    def drain_all(self) -> tuple[Writeback, ...]:
        """Flush every buffered line (simulated ADR power-fail drain)."""
        out = []
        for xpline in list(self._keys):
            out.append(self._pop(xpline, reason="evict"))
        return tuple(out)

    def discard(self, xpline: int) -> WriteBufferEntry:
        """Drop one buffered XPLine *without* writing it back.

        Used by fault injection to model a torn ADR drain: the entry's
        dirty slots simply never reach the media.  Returns the removed
        entry so the caller can report exactly which cacheline slots
        were destroyed.  Raises ``KeyError`` if the line is not
        resident.
        """
        entry = self._entries[xpline]
        self._pop(xpline, reason="evict")
        return entry

    # -- internals ---------------------------------------------------------

    def _collect_periodic(self, now: Cycles) -> list[Writeback]:
        if not self.periodic_writeback:
            return []
        due = [
            xpline
            for xpline, entry in self._entries.items()
            if entry.full_since is not None and entry.full_since + self.writeback_period <= now
        ]
        return [self._pop(xpline, reason="periodic") for xpline in due]

    def _evict_random(self, exclude: int) -> Writeback:
        if self.eviction == "fifo":
            # Ablation mode: oldest entry first (dict preserves
            # insertion order).  Produces a hit-ratio cliff instead of
            # Figure 4's graceful decay.
            for victim in self._entries:
                if victim != exclude or len(self._keys) == 1:
                    return self._pop(victim, reason="evict")
        while True:
            victim = self._keys[self._rng.choice_index(len(self._keys))]
            if victim != exclude or len(self._keys) == 1:
                return self._pop(victim, reason="evict")

    def _pop(self, xpline: int, reason: str) -> Writeback:
        entry = self._entries.pop(xpline)
        self._remove_key(xpline)
        return Writeback(
            xpline=xpline,
            needs_underfill_read=not entry.fully_present,
            reason=reason,
        )

    def clear(self) -> None:
        """Drop everything without write-backs (test helper)."""
        self._entries.clear()
        self._keys.clear()
        self._key_pos.clear()
