"""On-DIMM read buffer (paper Section 3.1).

The paper infers three properties, all implemented here:

1. **Capacity**: 16 KB on G1 (64 XPLines), ~22 KB on G2.
2. **FIFO eviction**: read amplification jumps sharply to 4 the moment
   the working set exceeds the capacity (Figure 2), the signature of
   first-in-first-out replacement rather than LRU.
3. **Exclusivity with the CPU caches**: "a cacheline is evicted from
   the read buffer once it is loaded into the CPU caches" — which is
   why RA never drops below 1 even for tiny working sets.  We model
   exclusivity per cacheline: delivering a cacheline to the iMC marks
   that 64-byte slot *consumed*; a later read of the same slot misses
   and re-fetches the XPLine from the media.  Once all four slots are
   consumed the entry is dropped entirely.

The buffer also serves as the landing zone for adjacent-XPLine
prefetches triggered by CPU prefetching (Section 3.4) and as the donor
side of the read→write buffer transition (Section 3.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.constants import CACHELINES_PER_XPLINE, FULL_XPLINE_MASK, XPLINE_SIZE
from repro.common.errors import ConfigError


@dataclass
class ReadBufferEntry:
    """One buffered XPLine: which cacheline slots were already delivered."""

    consumed_mask: int = 0

    def is_consumed(self, slot: int) -> bool:
        """True if ``slot`` was already delivered to the CPU."""
        return bool(self.consumed_mask & (1 << slot))

    def consume(self, slot: int) -> None:
        """Mark ``slot`` delivered (exclusivity)."""
        self.consumed_mask |= 1 << slot

    @property
    def fully_consumed(self) -> bool:
        """True when all four slots have been delivered."""
        return self.consumed_mask == FULL_XPLINE_MASK


class ReadBuffer:
    """FIFO, CPU-cache-exclusive buffer of recently fetched XPLines.

    ``policy="lru"`` is an *ablation* mode (not what the hardware
    does): hits refresh the eviction position, which erases the sharp
    capacity step of Figure 2 — exactly the counterfactual the paper
    uses to argue the real buffer is FIFO.
    """

    def __init__(self, capacity_bytes: int, name: str = "read-buffer", policy: str = "fifo") -> None:
        if capacity_bytes < XPLINE_SIZE:
            raise ConfigError(f"{name}: capacity {capacity_bytes} below one XPLine")
        if policy not in ("fifo", "lru"):
            raise ConfigError(f"{name}: unknown eviction policy {policy!r}")
        self.name = name
        self.policy = policy
        self.capacity_lines = capacity_bytes // XPLINE_SIZE
        # Insertion-ordered: first key is the FIFO victim.
        self._entries: OrderedDict[int, ReadBufferEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, xpline: int) -> bool:
        """True if the XPLine is buffered (regardless of consumed slots)."""
        return xpline in self._entries

    def servable(self, xpline: int, slot: int) -> bool:
        """True if a read of ``slot`` in ``xpline`` would hit the buffer."""
        entry = self._entries.get(xpline)
        return entry is not None and not entry.is_consumed(slot)

    def deliver(self, xpline: int, slot: int) -> bool:
        """Serve ``slot`` of ``xpline`` to the iMC if possible.

        On a hit the slot becomes consumed (exclusivity) and the entry
        is dropped once all four slots are gone.  Returns hit/miss; the
        FIFO position is *not* refreshed on hits — that is precisely
        what makes eviction FIFO rather than LRU.
        """
        entry = self._entries.get(xpline)
        if entry is None or entry.is_consumed(slot):
            return False
        entry.consume(slot)
        if entry.fully_consumed:
            del self._entries[xpline]
        elif self.policy == "lru":
            self._entries.move_to_end(xpline)
        return True

    def install(self, xpline: int, consumed_slots: tuple[int, ...] = ()) -> int | None:
        """Insert a freshly fetched XPLine; returns the evicted XPLine or None.

        ``consumed_slots`` marks slots delivered as part of the fetch
        itself (the demand cacheline travels straight to the iMC, so
        its slot is born consumed).
        """
        if xpline in self._entries:
            # Refetch of a partially consumed line replaces the entry
            # (fresh media read, all slots available again) but keeps
            # its FIFO position.
            entry = self._entries[xpline]
            entry.consumed_mask = 0
        else:
            self._entries[xpline] = entry = ReadBufferEntry()
        for slot in consumed_slots:
            entry.consume(slot)
        if entry.fully_consumed:
            del self._entries[xpline]
        evicted: int | None = None
        if len(self._entries) > self.capacity_lines:
            evicted, _ = self._entries.popitem(last=False)
        return evicted

    def take(self, xpline: int) -> bool:
        """Remove ``xpline`` (the read→write buffer transition, §3.3).

        Returns True if the line was present.  The write buffer becomes
        the owner; the media read that populated it is thereby reused
        instead of a fresh read-modify-write.
        """
        return self._entries.pop(xpline, None) is not None

    def resident_xplines(self) -> list[int]:
        """XPLine indexes currently buffered, in FIFO order."""
        return list(self._entries)

    def unconsumed_slot_count(self, xpline: int) -> int:
        """How many slots of ``xpline`` are still servable (0 if absent)."""
        entry = self._entries.get(xpline)
        if entry is None:
            return 0
        return CACHELINES_PER_XPLINE - bin(entry.consumed_mask).count("1")

    def clear(self) -> None:
        """Drop everything (power cycle)."""
        self._entries.clear()
