"""Experiment E9a — Figure 13: access redirection cuts wasted reads.

Paper claim (C9, first half): with CPU prefetching enabled, random
XPLine-aligned accesses make the DIMM read up to ~2× the demanded
data; copying each block to DRAM with streaming SIMD loads (Algorithm
2) brings the PM read ratio back to ~1 across working-set sizes.
"""

from __future__ import annotations

from repro.core.microbench.prefetch_probe import run_prefetch_probe
from repro.experiments.common import ExperimentReport, check_profile, wide_wss_grid
from repro.system.presets import machine_for


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Reproduce one panel of Figure 13 (default prefetchers enabled)."""
    check_profile(profile)
    wss_points = wide_wss_grid(profile)
    visits = 2_500 if profile == "fast" else 40_000
    repeats = 4 if profile == "fast" else 16
    imc_baseline, pm_baseline, pm_redirect = [], [], []
    for wss in wss_points:
        machine = machine_for(generation)
        baseline = run_prefetch_probe(machine, wss, visits=visits, repeats=repeats, redirect=False)
        imc_baseline.append(baseline.imc_read_ratio)
        pm_baseline.append(baseline.pm_read_ratio)
        machine = machine_for(generation)
        optimized = run_prefetch_probe(machine, wss, visits=visits, repeats=repeats, redirect=True)
        pm_redirect.append(optimized.pm_read_ratio)
    report = ExperimentReport(
        experiment_id=f"fig13-g{generation}",
        title=f"Reducing misprefetching (G{generation}): read ratios",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    report.add_series("iMC with prefetching", imc_baseline)
    report.add_series("PM with prefetching", pm_baseline)
    report.add_series("Optimized PM", pm_redirect)
    return report


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(run(gen).render())
        print()
