"""Ablation studies on the inferred on-DIMM design choices.

The paper *infers* the Optane design from black-box signatures: a
sharp RA step ⇒ FIFO read buffer; graceful hit-ratio decay ⇒ random
write-buffer eviction; WA ≈ 1 for full writes at tiny WSS ⇒ periodic
write-back; cheap write-after-read ⇒ a read→write buffer transition.

Each ablation flips exactly one of those design choices in the
simulator and shows the signature changing the way the paper's logic
predicts — evidence that the signatures really do discriminate
designs, and a regression net for the simulator's mechanisms.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.units import kib
from repro.core.microbench.interleave import run_transition_probe
from repro.core.microbench.write_amp import run_write_amplification
from repro.dimm.config import OptaneDimmConfig
from repro.experiments.common import ExperimentReport
from repro.system.machine import CoreTiming
from repro.system.presets import g1_machine


def _machine(**optane_overrides):
    config = OptaneDimmConfig.g1(**optane_overrides)
    return g1_machine(prefetchers=PrefetcherConfig.none(), optane=config)


def ablate_write_buffer_eviction(wss_points: list[int] | None = None) -> ExperimentReport:
    """Random vs FIFO eviction under *cyclic sequential* partial writes.

    Cyclic reuse is FIFO's worst case: every line is evicted right
    before its reuse, so hits collapse to zero past capacity, while
    random eviction keeps a share of survivors — the graceful decay of
    Figure 4 that led the paper to infer random eviction.
    """
    wss_points = wss_points or [kib(k) for k in (8, 12, 14, 16, 20, 24)]
    report = ExperimentReport(
        experiment_id="ablation-wbuf-eviction",
        title="Write-buffer hit ratio, cyclic partial writes",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    for eviction in ("random", "fifo"):
        values = []
        for wss in wss_points:
            machine = _machine(write_buffer_eviction=eviction)
            core = machine.new_core()
            base = machine.region_spec("pm").base
            n_xplines = wss // XPLINE_SIZE
            snapshot = machine.pm_counters().snapshot()
            for _ in range(8):
                for index in range(n_xplines):
                    core.nt_store(base + index * XPLINE_SIZE, CACHELINE_SIZE)
            delta = machine.pm_counters().delta(snapshot)
            values.append(delta.write_buffer_hit_ratio)
        report.add_series(f"{eviction} eviction", values)
    return report


def ablate_periodic_writeback() -> ExperimentReport:
    """Periodic write-back on/off: the 100%-write WA signature.

    With it (G1 hardware), full writes drain to the media and WA ≈ 1
    even for a 4 KB working set; without it (the G2 design), the buffer
    absorbs everything and WA ≈ 0.
    """
    wss_points = [kib(4), kib(8), kib(16), kib(24)]
    report = ExperimentReport(
        experiment_id="ablation-periodic-writeback",
        title="WA of 100% (full-XPLine) writes",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    for enabled in (True, False):
        values = []
        for wss in wss_points:
            machine = _machine(periodic_writeback=enabled)
            result = run_write_amplification(machine, wss, written_cachelines=4, passes=8)
            values.append(result.write_amplification)
        report.add_series("periodic write-back" if enabled else "no write-back", values)
    return report


def ablate_transition() -> ExperimentReport:
    """Read→write buffer transition on/off: the §3.3 RMW signature.

    With the transition, a write to a read-buffered XPLine adopts it
    (no underfill read at eviction); without it, evictions of partially
    written lines pay the read-modify-write.
    """
    report = ExperimentReport(
        experiment_id="ablation-transition",
        title="Write-after-read behaviour (8 KB probe)",
        x_label="metric",
        x_values=["rmw_avoided", "media/iMC traffic"],
    )
    for enabled in (True, False):
        machine_cfg = OptaneDimmConfig.g1(enable_transition=enabled)
        # run_transition_probe builds its own machine; inline a variant.
        machine = g1_machine(prefetchers=PrefetcherConfig.none(), optane=machine_cfg)
        core = machine.new_core()
        base = machine.region_spec("pm").base
        n_xplines = kib(8) // XPLINE_SIZE
        snapshot = machine.pm_counters().snapshot()
        for _ in range(4):
            for index in range(n_xplines):
                xpline_base = base + index * XPLINE_SIZE
                for slot in (1, 2, 3):
                    addr = xpline_base + slot * CACHELINE_SIZE
                    core.load(addr, 8)
                    core.clflushopt(addr)
                core.nt_store(xpline_base, CACHELINE_SIZE)
        delta = machine.pm_counters().delta(snapshot)
        imc = delta.imc_read_bytes + delta.imc_write_bytes
        media = delta.media_read_bytes + delta.media_write_bytes
        report.add_series(
            "with transition" if enabled else "without transition",
            [float(delta.rmw_avoided), media / imc if imc else 0.0],
        )
    return report


def ablate_sfence_window() -> ExperimentReport:
    """sfence load-reorder window 0 vs 2: the Figure 7 sfence dip.

    With the window (real hardware), reads at RAP distance <= 1 are
    cheap under sfence; with it disabled, sfence behaves like mfence.
    """
    from repro.core.microbench.rap import run_rap_iterations
    from repro.persist.persistency import FenceKind, FlushKind

    distances = [0, 1, 2, 4]
    report = ExperimentReport(
        experiment_id="ablation-sfence-window",
        title="RAP latency under clwb+sfence (cycles/iteration)",
        x_label="distance",
        x_values=distances,
    )
    for window in (2, 0):
        values = []
        for distance in distances:
            timing = CoreTiming(sfence_reorder_window=max(window, 1))
            machine = g1_machine(prefetchers=PrefetcherConfig.none(), timing=timing)
            if window == 0:
                # Window of 0 modeled by clearing after every flush:
                # easiest faithful variant is an effectively-1-deep
                # window plus mfence-like clearing; use mfence directly.
                values.append(
                    run_rap_iterations(
                        machine, "pm", FlushKind.CLWB, FenceKind.MFENCE, distance, passes=15
                    )
                )
            else:
                values.append(
                    run_rap_iterations(
                        machine, "pm", FlushKind.CLWB, FenceKind.SFENCE, distance, passes=15
                    )
                )
        report.add_series(f"window={window}" if window else "no window (mfence-like)", values)
    return report


def run_all() -> list[ExperimentReport]:
    """All ablations (used by the bench target)."""
    return [
        ablate_write_buffer_eviction(),
        ablate_periodic_writeback(),
        ablate_transition(),
        ablate_sfence_window(),
    ]


if __name__ == "__main__":  # pragma: no cover
    for report in run_all():
        print(report.render())
        print()
