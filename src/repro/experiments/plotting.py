"""Terminal plotting for experiment reports (no matplotlib available).

Renders an :class:`~repro.experiments.common.ExperimentReport` as an
ASCII chart: one braille-free, block-character row chart per series,
plus a normalized multi-series line chart.  Used by the CLI's
``--chart`` flag so the reproduction's "figures" can be eyeballed next
to the paper's.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport

#: Eight block characters from low to high.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render values as a row of block characters."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[4] * len(values)
    span = hi - lo
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[max(0, min(index, len(_BLOCKS) - 1))])
    return "".join(out)


def chart(report: ExperimentReport, width_label: int | None = None, shared_scale: bool = True) -> str:
    """Multi-series sparkline chart of a report.

    ``shared_scale`` puts all series on one y-scale (comparable bars);
    otherwise each series is self-normalized (shape only).
    """
    if not report.series:
        return f"== {report.experiment_id}: (no series) =="
    width_label = width_label or max(len(series.name) for series in report.series)
    lines = [f"== {report.experiment_id}: {report.title} =="]
    lo = hi = None
    if shared_scale:
        everything = [value for series in report.series for value in series.values]
        lo, hi = min(everything), max(everything)
    for series in report.series:
        body = sparkline(series.values, lo, hi)
        smin, smax = min(series.values), max(series.values)
        lines.append(
            f"{series.name.rjust(width_label)} |{body}| "
            f"[{smin:.2f} .. {smax:.2f}]"
        )
    first, last = report.x_values[0], report.x_values[-1]
    lines.append(
        f"{'x'.rjust(width_label)}  {report.x_label}: {report._format_x(first)} "
        f"→ {report._format_x(last)} ({len(report.x_values)} points)"
    )
    return "\n".join(lines)
