"""Experiment E7b — Figure 10: helper-thread prefetching in CCEH.

Paper claim (C7): the speculative helper thread cuts insertion latency
by up to ~36% and raises throughput by up to ~34% on Optane across
1–10 workers, while on DRAM it *degrades* both — random media reads
are a PM-specific bottleneck, and on DRAM the helper only steals
shared-core resources.
"""

from __future__ import annotations

from repro.experiments.cceh_harness import run_config
from repro.experiments.common import ExperimentReport, check_profile


def _worker_counts(profile: str) -> list[int]:
    return [1, 2, 4, 6, 8, 10] if profile == "fast" else list(range(1, 11))


def run_region(generation: int, region: str, profile: str = "fast") -> ExperimentReport:
    """Latency and throughput vs workers, with and without the helper."""
    check_profile(profile)
    prepopulate = 150_000 if profile == "fast" else 1_000_000
    inserts_per_worker = 2_500 if profile == "fast" else 12_000
    counts = _worker_counts(profile)
    latency = {False: [], True: []}
    throughput = {False: [], True: []}
    for workers in counts:
        for helper in (False, True):
            result = run_config(
                generation,
                workers=workers,
                helper=helper,
                region=region,
                prepopulate=prepopulate,
                total_inserts=inserts_per_worker * workers,
            )
            latency[helper].append(result.cycles_per_insert)
            throughput[helper].append(result.throughput_mops)
    report = ExperimentReport(
        experiment_id=f"fig10-g{generation}-{region}",
        title=f"CCEH insert on {region.upper()} (G{generation}): latency (cycles) / throughput (Mops/s)",
        x_label="workers",
        x_values=counts,
        x_is_size=False,
    )
    report.add_series("latency CCEH", latency[False])
    report.add_series("latency CCEH+prefetch", latency[True])
    report.add_series("tput CCEH", throughput[False])
    report.add_series("tput CCEH+prefetch", throughput[True])
    return report


def run(generation: int = 1, profile: str = "fast") -> list[ExperimentReport]:
    """Both panels: PM and DRAM."""
    return [run_region(generation, "pm", profile), run_region(generation, "dram", profile)]


if __name__ == "__main__":  # pragma: no cover
    for report in run(1):
        print(report.render())
        print()
