"""Experiment E9b — Figure 14: the redirection latency/throughput tradeoff.

Paper claim (C9, second half): the extra PM→DRAM copy makes redirection
*slower* at small thread counts, but because it stops misprefetching
from wasting media read bandwidth, it wins both latency and throughput
once enough threads contend — around 12 threads on the paper's
testbeds.
"""

from __future__ import annotations

from repro.common.constants import CACHELINE_SIZE, CACHELINES_PER_XPLINE, XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.common.units import mib
from repro.experiments.common import (
    ExperimentReport,
    check_profile,
    interleave_workers,
)
from repro.system.machine import Core, Machine
from repro.system.presets import machine_for


def _block_task(core: Core, block: int, staging: int, repeats: int, redirect: bool) -> None:
    if redirect:
        for slot in range(CACHELINES_PER_XPLINE):
            core.stream_load(block + slot * CACHELINE_SIZE, CACHELINE_SIZE)
            core.store(staging + slot * CACHELINE_SIZE, CACHELINE_SIZE)
        for _ in range(repeats):
            for slot in range(CACHELINES_PER_XPLINE):
                core.load(staging + slot * CACHELINE_SIZE, 8)
    else:
        for _ in range(repeats):
            for slot in range(CACHELINES_PER_XPLINE):
                core.load(block + slot * CACHELINE_SIZE, 8)
        for slot in range(CACHELINES_PER_XPLINE):
            core.clflushopt(block + slot * CACHELINE_SIZE)
        core.sfence()


def run_point(
    machine: Machine,
    threads: int,
    redirect: bool,
    wss: int,
    visits_per_thread: int,
    repeats: int = 16,
) -> tuple[float, float]:
    """Returns (cycles per block visit, aggregate GB/s of demanded data)."""
    base = machine.region_spec("pm").base
    dram_base = machine.region_spec("dram").base
    n_blocks = wss // XPLINE_SIZE
    cores = [machine.new_core(f"t{i}") for i in range(threads)]
    streams = []
    for index, core in enumerate(cores):
        rng = DeterministicRng(1000 + index)
        staging = dram_base + index * XPLINE_SIZE

        def stream(core=core, rng=rng, staging=staging):
            for _ in range(visits_per_thread):
                def task():
                    block = base + rng.choice_index(n_blocks) * XPLINE_SIZE
                    _block_task(core, block, staging, repeats, redirect)

                yield task

        streams.append((core, stream()))
    makespan = interleave_workers(streams)
    total_visits = visits_per_thread * threads
    latency = sum(core.now for core in cores) / total_visits
    demanded_bytes = total_visits * XPLINE_SIZE
    seconds = makespan / (machine.config.frequency_ghz * 1e9)
    throughput_gbs = demanded_bytes / seconds / 1e9
    return latency, throughput_gbs


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Reproduce one generation's Figure 14 panels."""
    check_profile(profile)
    threads_list = [1, 4, 8, 12, 16] if profile == "fast" else [1, 2, 4, 8, 12, 16, 20, 24]
    wss = mib(64)
    visits = 600 if profile == "fast" else 2_000
    data: dict[str, list[float]] = {
        "latency baseline": [],
        "latency optimized": [],
        "tput baseline": [],
        "tput optimized": [],
    }
    for threads in threads_list:
        for redirect, label in ((False, "baseline"), (True, "optimized")):
            machine = machine_for(generation)
            latency, throughput = run_point(machine, threads, redirect, wss, visits)
            data[f"latency {label}"].append(latency)
            data[f"tput {label}"].append(throughput)
    report = ExperimentReport(
        experiment_id=f"fig14-g{generation}",
        title=f"Access redirection tradeoff (G{generation}): cycles/block, GB/s",
        x_label="threads",
        x_values=threads_list,
    )
    for name, values in data.items():
        report.add_series(name, values)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(1).render())
