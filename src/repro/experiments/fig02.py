"""Experiment E1 — Figure 2: read amplification vs working-set size.

Paper claim (C1): the DIMM has a read buffer; RA = 4/CpX below its
capacity, jumps sharply to 4 past it (FIFO), and never drops below 1
(exclusive to the CPU caches).  G1 steps at 16 KB, G2 at ~22 KB.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.core.microbench.strided_read import run_strided_read
from repro.cache.prefetch import PrefetcherConfig
from repro.experiments.common import ExperimentReport, buffer_wss_grid, check_profile
from repro.system.presets import machine_for


#: CpX (cachelines read per XPLine) values, one plotted curve each.
SERIES_CPX = (4, 3, 2, 1)


def _grid(profile: str) -> list[int]:
    return buffer_wss_grid(step_kib=2 if profile == "fast" else 1, max_kib=36)


def run_series(generation: int = 1, profile: str = "fast", cpx: int = 4) -> tuple[str, list[float]]:
    """One curve of Figure 2: RA over the WSS grid for a fixed CpX.

    This is the per-sweep-point work unit the parallel runner
    (:mod:`repro.runner`) fans out; it is a pure function of its
    arguments, so shards can run in any process and be merged by
    :func:`merge_series` in declaration order.
    """
    check_profile(profile)
    cycles = 4 if profile == "fast" else 8
    values = []
    for wss in _grid(profile):
        machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
        result = run_strided_read(machine, wss, cpx, cycles_over_region=cycles)
        values.append(result.read_amplification)
    return f"read {cpx} cacheline{'s' if cpx > 1 else ''}", values


def merge_series(generation: int, profile: str, series: list[tuple[str, list[float]]]) -> ExperimentReport:
    """Assemble Figure 2 from :func:`run_series` shards (one per CpX)."""
    report = ExperimentReport(
        experiment_id=f"fig2-g{generation}",
        title=f"Read amplification, strided reads (G{generation})",
        x_label="WSS",
        x_values=_grid(profile),
        x_is_size=True,
    )
    for name, values in series:
        report.add_series(name, values)
    buffer_kib = machine_for(generation).config.optane.read_buffer_bytes // kib(1)
    report.notes.append(f"read buffer capacity (config): {buffer_kib} KB")
    return report


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Reproduce Figure 2 for one Optane generation."""
    check_profile(profile)
    return merge_series(
        generation, profile,
        [run_series(generation, profile, cpx) for cpx in SERIES_CPX],
    )


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(run(gen).render())
