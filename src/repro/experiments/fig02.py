"""Experiment E1 — Figure 2: read amplification vs working-set size.

Paper claim (C1): the DIMM has a read buffer; RA = 4/CpX below its
capacity, jumps sharply to 4 past it (FIFO), and never drops below 1
(exclusive to the CPU caches).  G1 steps at 16 KB, G2 at ~22 KB.
"""

from __future__ import annotations

from repro.common.units import kib
from repro.core.microbench.strided_read import run_strided_read
from repro.cache.prefetch import PrefetcherConfig
from repro.experiments.common import ExperimentReport, buffer_wss_grid, check_profile
from repro.system.presets import machine_for


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Reproduce Figure 2 for one Optane generation."""
    check_profile(profile)
    wss_points = buffer_wss_grid(
        step_kib=2 if profile == "fast" else 1,
        max_kib=36,
    )
    cycles = 4 if profile == "fast" else 8
    report = ExperimentReport(
        experiment_id=f"fig2-g{generation}",
        title=f"Read amplification, strided reads (G{generation})",
        x_label="WSS",
        x_values=wss_points,
    )
    for cpx in (4, 3, 2, 1):
        values = []
        for wss in wss_points:
            machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
            result = run_strided_read(machine, wss, cpx, cycles_over_region=cycles)
            values.append(result.read_amplification)
        report.add_series(f"read {cpx} cacheline{'s' if cpx > 1 else ''}", values)
    buffer_kib = machine_for(generation).config.optane.read_buffer_bytes // kib(1)
    report.notes.append(f"read buffer capacity (config): {buffer_kib} KB")
    return report


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(run(gen).render())
