"""Experiment E5 — Figure 7: read-after-persist latency vs distance.

Paper claim (C5): on G1, reading a recently clwb'd or nt-stored line
costs up to ~2500 cycles locally (~3200 remotely) — up to 10× the
settled latency — decaying with distance; clwb+sfence is cheap at
distance ≤ 1 (loads overtake the flush), then jumps to ~800–1000 and
converges.  On G2 clwb retains cachelines and the problem disappears
for clwb (at a coherence cost), while nt-store still suffers.  DRAM
shows the same shape compressed to ~2×.
"""

from __future__ import annotations

from repro.core.microbench.rap import rap_curve
from repro.experiments.common import ExperimentReport, check_profile
from repro.persist.persistency import FenceKind, FlushKind

#: Panels (a)-(d) per generation, as (region, curve specs).
_PANEL_SPECS: tuple[tuple[str, tuple[tuple[FlushKind, FenceKind], ...]], ...] = (
    ("pm", ((FlushKind.CLWB, FenceKind.MFENCE), (FlushKind.CLWB, FenceKind.SFENCE), (FlushKind.NT_STORE, FenceKind.MFENCE))),
    ("dram", ((FlushKind.CLWB, FenceKind.MFENCE), (FlushKind.CLWB, FenceKind.SFENCE))),
    ("pm_remote", ((FlushKind.CLWB, FenceKind.MFENCE), (FlushKind.CLWB, FenceKind.SFENCE), (FlushKind.NT_STORE, FenceKind.MFENCE))),
    ("dram_remote", ((FlushKind.CLWB, FenceKind.MFENCE), (FlushKind.CLWB, FenceKind.SFENCE))),
)

_FAST_DISTANCES = (0, 1, 2, 4, 8, 16, 32, 40)
_FULL_DISTANCES = (0, 1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40)


def run_panel(generation: int, region: str, profile: str = "fast") -> ExperimentReport:
    """One panel: all curves for one (generation, region)."""
    check_profile(profile)
    distances = _FAST_DISTANCES if profile == "fast" else _FULL_DISTANCES
    passes = 20 if profile == "fast" else 40
    specs = dict(_PANEL_SPECS)[region]
    report = ExperimentReport(
        experiment_id=f"fig7-g{generation}-{region}",
        title=f"RAP latency on {region} (G{generation}), cycles/iteration",
        x_label="distance",
        x_values=list(distances),
    )
    for flush, fence in specs:
        curve = rap_curve(generation, region, flush, fence, distances, passes=passes)
        report.add_series(f"{flush.value}+{fence.value}", [p.cycles_per_iteration for p in curve.points])
    return report


def run(generation: int = 1, profile: str = "fast") -> list[ExperimentReport]:
    """All four panels of one Figure 7 row."""
    return [run_panel(generation, region, profile) for region, _ in _PANEL_SPECS]


if __name__ == "__main__":  # pragma: no cover
    for report in run(1):
        print(report.render(precision=0))
        print()
