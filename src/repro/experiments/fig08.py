"""Experiment E6 — Figure 8: user-perceived latency across WSS.

Paper claim (C6): three latency levels — low while the working set
fits the on-DIMM buffers, a plateau (~400 cycles) bounded by the media
write drain, and a sharp climb once random reads must come from the
media.  The pure-read/pure-write breakdown shows *reads* cause the
climb while write latency is flat at any WSS; relaxed persistency only
helps below the plateau.
"""

from __future__ import annotations

from repro.core.microbench.pointer_chase import PointerChaseBench
from repro.experiments.common import ExperimentReport, check_profile, wide_wss_grid
from repro.persist.persistency import PersistencyModel
from repro.system.presets import machine_for


def _bench(generation: int, wss: int, sequential: bool) -> PointerChaseBench:
    machine = machine_for(generation)
    return PointerChaseBench(machine, wss, sequential)


def run_panel_strict(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Panel (a): strict persistency, clwb vs nt-store, seq vs random."""
    return _run_persist_panel(generation, profile, PersistencyModel.STRICT, "a")


def run_panel_relaxed(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Panel (b): relaxed persistency (fence once per pass)."""
    return _run_persist_panel(generation, profile, PersistencyModel.RELAXED, "b")


def _run_persist_panel(
    generation: int, profile: str, model: PersistencyModel, panel: str
) -> ExperimentReport:
    check_profile(profile)
    wss_points = wide_wss_grid(profile)
    max_ops = 5_000 if profile == "fast" else 40_000
    warmup_cap = 60_000 if profile == "fast" else 150_000
    report = ExperimentReport(
        experiment_id=f"fig8{panel}-g{generation}",
        title=f"Write with {model.value} persistency (G{generation}), cycles/element",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    for sequential in (True, False):
        for mode in ("clwb", "nt-store"):
            values = []
            for wss in wss_points:
                bench = _bench(generation, wss, sequential)
                values.append(
                    bench.run(mode, model, max_ops=max_ops, warmup_cap=warmup_cap).cycles_per_element
                )
            order = "seq" if sequential else "rand"
            report.add_series(f"{order}_{mode}", values)
    return report


def run_panel_breakdown(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Panel (c): pure reads vs pure writes."""
    check_profile(profile)
    wss_points = wide_wss_grid(profile)
    max_ops = 5_000 if profile == "fast" else 40_000
    warmup_cap = 60_000 if profile == "fast" else 150_000
    report = ExperimentReport(
        experiment_id=f"fig8c-g{generation}",
        title=f"Latency breakdown of pure reads and writes (G{generation})",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    for sequential in (True, False):
        order = "seq" if sequential else "rand"
        for mode, label in (("read", f"{order}_rd"), ("write", f"{order}_wr")):
            values = []
            for wss in wss_points:
                bench = _bench(generation, wss, sequential)
                values.append(
                    bench.run(
                        mode, PersistencyModel.STRICT, max_ops=max_ops, warmup_cap=warmup_cap
                    ).cycles_per_element
                )
            report.add_series(label, values)
    return report


def run(generation: int = 1, profile: str = "fast") -> list[ExperimentReport]:
    """All three panels of Figure 8."""
    return [
        run_panel_strict(generation, profile),
        run_panel_relaxed(generation, profile),
        run_panel_breakdown(generation, profile),
    ]


if __name__ == "__main__":  # pragma: no cover
    for report in run(1):
        print(report.render(precision=0))
        print()
