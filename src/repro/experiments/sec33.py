"""Section 3.3 — read/write buffer separation and XPLine transition.

No figure in the paper; the findings are reported as numbers:
interleaved read/write traffic over disjoint regions shows RA = 1 and
no media writes (separate buffers), and write-then-read within an
XPLine moves far less media data than iMC data (reads served from the
write buffer, writes adopting read-buffered XPLines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.microbench.interleave import (
    SeparationResult,
    TransitionResult,
    run_separation_probe,
    run_transition_probe,
)
from repro.experiments.common import ExperimentReport, check_profile


@dataclass
class Sec33Result:
    """Both probes for one generation."""

    generation: int
    separation: SeparationResult
    transition_write_first: TransitionResult
    transition_read_first: TransitionResult


def run(generation: int = 1, profile: str = "fast") -> Sec33Result:
    """Run both Section 3.3 probes."""
    check_profile(profile)
    passes = 4 if profile == "fast" else 8
    return Sec33Result(
        generation=generation,
        separation=run_separation_probe(generation, passes=passes),
        transition_write_first=run_transition_probe(generation, passes=passes, write_first=True),
        transition_read_first=run_transition_probe(generation, passes=passes, write_first=False),
    )


def as_report(result: Sec33Result) -> ExperimentReport:
    """Render the probe numbers as a two-column table."""
    report = ExperimentReport(
        experiment_id=f"sec33-g{result.generation}",
        title="Buffer separation and XPLine transition",
        x_label="metric",
        x_values=[
            "interleaved RA",
            "baseline RA",
            "interleaved media writes (B)",
            "baseline media writes (B)",
            "transition media/iMC traffic",
            "transition RMW avoided",
        ],
    )
    sep = result.separation
    trans = result.transition_read_first
    report.add_series(
        "value",
        [
            sep.interleaved_read_amplification,
            sep.baseline_read_amplification,
            float(sep.interleaved_media_write_bytes),
            float(sep.baseline_media_write_bytes),
            trans.media_traffic_fraction,
            float(trans.rmw_avoided),
        ],
    )
    report.notes.append(f"buffers_are_separate = {sep.buffers_are_separate}")
    return report


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(as_report(run(gen)).render())
