"""Experiment E8 — Figure 12: B+-tree in-place vs out-of-place insert.

Paper claim (C8): on G1, redirecting key shifts through a redo log —
despite doubling PM writes — improves insertion latency by up to
~38.8% and throughput by up to ~60.8% because it avoids the
read-after-persist stalls of in-place shifting; the benefit shrinks
with thread count (bandwidth contention).  On G2, clwb retains
cachelines, in-place shifting never stalls, and redo logging offers no
improvement (only slight degradation at higher thread counts).
"""

from __future__ import annotations

from repro.datastores.btree import FastFairTree
from repro.experiments.common import (
    ExperimentReport,
    check_profile,
    interleave_workers,
    split_round_robin,
)
from repro.persist.allocator import PmHeap
from repro.system.presets import machine_for
from repro.workloads.ycsb import insert_only_stream

_TIMED_KEY_STRIDE = 4  # pre-populated keys use multiples of 4


def _build_tree(machine, mode: str, prepopulate: int) -> FastFairTree:
    tree = FastFairTree(PmHeap(machine), mode=mode)
    for key in insert_only_stream(prepopulate, seed=3):
        tree.insert(key * _TIMED_KEY_STRIDE, key)
    return tree


def run_mode(
    generation: int,
    mode: str,
    threads: int,
    prepopulate: int,
    total_inserts: int,
) -> tuple[float, float]:
    """One (mode, threads) point; returns (cycles/insert, Mops/s)."""
    machine = machine_for(generation)
    tree = _build_tree(machine, mode, prepopulate)
    keys = [key * _TIMED_KEY_STRIDE + 1 for key in insert_only_stream(total_inserts, seed=11)]
    shares = split_round_robin(keys, threads)
    cores = [machine.new_core(f"worker{i}") for i in range(threads)]
    streams = []
    for core, share in zip(cores, shares):

        def stream(core=core, share=share):
            for key in share:
                def task(key=key):
                    tree.insert(key, key, core)

                yield task

        streams.append((core, stream()))
    makespan = interleave_workers(streams)
    per_worker = [core.now / len(share) for core, share in zip(cores, shares) if share]
    latency = sum(per_worker) / len(per_worker)
    throughput = total_inserts / (makespan / (machine.config.frequency_ghz * 1e9)) / 1e6
    return latency, throughput


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Reproduce one generation's Figure 12 panels (single DIMM)."""
    check_profile(profile)
    threads_list = [1, 3, 5, 7, 9] if profile == "full" else [1, 3, 5]
    prepopulate = 200_000 if profile == "fast" else 600_000
    inserts_per_thread = 2_000 if profile == "fast" else 6_000
    data: dict[str, list[float]] = {
        "latency in-place": [],
        "latency out-of-place": [],
        "tput in-place": [],
        "tput out-of-place": [],
    }
    for threads in threads_list:
        for mode, label in (("inplace", "in-place"), ("redo", "out-of-place")):
            latency, throughput = run_mode(
                generation, mode, threads, prepopulate, inserts_per_thread * threads
            )
            data[f"latency {label}"].append(latency)
            data[f"tput {label}"].append(throughput)
    report = ExperimentReport(
        experiment_id=f"fig12-g{generation}",
        title=f"FAST & FAIR insert, single DIMM (G{generation}): cycles / Mops/s",
        x_label="threads",
        x_values=threads_list,
    )
    for name, values in data.items():
        report.add_series(name, values)
    return report


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(run(gen).render())
        print()
