"""Experiment E2 — Figure 6: prefetching into the on-DIMM buffers.

Paper claim (C2): the DIMM itself barely prefetches — read ratios stay
≈ 1 with CPU prefetchers off — but CPU prefetching makes the DIMM load
far more media data than the iMC requests: once the working set
exceeds the read buffer the PM ratio climbs, and past the LLC both
ratios grow, with the PM ratio approaching 2 for the DCU streamer
(every mispredicted cacheline drags a whole XPLine off the media).
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.core.microbench.prefetch_probe import run_prefetch_probe
from repro.experiments.common import ExperimentReport, check_profile, wide_wss_grid
from repro.system.presets import machine_for

#: The four panels per generation, in the paper's order.
PANELS: tuple[tuple[str, PrefetcherConfig], ...] = (
    ("no prefetch", PrefetcherConfig.none()),
    ("hardware prefetch", PrefetcherConfig.only("streamer")),
    ("adjacent cacheline prefetch", PrefetcherConfig.only("adjacent")),
    ("DCU streamer prefetch", PrefetcherConfig.only("dcu")),
)


def run_panel(
    generation: int,
    panel: str,
    profile: str = "fast",
) -> ExperimentReport:
    """One panel of Figure 6: PM and iMC read ratios across WSS."""
    check_profile(profile)
    config = dict(PANELS)[panel]
    wss_points = wide_wss_grid(profile)
    visits = 2_500 if profile == "fast" else 40_000
    # Repeats beyond the first round are pure L1 hits (invisible to the
    # prefetchers and to the DIMM), so the fast profile uses fewer.
    repeats = 4 if profile == "fast" else 16
    pm_values, imc_values = [], []
    for wss in wss_points:
        machine = machine_for(generation, prefetchers=config)
        result = run_prefetch_probe(machine, wss, visits=visits, repeats=repeats)
        pm_values.append(result.pm_read_ratio)
        imc_values.append(result.imc_read_ratio)
    report = ExperimentReport(
        experiment_id=f"fig6-g{generation}-{panel.split()[0]}",
        title=f"{panel} (G{generation})",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    report.add_series(f"PM (G{generation})", pm_values)
    report.add_series(f"iMC (G{generation})", imc_values)
    return report


def run(generation: int = 1, profile: str = "fast") -> list[ExperimentReport]:
    """All four panels for one generation."""
    return [run_panel(generation, panel, profile) for panel, _ in PANELS]


if __name__ == "__main__":  # pragma: no cover
    for report in run(1):
        print(report.render())
        print()
