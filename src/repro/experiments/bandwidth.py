"""Device bandwidth characterization (paper Section 2.2).

Not a numbered figure, but the baseline facts every Optane paper
leans on: read bandwidth is ~3x write bandwidth, write bandwidth
saturates at a small thread count while reads keep scaling, and both
are far below DRAM.  This experiment measures all of it on the
simulated devices, both as a sanity anchor for the calibration and as
the "Table 0" a new user runs first.
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.common.constants import CACHELINE_SIZE, XPLINE_SIZE
from repro.common.rng import DeterministicRng
from repro.common.units import mib
from repro.experiments.common import ExperimentReport, check_profile, interleave_workers
from repro.system.presets import machine_for


def _sequential_read(core, base, start, count):
    for index in range(count):
        core.load(base + (start + index) * CACHELINE_SIZE, 8)


def _random_read(core, base, n_lines, count, rng):
    for _ in range(count):
        core.load(base + rng.choice_index(n_lines) * CACHELINE_SIZE, 8)
        # Evict so the next visit reaches the device again.
        core.clflushopt(base + rng.choice_index(n_lines) * CACHELINE_SIZE)


def _nt_write(core, base, start, count, n_lines):
    for index in range(count):
        core.nt_store(base + ((start + index) % n_lines) * CACHELINE_SIZE, CACHELINE_SIZE)


def measure_bandwidth(
    generation: int,
    kind: str,
    threads: int,
    region: str = "pm",
    wss: int = mib(64),
    ops_per_thread: int = 4_000,
) -> float:
    """GB/s moved by ``threads`` workers doing ``kind`` accesses.

    ``kind``: "seq-read", "rand-read" or "nt-write".
    """
    machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
    base = machine.region_spec(region).base
    n_lines = wss // CACHELINE_SIZE
    cores = [machine.new_core(f"t{i}") for i in range(threads)]
    streams = []
    for index, core in enumerate(cores):
        rng = DeterministicRng(500 + index)
        start_line = index * (n_lines // max(threads, 1))

        def stream(core=core, rng=rng, start_line=start_line):
            for op in range(ops_per_thread):
                def task(op=op):
                    if kind == "seq-read":
                        core.load(base + ((start_line + op) % n_lines) * CACHELINE_SIZE, 8)
                    elif kind == "rand-read":
                        line = rng.choice_index(n_lines)
                        addr = base + line * CACHELINE_SIZE
                        core.load(addr, 8)
                        core.clflushopt(addr)
                    elif kind == "nt-write":
                        core.nt_store(
                            base + ((start_line + op) % n_lines) * CACHELINE_SIZE,
                            CACHELINE_SIZE,
                        )
                    else:
                        raise ValueError(f"unknown bandwidth kind {kind!r}")
                yield task

        streams.append((core, stream()))
    makespan = interleave_workers(streams)
    total_bytes = threads * ops_per_thread * CACHELINE_SIZE
    seconds = makespan / (machine.config.frequency_ghz * 1e9)
    return total_bytes / seconds / 1e9


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Bandwidth vs thread count for the three access kinds on PM."""
    check_profile(profile)
    threads_list = [1, 2, 4, 8] if profile == "fast" else [1, 2, 4, 8, 12, 16]
    ops = 2_500 if profile == "fast" else 10_000
    report = ExperimentReport(
        experiment_id=f"bandwidth-g{generation}",
        title=f"Single-DIMM bandwidth (G{generation}), GB/s",
        x_label="threads",
        x_values=threads_list,
    )
    for kind in ("seq-read", "rand-read", "nt-write"):
        values = [
            measure_bandwidth(generation, kind, threads, ops_per_thread=ops)
            for threads in threads_list
        ]
        report.add_series(kind, values)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(1).render())
