"""DIMM interleaving: 1 vs 6 Optane DIMMs (paper §2.4 / §4 configs).

The paper's testbeds install six 128 GB DIMMs and run experiments both
on a single non-interleaved DIMM and on all six interleaved at 4 KB.
Interleaving multiplies *bandwidth* (six write drains, six read-port
pools) but leaves single-access *latency* unchanged — which is why the
paper found CCEH results "on a non-interleaved single DIMM and on 6
interleaved DIMMs were similar" for its latency-bound workload while
bandwidth-bound workloads scale.
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.experiments.bandwidth import measure_bandwidth
from repro.experiments.common import ExperimentReport, check_profile
from repro.system.presets import machine_for


def _random_read_latency(generation: int, dimms: int, samples: int = 2_000) -> float:
    """Average cold random-read latency over a large region."""
    from repro.common.constants import CACHELINE_SIZE
    from repro.common.rng import DeterministicRng
    from repro.common.units import mib

    machine = machine_for(generation, pm_dimms=dimms, prefetchers=PrefetcherConfig.none())
    core = machine.new_core()
    base = machine.region_spec("pm").base
    n_lines = mib(256) // CACHELINE_SIZE
    rng = DeterministicRng(3)
    start = core.now
    for _ in range(samples):
        core.load(base + rng.choice_index(n_lines) * CACHELINE_SIZE, 8)
    return (core.now - start) / samples


def _write_bandwidth(generation: int, dimms: int, threads: int = 8, ops: int = 2_000) -> float:
    """Aggregate nt-store bandwidth, GB/s."""
    from repro.common.constants import CACHELINE_SIZE
    from repro.common.units import mib
    from repro.experiments.common import interleave_workers

    machine = machine_for(generation, pm_dimms=dimms, prefetchers=PrefetcherConfig.none())
    base = machine.region_spec("pm").base
    n_lines = mib(64) // CACHELINE_SIZE
    cores = [machine.new_core(f"t{i}") for i in range(threads)]
    streams = []
    for index, core in enumerate(cores):
        start_line = index * (n_lines // threads)

        def stream(core=core, start_line=start_line):
            for op in range(ops):
                def task(op=op):
                    core.nt_store(base + ((start_line + op) % n_lines) * CACHELINE_SIZE, 64)
                yield task

        streams.append((core, stream()))
    makespan = interleave_workers(streams)
    total = threads * ops * CACHELINE_SIZE
    return total / (makespan / (machine.config.frequency_ghz * 1e9)) / 1e9


def run(generation: int = 1, profile: str = "fast") -> ExperimentReport:
    """Latency and bandwidth, 1 vs 6 DIMMs."""
    check_profile(profile)
    samples = 1_500 if profile == "fast" else 6_000
    ops = 1_500 if profile == "fast" else 6_000
    report = ExperimentReport(
        experiment_id=f"interleave-g{generation}",
        title=f"1 vs 6 interleaved DIMMs (G{generation})",
        x_label="DIMMs",
        x_values=[1, 6],
    )
    report.add_series(
        "random read latency (cycles)",
        [_random_read_latency(generation, dimms, samples) for dimms in (1, 6)],
    )
    report.add_series(
        "nt-store bandwidth (GB/s, 8 threads)",
        [_write_bandwidth(generation, dimms, ops=ops) for dimms in (1, 6)],
    )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(1).render())
