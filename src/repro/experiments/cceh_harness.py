"""Shared harness for the CCEH experiments (Table 1 and Figure 10).

Reproduces the paper's setup: a CCEH table pre-loaded with keys (the
paper uses YCSB to insert 16 M pairs; we pre-populate untimed and then
measure a window of inserts — the steady-state behaviour is identical
and the simulation stays tractable), then timed insert streams on 1–10
worker cores, optionally with a helper prefetch thread per worker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import InstrumentedCore
from repro.core.helper import HelperConfig, HelperThread
from repro.datastores.cceh import CcehHashTable
from repro.experiments.common import interleave_workers, split_round_robin
from repro.persist.allocator import PmHeap
from repro.stats.latency import TimeBreakdown
from repro.system.machine import Machine
from repro.system.presets import machine_for
from repro.workloads.ycsb import insert_only_stream

#: Per-op benchmark-driver overhead (YCSB key generation, value
#: marshalling, call chain) — the bulk of the paper's "Misc." column.
DRIVER_OVERHEAD = 220.0

#: Key offset separating the pre-population keyspace from timed keys.
_TIMED_KEY_BASE = 1 << 40


@dataclass
class CcehRun:
    """Result of one timed configuration."""

    workers: int
    helper: bool
    region: str
    cycles_per_insert: float
    throughput_mops: float
    breakdown: TimeBreakdown | None = None


def build_table(machine: Machine, prepopulate: int, region: str = "pm") -> CcehHashTable:
    """Create and (untimed) pre-populate a CCEH table."""
    heap = PmHeap(machine)
    allocator = heap.pm if region == "pm" else heap.dram
    table = CcehHashTable(allocator)
    for key in insert_only_stream(prepopulate, seed=5):
        table.insert(key, key)
    return table


def timed_inserts(
    machine: Machine,
    table: CcehHashTable,
    total_inserts: int,
    workers: int = 1,
    helper: bool = False,
    helper_config: HelperConfig | None = None,
    region: str = "pm",
    instrument: bool = False,
    seed: int = 9,
) -> CcehRun:
    """Measure ``total_inserts`` fresh-key inserts over ``workers`` cores."""
    keys = [key + _TIMED_KEY_BASE for key in insert_only_stream(total_inserts, seed=seed)]
    shares = split_round_robin(keys, workers)
    streams = []
    cores = []
    breakdowns: list[TimeBreakdown] = []
    for worker_index in range(workers):
        raw_core = machine.new_core(f"worker{worker_index}")
        core = InstrumentedCore(raw_core) if instrument else raw_core
        if instrument:
            breakdowns.append(core.breakdown)
        cores.append(raw_core)
        share = shares[worker_index]
        helper_thread = (
            HelperThread(machine, table.prefetch_trace, helper_config, name=f"helper{worker_index}")
            if helper
            else None
        )

        def stream(share=share, core=core, raw_core=raw_core, helper_thread=helper_thread):
            for index, key in enumerate(share):
                def task(index=index, key=key):
                    if helper_thread is not None:
                        helper_thread.sync_before(raw_core, share, index)
                    core.tick(DRIVER_OVERHEAD)
                    table.insert(key, key, core)

                yield task

        streams.append((raw_core, stream()))

    makespan = interleave_workers(streams)
    # Fresh cores start at cycle 0, so each worker's latency is its
    # final local time divided by the inserts it performed.
    per_worker = [
        core.now / len(share) for core, share in zip(cores, shares) if share
    ]
    cycles_per_insert = sum(per_worker) / len(per_worker)
    throughput = total_inserts / (makespan / (machine.config.frequency_ghz * 1e9)) / 1e6
    breakdown = None
    if instrument:
        breakdown = TimeBreakdown()
        for piece in breakdowns:
            for name, value in piece.fractions().items():
                breakdown.charge(name, piece.cycles(name))
    return CcehRun(
        workers=workers,
        helper=helper,
        region=region,
        cycles_per_insert=cycles_per_insert,
        throughput_mops=throughput,
        breakdown=breakdown,
    )


def run_config(
    generation: int,
    workers: int,
    pm_dimms: int = 1,
    helper: bool = False,
    region: str = "pm",
    prepopulate: int = 250_000,
    total_inserts: int = 20_000,
    instrument: bool = False,
    seed: int = 9,
) -> CcehRun:
    """Build a fresh machine + table and run one timed configuration."""
    machine = machine_for(generation, pm_dimms=pm_dimms)
    table = build_table(machine, prepopulate, region)
    return timed_inserts(
        machine,
        table,
        total_inserts,
        workers=workers,
        helper=helper,
        region=region,
        instrument=instrument,
        seed=seed,
    )
