"""Experiment E7a — Table 1: time breakdown of CCEH key insertion.

Paper numbers: segment-metadata access dominates (~43–52%) across
thread and DIMM counts, persists take ~21–26%, and everything else
~26–31%.  The point: the bottleneck of this write-intensive workload
is a *random read*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.cceh_harness import run_config
from repro.experiments.common import ExperimentReport, check_profile

#: Fine-grained instrumentation buckets → the paper's three columns.
_COLUMN_OF = {
    "segment": "Segment metadata",
    "persist": "Persists",
}
_COLUMNS = ("Segment metadata", "Persists", "Misc.")

#: The paper's four configurations: (threads, interleaved DIMMs).
CONFIGS = ((1, 1), (5, 1), (1, 6), (5, 6))


@dataclass(frozen=True)
class Table1Row:
    """One configuration's breakdown (fractions summing to 1)."""

    threads: int
    dimms: int
    segment_metadata: float
    persists: float
    misc: float


def run(generation: int = 1, profile: str = "fast") -> list[Table1Row]:
    """Reproduce Table 1 for one generation."""
    check_profile(profile)
    prepopulate = 250_000 if profile == "fast" else 1_000_000
    inserts = 15_000 if profile == "fast" else 60_000
    rows = []
    for threads, dimms in CONFIGS:
        result = run_config(
            generation,
            workers=threads,
            pm_dimms=dimms,
            prepopulate=prepopulate,
            total_inserts=inserts,
            instrument=True,
        )
        folded = result.breakdown.merged(
            {name: _COLUMN_OF.get(name, "Misc.") for name in ("segment", "persist", "directory", "bucket", "compute", "split")}
        )
        fractions = folded.fractions()
        rows.append(
            Table1Row(
                threads=threads,
                dimms=dimms,
                segment_metadata=fractions.get("Segment metadata", 0.0),
                persists=fractions.get("Persists", 0.0),
                misc=fractions.get("Misc.", 0.0),
            )
        )
    return rows


def as_report(rows: list[Table1Row], generation: int = 1) -> ExperimentReport:
    """Render the rows the way the paper prints Table 1."""
    report = ExperimentReport(
        experiment_id=f"table1-g{generation}",
        title="Time breakdown of key insertion in CCEH (%)",
        x_label="Thread/DIMM",
        x_values=[f"{row.threads}T/{row.dimms}-DIMM" for row in rows],
    )
    report.add_series("Segment metadata", [row.segment_metadata * 100 for row in rows])
    report.add_series("Persists", [row.persists * 100 for row in rows])
    report.add_series("Misc.", [row.misc * 100 for row in rows])
    return report


if __name__ == "__main__":  # pragma: no cover
    print(as_report(run()).render(precision=1))
