"""Per-figure/table experiment harnesses (see DESIGN.md's index).

Each module exposes ``run(...)`` returning :class:`ExperimentReport`
objects (or typed rows) and can be executed directly::

    python -m repro.experiments.fig02
"""

from repro.experiments.common import (
    ExperimentReport,
    Series,
    buffer_wss_grid,
    check_profile,
    interleave_workers,
    split_round_robin,
    wide_wss_grid,
)

__all__ = [
    "ExperimentReport",
    "Series",
    "buffer_wss_grid",
    "check_profile",
    "interleave_workers",
    "split_round_robin",
    "wide_wss_grid",
]
