"""Persistent-lock handover latency (paper §3.5 performance implications).

Quantifies the scenario the paper warns about: a persistent lock whose
word ping-pongs between threads.  Every handover is a read of a
just-flushed cacheline.  Compared across generations, memory types and
NUMA placement — on G1 the RAP stall dominates the acquire; on G2 the
retained cacheline makes local handovers cheap; remote placement adds
the cross-socket persist/read adders everywhere.
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.datastores.pmlock import PersistentLock, measure_handover
from repro.experiments.common import ExperimentReport, check_profile
from repro.persist.allocator import RegionAllocator
from repro.system.presets import machine_for

_SCENARIOS = ("pm", "pm_remote", "dram")


def run(profile: str = "fast") -> ExperimentReport:
    """Acquire latency per handover, 2 contending threads."""
    check_profile(profile)
    rounds = 200 if profile == "fast" else 1_000
    report = ExperimentReport(
        experiment_id="lock-handover",
        title="Persistent lock handover latency (cycles per acquire)",
        x_label="region",
        x_values=list(_SCENARIOS),
    )
    for generation in (1, 2):
        values = []
        for region in _SCENARIOS:
            machine = machine_for(
                generation,
                prefetchers=PrefetcherConfig.none(),
                remote_pm=True,
                remote_dram=True,
            )
            allocator = RegionAllocator(machine, region)
            lock = PersistentLock(allocator)
            cores = [machine.new_core(f"t{i}") for i in range(2)]
            values.append(measure_handover(lock, cores, rounds))
        report.add_series(f"G{generation}", values)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().render(precision=0))
