"""Experiment E4 — Figure 4: write-buffer hit ratio vs working-set size.

Paper claim (C4): the hit ratio decays *gracefully* past the buffer
capacity (random eviction), with the G1 knee at ~12 KB and the G2 knee
past 16 KB.
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.core.microbench.write_amp import run_write_hit_ratio
from repro.experiments.common import ExperimentReport, buffer_wss_grid, check_profile
from repro.system.presets import machine_for


def run(profile: str = "fast") -> ExperimentReport:
    """Reproduce Figure 4 (both generations on one axis, as the paper)."""
    check_profile(profile)
    wss_points = buffer_wss_grid(step_kib=2 if profile == "fast" else 1, max_kib=32)
    writes = 8 if profile == "fast" else 16
    report = ExperimentReport(
        experiment_id="fig4",
        title="Write buffer hit ratio, random partial writes",
        x_label="WSS",
        x_values=wss_points,
        x_is_size=True,
    )
    for generation in (1, 2):
        values = []
        for wss in wss_points:
            machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
            result = run_write_hit_ratio(machine, wss, writes_per_xpline_avg=writes)
            values.append(result.inferred_hit_ratio)
        report.add_series(f"G{generation} Optane", values)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
