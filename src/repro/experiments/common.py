"""Shared experiment harness machinery: reports, sweeps, multi-threading.

Every experiment module produces an :class:`ExperimentReport` — named
series over a shared x-axis — that renders as the table/rows the
corresponding paper figure plots, and that benchmarks assert shape
properties against.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.common.units import fmt_size, kib, mib
from repro.system.machine import Core


def _canonical_timeseries(timeseries: dict | None) -> dict | None:
    """Deep-copy attached telemetry into pure JSON types.

    ``None`` stays ``None`` (untraced report — the distinction matters:
    cached sweep entries are always untraced).  Anything else is pushed
    through a JSON round-trip so tuples become lists and no caller
    aliases the report's mutable payload: a report that was serialized
    and parsed back must compare equal to the original.
    """
    if timeseries is None:
        return None
    return json.loads(json.dumps(timeseries))


@dataclass
class Series:
    """One plotted line: a name and y values over the report's x-axis."""

    name: str
    values: list[float]


@dataclass
class ExperimentReport:
    """A figure/table reproduction: x-axis plus one series per curve.

    Reports are plain data: they compare equal field-by-field and
    round-trip losslessly through :meth:`to_json` / :meth:`from_json`,
    which is what the on-disk result cache (:mod:`repro.runner`)
    relies on to replay a sweep without re-simulating it.

    ``x_is_size`` controls x-axis rendering in :meth:`to_csv` and
    :meth:`render`: ``True`` pretty-prints integer x values >= 1 KiB
    as sizes ("16KB"), ``False`` prints them verbatim, and ``None``
    (the default) falls back to a label heuristic — labels starting
    with "w" (e.g. "WSS") are treated as byte-valued.  Experiments
    with byte-valued axes should set the flag explicitly.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: list
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    x_is_size: bool | None = None
    #: Optional attached telemetry time-series (the ``to_obj()`` form of
    #: :class:`repro.trace.sampler.TimeSeries`), set by traced runs
    #: (``repro trace``); None for ordinary runs, so traced and
    #: untraced reports of the same experiment stay comparable.
    timeseries: dict | None = None

    def __post_init__(self) -> None:
        """Canonicalize attached telemetry so round-trips stay lossless.

        JSON turns tuples into lists; normalizing here (and in
        :meth:`to_dict` / :meth:`from_dict`) keeps a parsed-back report
        equal to the original whatever shape the caller handed in.
        """
        self.timeseries = _canonical_timeseries(self.timeseries)

    def add_series(self, name: str, values: list[float]) -> None:
        """Append one named curve (must match the x-axis length)."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"{self.experiment_id}/{name}: {len(values)} values for "
                f"{len(self.x_values)} x points"
            )
        self.series.append(Series(name, list(values)))

    def get(self, name: str) -> list[float]:
        """Values of the series called ``name``."""
        for series in self.series:
            if series.name == name:
                return series.values
        raise KeyError(name)

    def value(self, name: str, x) -> float:
        """One point of one series."""
        return self.get(name)[self.x_values.index(x)]

    def _format_x(self, x) -> str:
        """Render one x value, honouring the ``x_is_size`` flag."""
        as_size = self.x_is_size
        if as_size is None:  # legacy heuristic: "WSS"-style labels are bytes
            as_size = self.x_label.lower().startswith("w")
        if as_size and isinstance(x, int) and not isinstance(x, bool) and x >= 1024:
            return fmt_size(x)
        return str(x)

    def to_dict(self) -> dict:
        """A JSON-serializable dict capturing every field of the report."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": [{"name": s.name, "values": list(s.values)} for s in self.series],
            "notes": list(self.notes),
            "x_is_size": self.x_is_size,
            "timeseries": _canonical_timeseries(self.timeseries),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentReport":
        """Rebuild a report from :meth:`to_dict` output (inverse mapping)."""
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            x_label=data["x_label"],
            x_values=list(data["x_values"]),
            series=[Series(s["name"], list(s["values"])) for s in data.get("series", [])],
            notes=list(data.get("notes", [])),
            x_is_size=data.get("x_is_size"),
            timeseries=_canonical_timeseries(data.get("timeseries")),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to JSON; ``from_json`` restores an equal report."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        """Parse a report previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def to_csv(self, precision: int = 6) -> str:
        """Comma-separated rows: header + one row per x point."""
        def quote(cell: str) -> str:
            return f'"{cell}"' if ("," in cell or '"' in cell) else cell

        lines = [",".join(quote(h) for h in ([self.x_label] + [s.name for s in self.series]))]
        for index, x in enumerate(self.x_values):
            row = [self._format_x(x)] + [
                f"{series.values[index]:.{precision}g}" for series in self.series
            ]
            lines.append(",".join(quote(cell) for cell in row))
        return "\n".join(lines)

    def render(self, precision: int = 2) -> str:
        """ASCII table: one row per x point, one column per series."""
        headers = [self.x_label] + [series.name for series in self.series]
        rows = []
        for index, x in enumerate(self.x_values):
            row = [self._format_x(x)]
            for series in self.series:
                row.append(f"{series.values[index]:.{precision}f}")
            rows.append(row)
        widths = [
            max(len(headers[column]), *(len(row[column]) for row in rows)) if rows else len(headers[column])
            for column in range(len(headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(header.rjust(width) for header, width in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: Iteration-count profiles.  "fast" keeps the whole bench suite in
#: minutes; "full" is what EXPERIMENTS.md records.
PROFILES = ("fast", "full")


def check_profile(profile: str) -> str:
    """Validate and return a profile name ("fast" or "full")."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; use one of {PROFILES}")
    return profile


def buffer_wss_grid(step_kib: int = 2, max_kib: int = 32) -> list[int]:
    """Small-WSS grid for the buffer-capacity figures (2..32 KB)."""
    return [kib(k) for k in range(step_kib, max_kib + 1, step_kib)]


def wide_wss_grid(profile: str = "fast") -> list[int]:
    """The 4KB..1GB-style log grid of Figures 6/8/13.

    The fast profile stops at 64 MB — past the LLC knee every curve is
    flat, and the full profile confirms it.
    """
    points = [kib(4), kib(16), kib(64), kib(256), mib(1), mib(4), mib(16), mib(64)]
    if profile == "full":
        points += [mib(256)]
    return points


def interleave_workers(
    workers: list[tuple[Core, Iterator[Callable[[], None]]]],
) -> float:
    """Run per-worker task streams in causal (min local time) order.

    Each worker is (core, iterator-of-thunks); a thunk performs one
    operation on that core (advancing ``core.now``).  Contention is
    produced by the shared machine underneath.  Returns the makespan.
    """
    heap: list[tuple[float, int]] = []
    streams = []
    for index, (core, stream) in enumerate(workers):
        streams.append((core, stream))
        heapq.heappush(heap, (core.now, index))
    start = min(core.now for core, _ in workers) if workers else 0.0
    finished = [False] * len(workers)
    while heap:
        _, index = heapq.heappop(heap)
        core, stream = streams[index]
        try:
            task = next(stream)
        except StopIteration:
            finished[index] = True
            continue
        task()
        heapq.heappush(heap, (core.now, index))
    return max((core.now for core, _ in workers), default=start) - start


def split_round_robin(items: list, ways: int) -> list[list]:
    """Deal ``items`` to ``ways`` workers round-robin."""
    return [items[way::ways] for way in range(ways)]
