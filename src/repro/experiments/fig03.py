"""Experiment E3 — Figure 3: write amplification by write fraction.

Paper claims (C3): on G1, partial writes are fully absorbed (WA = 0)
until the ~12 KB write buffer overflows, then WA climbs toward the
theoretical 4/k; 100% writes are periodically written back and sit at
WA ≈ 1 at *any* WSS.  On G2 periodic write-back is disabled, so all
four curves rise gracefully only beyond a >12 KB capacity.
"""

from __future__ import annotations

from repro.cache.prefetch import PrefetcherConfig
from repro.core.microbench.write_amp import run_write_amplification
from repro.experiments.common import ExperimentReport, buffer_wss_grid, check_profile
from repro.system.presets import machine_for


#: Cachelines written per XPLine, one plotted curve each (100%..25%).
SERIES_WRITTEN = (4, 3, 2, 1)


def _grid(profile: str) -> list[int]:
    return buffer_wss_grid(step_kib=2 if profile == "fast" else 1, max_kib=32)


def run_series(
    generation: int = 1,
    profile: str = "fast",
    written: int = 4,
    random_across_xplines: bool = False,
) -> tuple[str, list[float]]:
    """One curve of Figure 3: WA over the WSS grid for a write fraction.

    Pure function of its arguments — the parallel runner
    (:mod:`repro.runner`) executes these shards in worker processes
    and recombines them with :func:`merge_series`.
    """
    check_profile(profile)
    passes = 6 if profile == "fast" else 10
    values = []
    for wss in _grid(profile):
        machine = machine_for(generation, prefetchers=PrefetcherConfig.none())
        result = run_write_amplification(
            machine, wss, written, passes=passes, random_across_xplines=random_across_xplines
        )
        values.append(result.write_amplification)
    return f"{written * 25}% write", values


def merge_series(
    generation: int,
    profile: str,
    series: list[tuple[str, list[float]]],
    random_across_xplines: bool = False,
) -> ExperimentReport:
    """Assemble Figure 3 from :func:`run_series` shards."""
    report = ExperimentReport(
        experiment_id=f"fig3-g{generation}",
        title=f"Write amplification, nt-store partial writes (G{generation})",
        x_label="WSS",
        x_values=_grid(profile),
        x_is_size=True,
    )
    for name, values in series:
        report.add_series(name, values)
    report.notes.append(
        "access order across XPLines: " + ("random" if random_across_xplines else "sequential")
    )
    return report


def run(generation: int = 1, profile: str = "fast", random_across_xplines: bool = False) -> ExperimentReport:
    """Reproduce Figure 3 for one generation."""
    check_profile(profile)
    return merge_series(
        generation, profile,
        [run_series(generation, profile, written, random_across_xplines)
         for written in SERIES_WRITTEN],
        random_across_xplines,
    )


if __name__ == "__main__":  # pragma: no cover
    for gen in (1, 2):
        print(run(gen).render())
